"""CPU utilization and waste accounting.

The paper quantifies DARC's cost as "average CPU waste" — cores held
idle by the reservation while they could in principle have served queued
long requests.  Two views are provided:

* the analytic Eq. 2 waste of a reservation
  (:meth:`repro.core.reservation.Reservation.expected_waste`), and
* the measured view here, built from the workers' busy-time counters.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..server.worker import Worker


class UtilizationReport:
    """Per-worker and aggregate utilization over a run."""

    def __init__(self, workers: Sequence[Worker], duration_us: float):
        if duration_us <= 0:
            raise ValueError(f"duration_us must be > 0, got {duration_us}")
        self.duration_us = duration_us
        self.per_worker: Dict[int, float] = {
            w.worker_id: w.utilization(duration_us) for w in workers
        }
        self.per_worker_overhead: Dict[int, float] = {
            w.worker_id: w.total_overhead_time / duration_us for w in workers
        }
        self.completions: Dict[int, int] = {w.worker_id: w.completed for w in workers}

    @property
    def mean_utilization(self) -> float:
        if not self.per_worker:
            return 0.0
        return sum(self.per_worker.values()) / len(self.per_worker)

    @property
    def busy_cores(self) -> float:
        """Time-averaged number of busy cores."""
        return sum(self.per_worker.values())

    @property
    def idle_cores(self) -> float:
        """Time-averaged number of idle cores."""
        return len(self.per_worker) - self.busy_cores

    @property
    def overhead_cores(self) -> float:
        """Time-averaged cores burned on scheduling overhead (preemption,
        stealing) rather than useful service."""
        return sum(self.per_worker_overhead.values())

    def imbalance(self) -> float:
        """Max minus min per-worker utilization — a load-balance indicator
        (d-FCFS shows large values; c-FCFS near zero)."""
        if not self.per_worker:
            return 0.0
        values = list(self.per_worker.values())
        return max(values) - min(values)

    def describe(self) -> str:
        lines = [
            f"Utilization over {self.duration_us:.0f}us: "
            f"mean={self.mean_utilization:.1%}, busy={self.busy_cores:.2f} cores, "
            f"idle={self.idle_cores:.2f} cores, overhead={self.overhead_cores:.3f} cores"
        ]
        for wid in sorted(self.per_worker):
            lines.append(
                f"  worker {wid:>2}: util={self.per_worker[wid]:>7.1%} "
                f"overhead={self.per_worker_overhead[wid]:>7.2%} "
                f"done={self.completions[wid]}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UtilizationReport(mean={self.mean_utilization:.1%}, "
            f"idle={self.idle_cores:.2f})"
        )
