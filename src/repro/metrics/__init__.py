"""Measurement: recorders, percentiles, run summaries, time series."""

from .percentiles import P999, P2Quantile, p999, percentile, percentile_profile, tail_credible
from .recorder import CompletionColumns, Recorder
from .summary import RunSummary, TypeSummary
from .timeseries import AllocationTimeline, WindowedStats
from .utilization import UtilizationReport

__all__ = [
    "P999",
    "P2Quantile",
    "p999",
    "percentile",
    "percentile_profile",
    "tail_credible",
    "Recorder",
    "CompletionColumns",
    "RunSummary",
    "TypeSummary",
    "WindowedStats",
    "AllocationTimeline",
    "UtilizationReport",
]
