"""Windowed time-series statistics (for the Fig. 7 dynamic experiment).

Fig. 7 plots per-type p99.9 latency in time buckets, keyed by the
*sending* time of each request, plus the guaranteed-core allocation over
time.  :class:`WindowedStats` bins completions by arrival time and
reports per-window tail percentiles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .percentiles import P999, percentile
from .recorder import CompletionColumns


class WindowedStats:
    """Per-type tail latency in fixed-width time windows."""

    def __init__(self, window_us: float):
        if window_us <= 0:
            raise ConfigurationError(f"window_us must be > 0, got {window_us}")
        self.window_us = window_us

    def series(
        self, cols: CompletionColumns, type_id: Optional[int] = None, pct: float = P999
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(window_start_times, tail_latency_per_window)``.

        Windows are keyed by *arrival* time (the paper: "the X axis is
        the sending time").  Windows with no samples yield NaN.
        """
        if type_id is not None:
            cols = cols.for_type(type_id)
        if len(cols) == 0:
            return np.array([]), np.array([])
        arrivals = cols.arrivals
        latencies = np.asarray(cols.latencies, dtype=np.float64)
        end = float(arrivals.max())
        n_windows = int(end // self.window_us) + 1
        times = self.window_us * np.arange(n_windows)
        values = np.full(n_windows, np.nan)
        idx = (arrivals // self.window_us).astype(np.int64)
        # Single bucketing pass: sort by (window, latency), then each
        # window is a contiguous run of an order-statistics-ready slice.
        order = np.lexsort((latencies, idx))
        sorted_lat = latencies[order]
        starts = np.searchsorted(idx[order], np.arange(n_windows + 1))
        counts = np.diff(starts)
        filled = counts > 0
        if not filled.any():
            return times, values
        base = starts[:-1][filled]
        # Linear-interpolated rank, replicating numpy's percentile lerp
        # (including its t>=0.5 symmetric form) so results stay
        # bit-identical with the previous per-window np.percentile loop.
        rank = (pct / 100.0) * (counts[filled] - 1)
        lo = np.floor(rank).astype(np.int64)
        hi = np.ceil(rank).astype(np.int64)
        t = rank - lo
        v_lo = sorted_lat[base + lo]
        v_hi = sorted_lat[base + hi]
        diff = v_hi - v_lo
        interp = v_lo + t * diff
        upper = t >= 0.5
        interp[upper] = v_hi[upper] - diff[upper] * (1.0 - t[upper])
        values[filled] = interp
        return times, values


    def throughput_series(
        self, cols: CompletionColumns, type_id: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Completions per microsecond in each window, keyed by finish
        time — the achieved-goodput view of a run."""
        if type_id is not None:
            cols = cols.for_type(type_id)
        if len(cols) == 0:
            return np.array([]), np.array([])
        finishes = cols.finishes
        n_windows = int(float(finishes.max()) // self.window_us) + 1
        times = self.window_us * np.arange(n_windows)
        counts = np.bincount(
            (finishes // self.window_us).astype(np.int64), minlength=n_windows
        )
        return times, counts / self.window_us


class AllocationTimeline:
    """Step series of guaranteed cores per type, from DARC's reservation log.

    The log entries are ``(time, {type_id: reserved_count})``; sampling
    at time t returns the most recent entry at or before t (0 before the
    first reservation — the c-FCFS warm-up window).
    """

    def __init__(self, log: List[Tuple[float, Dict[int, int]]]):
        self.log = sorted(log, key=lambda e: e[0])

    def at(self, t: float, type_id: int) -> int:
        current = 0
        for time, counts in self.log:
            if time > t:
                break
            current = counts.get(type_id, 0)
        return current

    def sample(self, times: np.ndarray, type_id: int) -> np.ndarray:
        return np.array([self.at(float(t), type_id) for t in times])

    def update_times(self) -> List[float]:
        """Times at which reservations changed (Fig. 7's markers)."""
        return [t for t, _ in self.log]
