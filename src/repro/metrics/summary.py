"""Run summaries: the numbers the paper's figures plot.

:class:`RunSummary` condenses a :class:`~repro.metrics.recorder.Recorder`
into overall and per-type statistics: p99.9 slowdown across all requests
(figures' first columns) and per-type p99.9 latency (the "typed tail
latency" view of §5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workload.request import RequestTypeSpec
from .percentiles import P999, percentile, tail_credible
from .recorder import CompletionColumns, Recorder


class TypeSummary:
    """Statistics for one request type within a run."""

    def __init__(self, type_id: int, name: str, cols: CompletionColumns, pct: float):
        self.type_id = type_id
        self.name = name
        self.count = len(cols)
        if self.count:
            lat = cols.latencies
            slow = cols.slowdowns
            self.mean_latency = float(lat.mean())
            self.p50_latency = percentile(lat, 50)
            self.p99_latency = percentile(lat, 99)
            self.tail_latency = percentile(lat, pct)
            self.tail_slowdown = percentile(slow, pct)
            self.mean_slowdown = float(slow.mean())
            self.mean_service = float(cols.services.mean())
            self.tail_credible = tail_credible(self.count, pct)
        else:
            self.mean_latency = float("nan")
            self.p50_latency = float("nan")
            self.p99_latency = float("nan")
            self.tail_latency = float("nan")
            self.tail_slowdown = float("nan")
            self.mean_slowdown = float("nan")
            self.mean_service = float("nan")
            self.tail_credible = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TypeSummary({self.name!r}, n={self.count}, "
            f"tail_lat={self.tail_latency:.1f}us, tail_slow={self.tail_slowdown:.1f}x)"
        )


class RunSummary:
    """Whole-run statistics at a given tail percentile (default p99.9)."""

    def __init__(
        self,
        recorder: Recorder,
        duration_us: float,
        type_specs: Optional[Sequence[RequestTypeSpec]] = None,
        warmup_frac: float = 0.10,
        pct: float = P999,
    ):
        cols = recorder.columns().after_warmup(warmup_frac)
        self.pct = pct
        self.duration_us = duration_us
        self.completed = len(cols)
        self.dropped = recorder.dropped
        self.drop_rate = (
            self.dropped / (self.dropped + recorder.completed)
            if (self.dropped + recorder.completed)
            else 0.0
        )
        if self.completed:
            self.overall_tail_slowdown = percentile(cols.slowdowns, pct)
            self.overall_tail_latency = percentile(cols.latencies, pct)
            self.overall_mean_latency = float(cols.latencies.mean())
            self.overall_mean_slowdown = float(cols.slowdowns.mean())
            self.max_slowdown = float(cols.slowdowns.max())
            self.total_preemptions = int(cols.preemptions.sum())
            self.total_overhead_us = float(cols.overheads.sum())
        else:
            self.overall_tail_slowdown = float("nan")
            self.overall_tail_latency = float("nan")
            self.overall_mean_latency = float("nan")
            self.overall_mean_slowdown = float("nan")
            self.max_slowdown = float("nan")
            self.total_preemptions = 0
            self.total_overhead_us = 0
        #: Achieved goodput over the run, in requests/us (== Mrps).
        self.throughput = recorder.completed / duration_us if duration_us > 0 else 0.0
        #: Orphan-request ledger (all zeros outside chaos/resilience runs).
        self.orphans = recorder.orphan_counters()

        names: Dict[int, str] = {}
        if type_specs:
            names = {s.type_id: s.name for s in type_specs}
        present = sorted(set(int(t) for t in cols.type_ids))
        self.per_type: Dict[int, TypeSummary] = {}
        for tid in present:
            self.per_type[tid] = TypeSummary(
                tid, names.get(tid, f"type{tid}"), cols.for_type(tid), pct
            )

    # ------------------------------------------------------------------
    # the paper's two "performance views" (§5.1)
    # ------------------------------------------------------------------
    def slowdown_view(self) -> float:
        """View (i): tail slowdown across *all* requests."""
        return self.overall_tail_slowdown

    def typed_latency_view(self) -> Dict[int, float]:
        """View (ii): tail latency per type."""
        return {tid: ts.tail_latency for tid, ts in self.per_type.items()}

    def max_typed_slowdown(self) -> float:
        """The worst per-type tail slowdown — Fig. 1's SLO is on *each*
        type, so the binding constraint is the max over types."""
        if not self.per_type:
            return float("nan")
        return max(ts.tail_slowdown for ts in self.per_type.values())

    def type_by_name(self, name: str) -> Optional[TypeSummary]:
        for ts in self.per_type.values():
            if ts.name == name:
                return ts
        return None

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"RunSummary: {self.completed} completed, {self.dropped} dropped, "
            f"throughput={self.throughput:.4f} Mrps",
            f"  overall p{self.pct} slowdown = {self.overall_tail_slowdown:.1f}x, "
            f"latency = {self.overall_tail_latency:.1f}us",
        ]
        for tid, ts in sorted(self.per_type.items()):
            cred = "" if ts.tail_credible else "  (tail not credible)"
            lines.append(
                f"  {ts.name:<12} n={ts.count:>8}  p{self.pct} "
                f"lat={ts.tail_latency:>10.1f}us  slow={ts.tail_slowdown:>8.1f}x{cred}"
            )
        if any(self.orphans.values()):
            lines.append(
                "  orphans: "
                + ", ".join(f"{k}={v}" for k, v in self.orphans.items())
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunSummary(n={self.completed}, p{self.pct} "
            f"slowdown={self.overall_tail_slowdown:.1f})"
        )
