"""Service-time distributions.

The paper's workloads use deterministic per-type service times (Table 3,
Table 4, RocksDB).  Real deployments see variance within a type, so the
library also provides exponential, lognormal, Pareto (heavy-tailed), and
uniform samplers — used by the extension benchmarks and property tests.

Every distribution exposes ``mean()`` (needed by DARC's demand equation
and by load computations) and ``sample(rng)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ConfigurationError


class ServiceTimeDistribution(ABC):
    """Interface for per-type service-time samplers."""

    @abstractmethod
    def mean(self) -> float:
        """Expected service time in microseconds."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one service time (us, strictly positive)."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` service times; subclasses may vectorize."""
        return np.array([self.sample(rng) for _ in range(n)])


class Fixed(ServiceTimeDistribution):
    """Deterministic service time — what the paper's synthetic workloads use."""

    def __init__(self, value: float):
        if value <= 0:
            raise ConfigurationError(f"service time must be > 0, got {value}")
        self.value = float(value)

    def mean(self) -> float:
        return self.value

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    def __repr__(self) -> str:
        return f"Fixed({self.value})"


class Exponential(ServiceTimeDistribution):
    """Exponentially distributed service time with the given mean."""

    def __init__(self, mean_us: float):
        if mean_us <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean_us}")
        self._mean = float(mean_us)

    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self._mean, size=n)

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class LogNormal(ServiceTimeDistribution):
    """Lognormal service time parameterized by its mean and sigma.

    ``sigma`` is the shape parameter of the underlying normal; the
    location is solved so the distribution has the requested mean.
    """

    def __init__(self, mean_us: float, sigma: float = 1.0):
        if mean_us <= 0:
            raise ConfigurationError(f"mean must be > 0, got {mean_us}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be > 0, got {sigma}")
        self._mean = float(mean_us)
        self.sigma = float(sigma)
        self._mu = math.log(mean_us) - 0.5 * sigma * sigma

    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self._mu, self.sigma, size=n)

    def __repr__(self) -> str:
        return f"LogNormal(mean={self._mean}, sigma={self.sigma})"


class Pareto(ServiceTimeDistribution):
    """Bounded-minimum Pareto — a canonical heavy-tailed service time.

    ``alpha`` must exceed 1 for the mean to exist; mean = alpha*xm/(alpha-1).
    """

    def __init__(self, minimum_us: float, alpha: float):
        if minimum_us <= 0:
            raise ConfigurationError(f"minimum must be > 0, got {minimum_us}")
        if alpha <= 1:
            raise ConfigurationError(f"alpha must be > 1 for finite mean, got {alpha}")
        self.minimum = float(minimum_us)
        self.alpha = float(alpha)

    def mean(self) -> float:
        return self.alpha * self.minimum / (self.alpha - 1.0)

    def sample(self, rng: np.random.Generator) -> float:
        # numpy's pareto() is the Lomax form; shift+scale to classic Pareto.
        return float(self.minimum * (1.0 + rng.pareto(self.alpha)))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.minimum * (1.0 + rng.pareto(self.alpha, size=n))

    def __repr__(self) -> str:
        return f"Pareto(min={self.minimum}, alpha={self.alpha})"


class Uniform(ServiceTimeDistribution):
    """Uniform service time on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if low <= 0 or high <= low:
            raise ConfigurationError(f"need 0 < low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class Bimodal(ServiceTimeDistribution):
    """Two-point distribution: ``short`` w.p. ``short_ratio`` else ``long``.

    This models an entire bimodal workload as a *single* type — useful for
    type-blind policies and for analytic cross-checks; the preset
    workloads instead model each mode as its own type.
    """

    def __init__(self, short: float, long: float, short_ratio: float):
        if short <= 0 or long <= 0:
            raise ConfigurationError("both modes must be > 0")
        if not 0.0 < short_ratio < 1.0:
            raise ConfigurationError(f"short_ratio must be in (0,1), got {short_ratio}")
        self.short = float(short)
        self.long = float(long)
        self.short_ratio = float(short_ratio)

    def mean(self) -> float:
        return self.short * self.short_ratio + self.long * (1.0 - self.short_ratio)

    def sample(self, rng: np.random.Generator) -> float:
        return self.short if rng.random() < self.short_ratio else self.long

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        picks = rng.random(n) < self.short_ratio
        return np.where(picks, self.short, self.long)

    def __repr__(self) -> str:
        return f"Bimodal(short={self.short}, long={self.long}, p={self.short_ratio})"
