"""Request and request-type models.

A :class:`Request` is the unit of work flowing through every simulated
system.  It carries the timestamps needed to compute the paper's two
metrics:

* latency   = ``finish_time - arrival_time`` (sojourn / response time)
* slowdown  = latency / service_time          (paper §2, after [40])

``type_id`` is what the *workload* knows the request to be; the type a
*classifier* assigns may differ (misclassification experiments, Fig. 9).
"""

from __future__ import annotations

from typing import Optional

#: Type id used by classifiers for requests they cannot recognize (§4.2).
UNKNOWN_TYPE = -1


class Request:
    """A single request traversing the system.

    Attributes
    ----------
    rid:
        Unique id, assigned in arrival order.
    type_id:
        Ground-truth workload type.
    arrival_time:
        When the request reached the server (us).
    service_time:
        Pure application processing time (us); the denominator of slowdown.
    remaining_time:
        Unfinished service; only preemptive policies ever reduce it below
        ``service_time``.
    classified_type:
        Type assigned by the active request classifier; ``None`` until
        classification happens.
    """

    __slots__ = (
        "rid",
        "type_id",
        "arrival_time",
        "service_time",
        "remaining_time",
        "classified_type",
        "dispatch_time",
        "first_service_time",
        "finish_time",
        "worker_id",
        "preemption_count",
        "overhead_time",
        "dropped",
        "payload",
        "retry_of",
        "attempt",
        "first_attempt_time",
        "session",
    )

    def __init__(
        self,
        rid: int,
        type_id: int,
        arrival_time: float,
        service_time: float,
        payload: Optional[bytes] = None,
    ):
        self.rid = rid
        self.type_id = type_id
        self.arrival_time = arrival_time
        self.service_time = service_time
        self.remaining_time = service_time
        self.classified_type: Optional[int] = None
        self.dispatch_time: Optional[float] = None
        self.first_service_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.worker_id: Optional[int] = None
        self.preemption_count = 0
        #: Extra time the request occupied a worker beyond its service time
        #: (preemption overheads); used for the Shinjuku overhead analysis.
        self.overhead_time = 0.0
        self.dropped = False
        self.payload = payload
        #: rid of the original request this one retries (resilience layer).
        self.retry_of: Optional[int] = None
        #: 1-based attempt number for the logical request.
        self.attempt = 1
        #: Arrival time of attempt 1; end-to-end client latency spans
        #: retries, so metrics prefer this over ``arrival_time`` when set.
        self.first_attempt_time: Optional[float] = None
        #: Session key for rack-level affinity routing (``repro.rack``):
        #: requests of one user session pin to a home server.  ``None``
        #: outside rack runs.
        self.session: Optional[int] = None

    @property
    def completed(self) -> bool:
        """True once the request has finished application processing."""
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """Sojourn time (us).  Raises if the request has not completed."""
        if self.finish_time is None:
            raise ValueError(f"request {self.rid} has not completed")
        return self.finish_time - self.arrival_time

    @property
    def slowdown(self) -> float:
        """Latency divided by pure service time (paper §2)."""
        if self.service_time <= 0:
            raise ValueError(f"request {self.rid} has non-positive service time")
        return self.latency / self.service_time

    @property
    def waiting_time(self) -> float:
        """Time spent queued before first touching a worker (us)."""
        if self.first_service_time is None:
            raise ValueError(f"request {self.rid} was never serviced")
        return self.first_service_time - self.arrival_time

    def effective_type(self) -> int:
        """The type scheduling decisions were based on."""
        return self.classified_type if self.classified_type is not None else self.type_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.completed else ("dropped" if self.dropped else "open")
        return (
            f"Request(rid={self.rid}, type={self.type_id}, "
            f"t={self.arrival_time:.3f}, S={self.service_time:.3f}, {state})"
        )


class RequestTypeSpec:
    """Static description of one request type in a workload mix.

    ``ratio`` is the occurrence probability; ``mean_service_time`` is the
    expected service time of the type's distribution.  ``name`` is used in
    reports (e.g. TPC-C transaction names).
    """

    __slots__ = ("type_id", "name", "mean_service_time", "ratio")

    def __init__(self, type_id: int, name: str, mean_service_time: float, ratio: float):
        self.type_id = type_id
        self.name = name
        self.mean_service_time = mean_service_time
        self.ratio = ratio

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RequestTypeSpec(id={self.type_id}, name={self.name!r}, "
            f"S={self.mean_service_time}, R={self.ratio})"
        )
