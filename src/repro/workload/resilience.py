"""Client-side resilience: per-request timeout, bounded retry with
exponential backoff + jitter, and orphan-request accounting.

The paper's open-loop client fires and forgets; real datacenter clients
do not.  :class:`ResilientClient` sits between the generator and the
network (the fault injector's ingress) and gives each *logical* request
a timeout and a bounded retry budget:

* an attempt that completes in time is recorded as one completion row
  whose latency spans the logical request end-to-end (attempt 1's
  arrival to the winning attempt's finish, via ``first_attempt_time``);
* an attempt that times out is *orphaned* — the server may still be
  holding it and will eventually complete it, which the client counts as
  a late completion and discards;
* a timed-out or server-dropped attempt is retried after an exponential
  backoff (with optional seeded jitter) until the budget is spent, at
  which point the logical request counts as a failure.

All bookkeeping flows into :class:`~repro.metrics.recorder.Recorder`'s
orphan counters (``timeouts`` / ``retries`` / ``failures`` /
``late_completions``) so degradation metrics see one consistent ledger.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import ConfigurationError
from ..metrics.recorder import Recorder
from ..sim.engine import EventLoop
from .request import Request

#: Retry attempts get rids in their own space so they never collide with
#: generator rids or the injector's duplicate deliveries.
RETRY_RID_BASE = 1 << 31

Sink = Callable[[Request], None]


class RetryPolicy:
    """Timeout/retry knobs for :class:`ResilientClient`.

    ``max_retries`` bounds *re-sends*: a logical request makes at most
    ``1 + max_retries`` attempts.  Backoff before retry ``k`` (1-based)
    is ``backoff_base_us * backoff_factor ** (k - 1)``, scaled by a
    uniform jitter in ``[1 - jitter_frac, 1 + jitter_frac]``.
    """

    __slots__ = (
        "timeout_us",
        "max_retries",
        "backoff_base_us",
        "backoff_factor",
        "jitter_frac",
    )

    def __init__(
        self,
        timeout_us: float,
        max_retries: int = 2,
        backoff_base_us: float = 0.0,
        backoff_factor: float = 2.0,
        jitter_frac: float = 0.0,
    ):
        if timeout_us <= 0:
            raise ConfigurationError(f"timeout_us must be > 0, got {timeout_us}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base_us < 0:
            raise ConfigurationError(
                f"backoff_base_us must be >= 0, got {backoff_base_us}"
            )
        if backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {backoff_factor}"
            )
        if not 0.0 <= jitter_frac < 1.0:
            raise ConfigurationError(
                f"jitter_frac must be in [0, 1), got {jitter_frac}"
            )
        self.timeout_us = float(timeout_us)
        self.max_retries = max_retries
        self.backoff_base_us = float(backoff_base_us)
        self.backoff_factor = float(backoff_factor)
        self.jitter_frac = float(jitter_frac)

    def backoff_us(self, retry_no: int, rng: Optional[np.random.Generator]) -> float:
        """Delay before the ``retry_no``-th re-send (1-based)."""
        delay = self.backoff_base_us * self.backoff_factor ** (retry_no - 1)
        if self.jitter_frac > 0.0:
            assert rng is not None
            delay *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RetryPolicy(timeout={self.timeout_us}us, retries={self.max_retries}, "
            f"backoff={self.backoff_base_us}us x{self.backoff_factor})"
        )


class _Outstanding:
    """Client-side state for one in-flight attempt."""

    __slots__ = (
        "logical_rid",
        "type_id",
        "service_time",
        "first_attempt_time",
        "attempt",
        "timeout_event",
    )

    def __init__(self, request: Request, timeout_event):
        self.logical_rid = (
            request.retry_of if request.retry_of is not None else request.rid
        )
        self.type_id = request.type_id
        self.service_time = request.service_time
        self.first_attempt_time = request.first_attempt_time
        self.attempt = request.attempt
        self.timeout_event = timeout_event


class ResilientClient:
    """Timeout + retry wrapper around the request path.

    Wire it as::

        client = ResilientClient(loop, policy, recorder, rng=...)
        server = Server(..., completion_sink=client.on_complete,
                        drop_sink=client.on_drop)
        client.bind(injector.ingress)          # or server.ingress
        generator = OpenLoopGenerator(..., sink=client.send, ...)
    """

    def __init__(
        self,
        loop: EventLoop,
        policy: RetryPolicy,
        recorder: Recorder,
        rng: Optional[np.random.Generator] = None,
    ):
        if policy.jitter_frac > 0.0 and rng is None:
            raise ConfigurationError(
                "jittered backoff needs an rng stream "
                "(e.g. rngs.stream('faults.retry'))"
            )
        self.loop = loop
        self.policy = policy
        self.recorder = recorder
        self.rng = rng
        self._sink: Optional[Sink] = None
        self._pending: Dict[int, _Outstanding] = {}
        self._retry_seq = 0
        #: Logical requests that completed within their attempt budget.
        self.succeeded = 0

    def bind(self, sink: Sink) -> None:
        """Attach the network-facing send path."""
        self._sink = sink

    # ------------------------------------------------------------------
    # generator-facing
    # ------------------------------------------------------------------
    def send(self, request: Request) -> None:
        """First attempt of a new logical request (the generator sink)."""
        if request.first_attempt_time is None:
            request.first_attempt_time = request.arrival_time
        self._transmit(request)

    def _transmit(self, request: Request) -> None:
        if self._sink is None:
            raise ConfigurationError("ResilientClient.bind() was never called")
        timeout_event = self.loop.call_after(
            self.policy.timeout_us, self._on_timeout, request.rid, request
        )
        self._pending[request.rid] = _Outstanding(request, timeout_event)
        self._sink(request)

    # ------------------------------------------------------------------
    # server-facing
    # ------------------------------------------------------------------
    def on_complete(self, request: Request) -> None:
        """Server completion sink."""
        entry = self._pending.pop(request.rid, None)
        if entry is None:
            # An orphan finished: a timed-out attempt, or a network
            # duplicate the client never sent.  Nobody is waiting.
            self.recorder.on_late_completion(request)
            return
        entry.timeout_event.cancel()
        self.succeeded += 1
        self.recorder.on_complete(request)

    def on_drop(self, request: Request) -> None:
        """Server drop sink (flow control or crash drop-policy)."""
        entry = self._pending.pop(request.rid, None)
        self.recorder.on_drop(request)
        if entry is None:
            return  # dropped an already-orphaned attempt
        entry.timeout_event.cancel()
        self._retry_or_fail(entry)

    # ------------------------------------------------------------------
    # timeout / retry machinery
    # ------------------------------------------------------------------
    def _on_timeout(self, rid: int, request: Request) -> None:
        entry = self._pending.pop(rid, None)
        if entry is None:
            return  # completed just before the (lazily cancelled) timer
        self.recorder.on_timeout(request)
        self._retry_or_fail(entry)

    def _retry_or_fail(self, entry: _Outstanding) -> None:
        if entry.attempt > self.policy.max_retries:
            # Budget spent: 1 original + max_retries re-sends all failed.
            self.recorder.on_failure(self._describe(entry))
            return
        retry_no = entry.attempt  # 1-based index of the upcoming re-send
        delay = self.policy.backoff_us(retry_no, self.rng)
        if delay > 0:
            self.loop.call_after(delay, self._send_retry, entry)
        else:
            self._send_retry(entry)

    def _send_retry(self, entry: _Outstanding) -> None:
        retry = Request(
            rid=RETRY_RID_BASE + self._retry_seq,
            type_id=entry.type_id,
            arrival_time=self.loop.now,
            service_time=entry.service_time,
        )
        self._retry_seq += 1
        retry.retry_of = entry.logical_rid
        retry.attempt = entry.attempt + 1
        retry.first_attempt_time = entry.first_attempt_time
        self.recorder.on_retry(retry)
        self._transmit(retry)

    def _describe(self, entry: _Outstanding) -> Request:
        """A tombstone request for the failure callback."""
        tombstone = Request(
            rid=entry.logical_rid,
            type_id=entry.type_id,
            arrival_time=(
                entry.first_attempt_time
                if entry.first_attempt_time is not None
                else self.loop.now
            ),
            service_time=entry.service_time,
        )
        tombstone.attempt = entry.attempt
        return tombstone

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Attempts the client is still waiting on."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResilientClient({self.policy!r}, outstanding={self.outstanding}, "
            f"succeeded={self.succeeded})"
        )
