"""Closed-loop clients.

The paper's load generator is open loop — the right model for exposing
overload tails.  Production services also face *closed-loop* traffic:
each client holds a bounded number of outstanding requests and thinks
between them, so offered load self-throttles as latency grows (the
"coordinated omission" trap open-loop testing avoids).

:class:`ClosedLoopClients` models N independent clients, each issuing
one request, waiting for its completion (plus a think time), and
repeating.  Completion wiring goes through :meth:`on_complete`, which
experiment code hooks into the recorder path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..errors import WorkloadError
from ..sim.engine import EventLoop
from .request import Request
from .spec import WorkloadSpec

Sink = Callable[[Request], None]


class ClosedLoopClients:
    """N clients, one outstanding request each, exponential think times."""

    def __init__(
        self,
        loop: EventLoop,
        spec: WorkloadSpec,
        sink: Sink,
        n_clients: int,
        think_time_us: float,
        type_rng: np.random.Generator,
        service_rng: np.random.Generator,
        think_rng: np.random.Generator,
        max_requests: Optional[int] = None,
    ):
        if n_clients < 1:
            raise WorkloadError(f"n_clients must be >= 1, got {n_clients}")
        if think_time_us < 0:
            raise WorkloadError(f"think_time_us must be >= 0, got {think_time_us}")
        self.loop = loop
        self.spec = spec
        self.sink = sink
        self.n_clients = n_clients
        self.think_time_us = think_time_us
        self._type_rng = type_rng
        self._service_rng = service_rng
        self._think_rng = think_rng
        self.max_requests = max_requests
        self.generated = 0
        self._stopped = False
        #: request id -> client id, to route completions back.
        self._owner: Dict[int, int] = {}

    def start(self) -> None:
        """Every client issues its first request after an initial think."""
        for client in range(self.n_clients):
            self._schedule_next(client)

    def stop(self) -> None:
        """No further requests are issued (in-flight ones complete)."""
        self._stopped = True

    def _schedule_next(self, client: int) -> None:
        if self._stopped:
            return
        if self.max_requests is not None and self.generated >= self.max_requests:
            return
        think = (
            float(self._think_rng.exponential(self.think_time_us))
            if self.think_time_us > 0
            else 0.0
        )
        self.loop.call_after(think, self._issue, client)

    def _issue(self, client: int) -> None:
        if self._stopped:
            return
        if self.max_requests is not None and self.generated >= self.max_requests:
            return
        type_id = self.spec.sample_type(self._type_rng)
        service = self.spec.sample_service(type_id, self._service_rng)
        request = Request(
            rid=self.generated,
            type_id=type_id,
            arrival_time=self.loop.now,
            service_time=service,
        )
        self._owner[request.rid] = client
        self.generated += 1
        self.sink(request)

    def on_complete(self, request: Request) -> None:
        """Hook this into the completion path: the owning client thinks,
        then issues its next request."""
        client = self._owner.pop(request.rid, None)
        if client is not None:
            self._schedule_next(client)

    @property
    def outstanding(self) -> int:
        """Requests currently in flight across all clients."""
        return len(self._owner)

    def theoretical_max_rate(self, mean_latency_us: float) -> float:
        """Little's-law ceiling: N / (E[latency] + E[think])."""
        denom = mean_latency_us + self.think_time_us
        if denom <= 0:
            raise WorkloadError("latency + think time must be > 0")
        return self.n_clients / denom

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClosedLoopClients(n={self.n_clients}, think={self.think_time_us}us, "
            f"generated={self.generated}, outstanding={self.outstanding})"
        )
