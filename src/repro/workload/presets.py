"""Preset workloads from the paper.

* ``high_bimodal``     — Table 3 row 1:   1 us @ 50%  +  100 us @ 50%   (100x dispersion)
* ``extreme_bimodal``  — Table 3 row 2: 0.5 us @ 99.5% + 500 us @ 0.5%  (1000x dispersion)
* ``figure1_workload`` — the §2 simulation mix (same shape as Extreme Bimodal)
* ``tpcc``             — Table 4: five transaction types
* ``rocksdb``          — §5.4.4: 50% GET (1.5 us) + 50% SCAN (635 us)   (~420x)

Each function returns a fresh :class:`WorkloadSpec` so callers may mutate
their copy freely.
"""

from __future__ import annotations

from .spec import WorkloadSpec, bimodal_spec, nmodal_spec

#: TPC-C transaction profile from Table 4: (name, runtime us, ratio),
#: listed in ascending service time as the paper's figures do.
TPCC_TRANSACTIONS = (
    ("Payment", 5.7, 0.44),
    ("OrderStatus", 6.0, 0.04),
    ("NewOrder", 20.0, 0.44),
    ("Delivery", 88.0, 0.04),
    ("StockLevel", 100.0, 0.04),
)


def high_bimodal() -> WorkloadSpec:
    """Table 3 *High Bimodal*: 50% x 1 us + 50% x 100 us (100x dispersion)."""
    return bimodal_spec("high_bimodal", short_us=1.0, short_ratio=0.50, long_us=100.0)


def extreme_bimodal() -> WorkloadSpec:
    """Table 3 *Extreme Bimodal*: 99.5% x 0.5 us + 0.5% x 500 us (1000x)."""
    return bimodal_spec("extreme_bimodal", short_us=0.5, short_ratio=0.995, long_us=500.0)


def figure1_workload() -> WorkloadSpec:
    """The §2 motivating simulation: identical mix to Extreme Bimodal.

    Kept as a separate constructor because Fig. 1/Fig. 10 run it on a
    16-worker ideal system, while §5 runs Extreme Bimodal on the
    14-worker testbed model.
    """
    return bimodal_spec("figure1", short_us=0.5, short_ratio=0.995, long_us=500.0)


def tpcc() -> WorkloadSpec:
    """Table 4 TPC-C transaction mix (five types, 17.5x max dispersion)."""
    return nmodal_spec("tpcc", TPCC_TRANSACTIONS)


def rocksdb() -> WorkloadSpec:
    """§5.4.4 RocksDB service: 50% GET (1.5 us) + 50% SCAN (635 us)."""
    return bimodal_spec(
        "rocksdb", short_us=1.5, short_ratio=0.50, long_us=635.0,
        short_name="GET", long_name="SCAN",
    )


def ycsb_a() -> WorkloadSpec:
    """A YCSB workload-A-shaped mix (§5.1: "an equal amount of short and
    long requests (e.g., workload A in the YCSB benchmark)").

    YCSB-A is 50% reads / 50% updates; on an in-memory store both are
    fast, but updates pay index/log maintenance.  Calibrated to a Redis-
    like engine: 2 us reads, 8 us updates (4x dispersion) — a *lightly*
    tailed mix where work-conserving policies remain competitive, useful
    as a contrast workload.
    """
    return nmodal_spec("ycsb_a", [("READ", 2.0, 0.50), ("UPDATE", 8.0, 0.50)])


def facebook_usr() -> WorkloadSpec:
    """A Facebook-USR-shaped mix (§5.1: "a majority of short requests
    with a small amount of very long requests (e.g., Facebook's USR
    workload)").

    USR is dominated by tiny GETs with rare multigets/misses hitting
    slower paths; modelled as 98% x 1 us + 1.8% x 30 us + 0.2% x 300 us
    (300x dispersion with a thin middle tier).
    """
    return nmodal_spec(
        "facebook_usr",
        [("GET", 1.0, 0.98), ("MULTIGET", 30.0, 0.018), ("MISS", 300.0, 0.002)],
    )


PRESETS = {
    "high_bimodal": high_bimodal,
    "extreme_bimodal": extreme_bimodal,
    "figure1": figure1_workload,
    "tpcc": tpcc,
    "rocksdb": rocksdb,
    "ycsb_a": ycsb_a,
    "facebook_usr": facebook_usr,
}


def by_name(name: str) -> WorkloadSpec:
    """Look up a preset workload by name; raises KeyError with choices."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; choices: {sorted(PRESETS)}"
        ) from None
