"""Phased workloads for the Fig. 7 dynamic-adaptation experiment.

The paper's §5.5 experiment drives four 5-second phases at 80% server
utilization, changing (1) which type is fast, (2) the type ratios, and
(3) finally removing one type entirely.  :class:`PhaseSchedule` arms the
phase switches on the event loop, re-deriving the arrival rate each phase
so utilization stays constant as the mean service time changes.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import WorkloadError
from ..sim.engine import EventLoop
from .generator import OpenLoopGenerator
from .spec import WorkloadSpec


class Phase:
    """One workload phase: a mixture and how long it lasts."""

    __slots__ = ("spec", "duration_us", "utilization")

    def __init__(self, spec: WorkloadSpec, duration_us: float, utilization: Optional[float] = None):
        if duration_us <= 0:
            raise WorkloadError(f"phase duration must be > 0, got {duration_us}")
        if utilization is not None and not 0.0 < utilization < 1.5:
            raise WorkloadError(f"utilization must be in (0, 1.5), got {utilization}")
        self.spec = spec
        self.duration_us = duration_us
        #: Target utilization for this phase; None keeps the previous rate.
        self.utilization = utilization

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Phase({self.spec.name!r}, {self.duration_us}us, util={self.utilization})"


class PhaseSchedule:
    """Applies a sequence of phases to a running generator.

    ``on_phase`` (if given) is called as ``on_phase(index, phase)`` at
    each switch — experiments use it to annotate time series.
    """

    def __init__(
        self,
        loop: EventLoop,
        generator: OpenLoopGenerator,
        phases: Sequence[Phase],
        n_workers: int,
        on_phase: Optional[Callable[[int, Phase], None]] = None,
    ):
        if not phases:
            raise WorkloadError("need at least one phase")
        self.loop = loop
        self.generator = generator
        self.phases: List[Phase] = list(phases)
        self.n_workers = n_workers
        self.on_phase = on_phase
        self.current_index = -1
        self._events = []

    @property
    def total_duration_us(self) -> float:
        return sum(p.duration_us for p in self.phases)

    def start(self) -> None:
        """Apply phase 0 now and schedule the remaining switches."""
        t = self.loop.now
        self._apply(0)
        for i in range(1, len(self.phases)):
            t += self.phases[i - 1].duration_us
            self._events.append(self.loop.call_at(t, self._apply, i))

    def cancel(self) -> None:
        """Cancel pending switches (the current phase keeps running)."""
        for ev in self._events:
            ev.cancel()
        self._events.clear()

    def _apply(self, index: int) -> None:
        phase = self.phases[index]
        self.current_index = index
        self.generator.set_spec(phase.spec)
        if phase.utilization is not None:
            rate = phase.utilization * phase.spec.peak_load(self.n_workers)
            self.generator.set_rate(rate)
        if self.on_phase is not None:
            self.on_phase(index, phase)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PhaseSchedule({len(self.phases)} phases, at={self.current_index})"
