"""Open-loop request generator driving a simulated server.

:class:`OpenLoopGenerator` is the simulation counterpart of the paper's
C++ client: it schedules Poisson (or other) arrivals on the event loop
and hands each new :class:`~repro.workload.request.Request` to a *sink*
(the server's ingress).  It is open loop — generation never waits for the
server — which is exactly what makes tail latency blow up at overload.

The generator supports live reconfiguration (``set_spec`` / ``set_rate``)
so the Fig. 7 phase-change experiment can mutate the workload mid-run.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import WorkloadError
from ..sim.engine import EventLoop
from .arrivals import ArrivalProcess, PoissonArrivals
from .request import Request
from .spec import WorkloadSpec

Sink = Callable[[Request], None]


class OpenLoopGenerator:
    """Generates requests into ``sink`` until ``limit`` or ``stop()``.

    Parameters
    ----------
    loop:
        The event loop to schedule arrivals on.
    spec:
        The workload mixture to sample types and service times from.
    process:
        The arrival process; typically :class:`PoissonArrivals`.
    sink:
        Called with each new request at its arrival instant.
    type_rng, service_rng, arrival_rng:
        Independent random streams so that (for variance reduction across
        compared policies) identical seeds yield identical request
        sequences regardless of how the server consumes randomness.
    limit:
        Stop after this many requests (None = unbounded; use ``stop()``).
    """

    def __init__(
        self,
        loop: EventLoop,
        spec: WorkloadSpec,
        process: ArrivalProcess,
        sink: Sink,
        type_rng: np.random.Generator,
        service_rng: np.random.Generator,
        arrival_rng: np.random.Generator,
        limit: Optional[int] = None,
    ):
        self.loop = loop
        self.spec = spec
        self.process = process
        self.sink = sink
        self._type_rng = type_rng
        self._service_rng = service_rng
        self._arrival_rng = arrival_rng
        self.limit = limit
        self.generated = 0
        self._running = False
        self._next_event = None

    def start(self) -> None:
        """Arm the first arrival."""
        if self._running:
            raise WorkloadError("generator already started")
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Cancel any pending arrival; no further requests are produced."""
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def set_spec(self, spec: WorkloadSpec) -> None:
        """Swap the workload mixture for subsequent arrivals (Fig. 7)."""
        self.spec = spec

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate (req/us) for subsequent arrivals.

        Only supported for Poisson processes, which are memoryless so the
        change is statistically clean mid-run.
        """
        if not isinstance(self.process, PoissonArrivals):
            raise WorkloadError("set_rate requires a PoissonArrivals process")
        self.process = PoissonArrivals(rate)

    def _schedule_next(self) -> None:
        if not self._running:
            return
        if self.limit is not None and self.generated >= self.limit:
            self._running = False
            return
        gap = self.process.inter_arrival(self._arrival_rng)
        self._next_event = self.loop.call_after(gap, self._emit)

    def _emit(self) -> None:
        self._next_event = None
        if not self._running:
            return
        type_id = self.spec.sample_type(self._type_rng)
        service = self.spec.sample_service(type_id, self._service_rng)
        request = Request(
            rid=self.generated,
            type_id=type_id,
            arrival_time=self.loop.now,
            service_time=service,
        )
        self.generated += 1
        self.sink(request)
        self._schedule_next()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OpenLoopGenerator(spec={self.spec.name!r}, process={self.process!r}, "
            f"generated={self.generated})"
        )
