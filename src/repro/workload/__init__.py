"""Workload modelling: requests, distributions, arrivals, presets, traces."""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    arrival_stream,
)
from .distributions import (
    Bimodal,
    Exponential,
    Fixed,
    LogNormal,
    Pareto,
    ServiceTimeDistribution,
    Uniform,
)
from .closedloop import ClosedLoopClients
from .generator import OpenLoopGenerator
from .phases import Phase, PhaseSchedule
from .presets import (
    PRESETS,
    TPCC_TRANSACTIONS,
    by_name,
    extreme_bimodal,
    facebook_usr,
    figure1_workload,
    high_bimodal,
    rocksdb,
    tpcc,
    ycsb_a,
)
from .request import UNKNOWN_TYPE, Request, RequestTypeSpec
from .spec import TypedClass, WorkloadSpec, bimodal_spec, nmodal_spec
from .trace import Trace, TraceReplayer, record_trace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "BurstyArrivals",
    "arrival_stream",
    "ServiceTimeDistribution",
    "Fixed",
    "Exponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Bimodal",
    "OpenLoopGenerator",
    "ClosedLoopClients",
    "Phase",
    "PhaseSchedule",
    "PRESETS",
    "TPCC_TRANSACTIONS",
    "by_name",
    "high_bimodal",
    "extreme_bimodal",
    "figure1_workload",
    "tpcc",
    "rocksdb",
    "ycsb_a",
    "facebook_usr",
    "Request",
    "RequestTypeSpec",
    "UNKNOWN_TYPE",
    "TypedClass",
    "WorkloadSpec",
    "bimodal_spec",
    "nmodal_spec",
    "Trace",
    "TraceReplayer",
    "record_trace",
]
