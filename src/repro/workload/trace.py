"""Arrival-trace record and replay.

Comparing two policies on *the same* realized arrival sequence removes
sampling noise from the comparison (common random numbers).  A
:class:`Trace` captures ``(arrival_time, type_id, service_time)`` triples;
:class:`TraceReplayer` feeds them back through the event loop exactly.

Traces also serialize to/from a simple CSV-like text format so
experiments can be archived and rerun.
"""

from __future__ import annotations

import io
from typing import Callable, List, Optional, TextIO, Tuple, Union

import numpy as np

from ..errors import WorkloadError
from ..sim.engine import EventLoop
from .arrivals import ArrivalProcess
from .request import Request
from .spec import WorkloadSpec

TraceRow = Tuple[float, int, float]


class Trace:
    """An immutable, time-ordered sequence of arrival records."""

    def __init__(self, rows: List[TraceRow], name: str = "trace"):
        for i in range(1, len(rows)):
            if rows[i][0] < rows[i - 1][0]:
                raise WorkloadError(f"trace rows out of order at index {i}")
        self.rows = rows
        self.name = name

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def duration(self) -> float:
        """Span from time zero to the last arrival (us)."""
        return self.rows[-1][0] if self.rows else 0.0

    def offered_rate(self) -> float:
        """Average arrival rate over the trace (req/us)."""
        d = self.duration()
        if d <= 0:
            return 0.0
        return len(self.rows) / d

    def type_counts(self) -> dict:
        """Number of requests per type id."""
        counts: dict = {}
        for _, type_id, _ in self.rows:
            counts[type_id] = counts.get(type_id, 0) + 1
        return counts

    def save(self, fp: TextIO) -> None:
        """Write as ``arrival,type,service`` lines with a header."""
        fp.write(f"# trace {self.name}: {len(self.rows)} rows\n")
        fp.write("arrival_us,type_id,service_us\n")
        for t, type_id, s in self.rows:
            fp.write(f"{t!r},{type_id},{s!r}\n")

    @classmethod
    def load(cls, fp: TextIO, name: str = "trace") -> "Trace":
        """Parse the format written by :meth:`save`."""
        rows: List[TraceRow] = []
        for line in fp:
            line = line.strip()
            if not line or line.startswith("#") or line.startswith("arrival_us"):
                continue
            t_str, type_str, s_str = line.split(",")
            rows.append((float(t_str), int(type_str), float(s_str)))
        return cls(rows, name=name)

    def dumps(self) -> str:
        buf = io.StringIO()
        self.save(buf)
        return buf.getvalue()

    @classmethod
    def loads(cls, text: str, name: str = "trace") -> "Trace":
        return cls.load(io.StringIO(text), name=name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Trace({self.name!r}, {len(self.rows)} rows, {self.duration():.1f}us)"


def record_trace(
    spec: WorkloadSpec,
    process: ArrivalProcess,
    n: int,
    type_rng: np.random.Generator,
    service_rng: np.random.Generator,
    arrival_rng: np.random.Generator,
) -> Trace:
    """Sample ``n`` arrivals from ``spec``/``process`` into a trace."""
    times = process.times(arrival_rng, n)
    type_ids = spec.sample_types(type_rng, n)
    rows: List[TraceRow] = []
    for t, type_id in zip(times, type_ids):
        service = spec.sample_service(int(type_id), service_rng)
        rows.append((float(t), int(type_id), service))
    return Trace(rows, name=spec.name)


class TraceReplayer:
    """Feeds a trace into a sink through the event loop, verbatim."""

    def __init__(self, loop: EventLoop, trace: Trace, sink: Callable[[Request], None]):
        self.loop = loop
        self.trace = trace
        self.sink = sink
        self.replayed = 0

    def start(self) -> None:
        """Schedule every arrival in the trace."""
        for rid, (t, type_id, service) in enumerate(self.trace.rows):
            self.loop.call_at(t, self._emit, rid, type_id, t, service)

    def _emit(self, rid: int, type_id: int, arrival: float, service: float) -> None:
        self.sink(Request(rid=rid, type_id=type_id, arrival_time=arrival, service_time=service))
        self.replayed += 1
