"""Open-loop arrival processes.

The paper's client "generates requests under a Poisson process" and runs
open loop — arrivals never slow down when the server lags, which is what
exposes tail blow-ups.  :class:`PoissonArrivals` is that client;
:class:`DeterministicArrivals` (fixed inter-arrival gap) and
:class:`BurstyArrivals` (Markov-modulated on/off) support the sensitivity
studies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from ..errors import WorkloadError


class ArrivalProcess(ABC):
    """Generates a monotonically non-decreasing stream of arrival times."""

    @abstractmethod
    def inter_arrival(self, rng: np.random.Generator) -> float:
        """Draw the next gap (us, >= 0)."""

    def times(self, rng: np.random.Generator, n: int, start: float = 0.0) -> np.ndarray:
        """Generate ``n`` absolute arrival times starting after ``start``."""
        gaps = np.array([self.inter_arrival(rng) for _ in range(n)])
        return start + np.cumsum(gaps)


class PoissonArrivals(ArrivalProcess):
    """Poisson arrivals at ``rate`` requests per microsecond."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        self.rate = float(rate)
        self._mean_gap = 1.0 / rate

    def inter_arrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean_gap))

    def times(self, rng: np.random.Generator, n: int, start: float = 0.0) -> np.ndarray:
        return start + np.cumsum(rng.exponential(self._mean_gap, size=n))

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate}/us)"


class DeterministicArrivals(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` requests per microsecond."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        self.rate = float(rate)
        self._gap = 1.0 / rate

    def inter_arrival(self, rng: np.random.Generator) -> float:
        return self._gap

    def times(self, rng: np.random.Generator, n: int, start: float = 0.0) -> np.ndarray:
        return start + self._gap * np.arange(1, n + 1)

    def __repr__(self) -> str:
        return f"DeterministicArrivals(rate={self.rate}/us)"


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (on/off bursts).

    In the *burst* state arrivals come at ``rate * burst_factor``; in the
    *calm* state at a reduced rate chosen so the long-run average equals
    ``rate``.  State sojourns are exponential with mean ``burst_len_us``
    and ``calm_len_us``.
    """

    def __init__(
        self,
        rate: float,
        burst_factor: float = 4.0,
        burst_len_us: float = 100.0,
        calm_len_us: float = 300.0,
    ):
        if rate <= 0:
            raise WorkloadError(f"arrival rate must be > 0, got {rate}")
        if burst_factor <= 1.0:
            raise WorkloadError(f"burst_factor must be > 1, got {burst_factor}")
        if burst_len_us <= 0 or calm_len_us <= 0:
            raise WorkloadError("state sojourn times must be > 0")
        self.rate = float(rate)
        self.burst_factor = float(burst_factor)
        self.burst_len_us = float(burst_len_us)
        self.calm_len_us = float(calm_len_us)
        # Solve the calm-state rate so that the time-weighted average rate
        # equals ``rate``:  (b*hi + c*lo) / (b + c) = rate.
        b, c = burst_len_us, calm_len_us
        hi = rate * burst_factor
        lo = (rate * (b + c) - hi * b) / c
        if lo <= 0:
            raise WorkloadError(
                "burst parameters leave no budget for the calm state; "
                "reduce burst_factor or burst_len_us"
            )
        self._hi = hi
        self._lo = lo
        self._in_burst = False
        self._state_left = 0.0

    def inter_arrival(self, rng: np.random.Generator) -> float:
        """Draw the next gap, advancing through state changes as needed."""
        gap = 0.0
        while True:
            if self._state_left <= 0.0:
                self._in_burst = not self._in_burst
                mean_len = self.burst_len_us if self._in_burst else self.calm_len_us
                self._state_left = float(rng.exponential(mean_len))
            current_rate = self._hi if self._in_burst else self._lo
            candidate = float(rng.exponential(1.0 / current_rate))
            if candidate <= self._state_left:
                self._state_left -= candidate
                return gap + candidate
            # The state expires before the candidate arrival: consume the
            # remaining sojourn and redraw in the next state (memorylessness
            # of the exponential makes this exact).
            gap += self._state_left
            self._state_left = 0.0

    def __repr__(self) -> str:
        return (
            f"BurstyArrivals(rate={self.rate}/us, x{self.burst_factor} bursts, "
            f"burst={self.burst_len_us}us, calm={self.calm_len_us}us)"
        )


def arrival_stream(
    process: ArrivalProcess,
    rng: np.random.Generator,
    limit: Optional[int] = None,
    start: float = 0.0,
) -> Iterator[float]:
    """Lazily yield absolute arrival times from ``process``."""
    t = start
    produced = 0
    while limit is None or produced < limit:
        t += process.inter_arrival(rng)
        yield t
        produced += 1
