"""Workload specifications: typed mixtures of service-time distributions.

A :class:`WorkloadSpec` is the static description of a workload — the set
of request types, their occurrence ratios, and their per-type service-time
distributions.  From it, experiment drivers derive:

* the workload's mean service time (sets the peak load of a server),
* absolute arrival rates for a target utilization,
* per-type ground truth (for DARC-oracle configurations and reports).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from .distributions import Fixed, ServiceTimeDistribution
from .request import RequestTypeSpec


class TypedClass:
    """One request type inside a workload: name, ratio, distribution."""

    __slots__ = ("name", "ratio", "distribution")

    def __init__(self, name: str, ratio: float, distribution: ServiceTimeDistribution):
        if not 0.0 < ratio <= 1.0:
            raise WorkloadError(f"ratio for {name!r} must be in (0,1], got {ratio}")
        self.name = name
        self.ratio = ratio
        self.distribution = distribution

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TypedClass({self.name!r}, ratio={self.ratio}, dist={self.distribution!r})"


class WorkloadSpec:
    """A named mixture of request types.

    Type ids are assigned by position (0..N-1) in the order given, which
    by convention is ascending mean service time — experiment reports rely
    on that ordering but the schedulers do not.
    """

    def __init__(self, name: str, classes: Sequence[TypedClass]):
        if not classes:
            raise WorkloadError("a workload needs at least one request type")
        total = sum(c.ratio for c in classes)
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"type ratios must sum to 1, got {total}")
        self.name = name
        self.classes: List[TypedClass] = list(classes)
        self._ratios = np.array([c.ratio for c in classes])
        self._cumulative = np.cumsum(self._ratios)

    @property
    def n_types(self) -> int:
        return len(self.classes)

    def type_names(self) -> List[str]:
        return [c.name for c in self.classes]

    def mean_service_time(self) -> float:
        """Workload-wide mean service time:  sum_i S_i * R_i  (Eq. 1 denominator)."""
        return float(
            sum(c.ratio * c.distribution.mean() for c in self.classes)
        )

    def peak_load(self, n_workers: int) -> float:
        """Maximum sustainable arrival rate (req/us) for ``n_workers``.

        This is the saturation point ``W / E[S]`` that the paper's
        utilization percentages are relative to.
        """
        if n_workers <= 0:
            raise WorkloadError(f"n_workers must be > 0, got {n_workers}")
        return n_workers / self.mean_service_time()

    def type_specs(self) -> List[RequestTypeSpec]:
        """Ground-truth per-type specs (id, name, mean service, ratio)."""
        return [
            RequestTypeSpec(i, c.name, c.distribution.mean(), c.ratio)
            for i, c in enumerate(self.classes)
        ]

    def demand_shares(self) -> np.ndarray:
        """Per-type CPU demand shares Δ_i = S_i R_i / Σ S_j R_j (paper Eq. 1)."""
        contrib = np.array([c.ratio * c.distribution.mean() for c in self.classes])
        return contrib / contrib.sum()

    def dispersion(self) -> float:
        """Ratio of the longest to the shortest mean service time."""
        means = [c.distribution.mean() for c in self.classes]
        return max(means) / min(means)

    def sample_type(self, rng: np.random.Generator) -> int:
        """Draw a type id according to the occurrence ratios."""
        return int(np.searchsorted(self._cumulative, rng.random(), side="right"))

    def sample_types(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized draw of ``n`` type ids."""
        return np.searchsorted(self._cumulative, rng.random(n), side="right")

    def sample_service(self, type_id: int, rng: np.random.Generator) -> float:
        """Draw a service time for ``type_id``."""
        return self.classes[type_id].distribution.sample(rng)

    def describe(self) -> str:
        """Human-readable table of the mix (used by examples and reports)."""
        lines = [f"Workload {self.name!r}  (mean S = {self.mean_service_time():.3f}us, "
                 f"dispersion = {self.dispersion():.1f}x)"]
        for i, c in enumerate(self.classes):
            lines.append(
                f"  type {i} {c.name:<12} S={c.distribution.mean():>9.3f}us  "
                f"ratio={c.ratio:>6.2%}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorkloadSpec({self.name!r}, {self.n_types} types)"


def bimodal_spec(
    name: str,
    short_us: float,
    short_ratio: float,
    long_us: float,
    short_name: str = "SHORT",
    long_name: str = "LONG",
) -> WorkloadSpec:
    """Convenience constructor for the paper's two-point workloads."""
    return WorkloadSpec(
        name,
        [
            TypedClass(short_name, short_ratio, Fixed(short_us)),
            TypedClass(long_name, 1.0 - short_ratio, Fixed(long_us)),
        ],
    )


def nmodal_spec(name: str, modes: Sequence[Tuple[str, float, float]]) -> WorkloadSpec:
    """Build an n-modal workload from ``(name, service_us, ratio)`` triples."""
    return WorkloadSpec(
        name,
        [TypedClass(n, ratio, Fixed(s)) for (n, s, ratio) in modes],
    )
