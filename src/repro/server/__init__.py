"""Server model: workers, configuration, the scheduling pipeline."""

from .config import SIMULATION_WORKERS, TESTBED_WORKERS, ServerConfig
from .server import Server
from .worker import Worker

__all__ = [
    "Server",
    "Worker",
    "ServerConfig",
    "TESTBED_WORKERS",
    "SIMULATION_WORKERS",
]
