"""Worker (application core) model with busy/idle accounting.

A worker executes one request at a time, non-preemptively unless a
preemptive policy slices its service.  Workers track busy time, overhead
time (preemption costs) and completion counts so experiments can report
utilization and CPU waste.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SchedulingError
from ..workload.request import Request


class Worker:
    """One application core."""

    __slots__ = (
        "worker_id",
        "current",
        "_busy_since",
        "total_busy_time",
        "total_overhead_time",
        "completed",
        "idle_since",
        "tags",
        "failed",
        "speed_factor",
        "crash_count",
    )

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.current: Optional[Request] = None
        self._busy_since: Optional[float] = None
        self.total_busy_time = 0.0
        #: Busy time that was pure scheduling overhead (preemption costs).
        self.total_overhead_time = 0.0
        self.completed = 0
        self.idle_since = 0.0
        #: Free-form labels (e.g. DARC group id) set by schedulers.
        self.tags: dict = {}
        #: True while the core is crashed (fault injection); a failed
        #: worker is never free, so no policy dispatches to it.
        self.failed = False
        #: Straggler degradation: service begun on this core runs
        #: ``speed_factor`` times slower than its nominal service time.
        self.speed_factor = 1.0
        #: Times this core has been crashed by fault injection.
        self.crash_count = 0

    @property
    def is_free(self) -> bool:
        return self.current is None and not self.failed

    @property
    def is_busy(self) -> bool:
        """True while a request occupies the core (crashed or not)."""
        return self.current is not None

    def fail(self) -> None:
        """Mark the core crashed.  The caller (the scheduler's crash
        handler) is responsible for evicting any in-flight request first."""
        self.failed = True
        self.crash_count += 1

    def recover(self) -> None:
        """Bring a crashed core back; it restarts clean and at full speed."""
        self.failed = False
        self.speed_factor = 1.0

    def set_speed(self, factor: float) -> None:
        """Degrade (or restore) this core's service speed.

        ``factor`` multiplies nominal service times for work *begun*
        while it is in force: 1.0 is full speed, 3.0 is a 3x straggler.
        This is the only sanctioned way for fault injection to slow a
        core — ``speed_factor`` is engine-owned state.
        """
        if factor <= 0:
            raise SchedulingError(
                f"worker {self.worker_id} speed factor must be > 0, got {factor}"
            )
        self.speed_factor = factor

    def begin(self, request: Request, now: float) -> None:
        """Start (or resume) serving ``request``."""
        if self.current is not None:
            raise SchedulingError(
                f"worker {self.worker_id} asked to begin request {request.rid} "
                f"while busy with {self.current.rid}"
            )
        self.current = request
        self._busy_since = now
        request.worker_id = self.worker_id
        if request.first_service_time is None:
            request.first_service_time = now

    def end(self, now: float, overhead: float = 0.0) -> Request:
        """Stop serving; returns the request that was on the core.

        ``overhead`` is the portion of the elapsed busy time that was
        scheduling overhead rather than useful service.
        """
        if self.current is None or self._busy_since is None:
            raise SchedulingError(f"worker {self.worker_id} asked to end while idle")
        elapsed = now - self._busy_since
        self.total_busy_time += elapsed
        self.total_overhead_time += overhead
        request = self.current
        self.current = None
        self._busy_since = None
        self.idle_since = now
        return request

    def utilization(self, now: float) -> float:
        """Fraction of wall time spent busy, counting an in-flight request."""
        if now <= 0:
            return 0.0
        busy = self.total_busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return busy / now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"busy(rid={self.current.rid})" if self.current else "idle"
        return f"Worker({self.worker_id}, {state}, done={self.completed})"
