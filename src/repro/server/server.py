"""The simulated server: workers + a scheduling policy + measurement.

:class:`Server` wires a :class:`~repro.policies.base.Scheduler` to an
event loop, a worker set and a :class:`~repro.metrics.recorder.Recorder`,
and exposes the ingress entry point the load generator feeds.  The fixed
ingress costs from :class:`~repro.server.config.ServerConfig` are applied
as a delay between arrival and the scheduler seeing the request —
matching the net-worker → classifier → typed-queue pipeline of Fig. 2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..errors import ConfigurationError
from ..metrics.recorder import Recorder
from ..metrics.utilization import UtilizationReport
from ..sim.engine import EventLoop

if TYPE_CHECKING:  # avoid a circular import (policies.base uses Worker)
    from ..policies.base import Scheduler
from ..workload.request import Request
from .config import ServerConfig
from .worker import Worker


class Server:
    """A single simulated machine running one scheduling policy."""

    def __init__(
        self,
        loop: EventLoop,
        scheduler: "Scheduler",
        config: Optional[ServerConfig] = None,
        recorder: Optional[Recorder] = None,
        completion_sink=None,
        drop_sink=None,
    ):
        self.loop = loop
        self.scheduler = scheduler
        self.config = config if config is not None else ServerConfig()
        self.recorder = recorder if recorder is not None else Recorder()
        self.workers: List[Worker] = [Worker(i) for i in range(self.config.n_workers)]
        self.received = 0
        #: Requests the dispatcher stage dropped (its inbound queue full).
        self.dispatcher_drops = 0
        #: The serial dispatcher core's busy horizon (Fig. 2): requests
        #: are handed to the scheduler in arrival order, each occupying
        #: the dispatcher for ``dispatcher_service_us``.
        self._dispatcher_free_at = 0.0
        #: Completion/drop sinks default to the recorder; a resilience
        #: layer (``repro.workload.resilience``) interposes here to see
        #: completions before they are recorded.
        self._completion_sink = (
            completion_sink if completion_sink is not None else self.recorder.on_complete
        )
        self._drop_sink = drop_sink if drop_sink is not None else self.recorder.on_drop
        #: Optional per-request observer (``repro.trace``); None when off.
        self._tracer = None
        #: Optional metrics probe (``repro.telemetry``); None when off.
        self._telemetry = None
        scheduler.bind(loop, self.workers, self._completion_sink, self._drop_sink)
        #: Ingress runs once per arrival; the config is immutable for the
        #: server's lifetime, so the property sums and the scheduler's
        #: bound entry point are cached here instead of being recomputed
        #: (two dict probes + a 3-term sum) on every request.
        self._ingress_delay_us = self.config.ingress_delay_us
        self._dispatcher_service_us = self.config.dispatcher_service_us
        self._dispatcher_queue_capacity = self.config.dispatcher_queue_capacity
        self._on_request = scheduler.on_request

    def attach_tracer(self, tracer) -> None:
        """Install a :class:`~repro.trace.tracer.Tracer` on the ingress
        path and forward it to the scheduler's own hook sites."""
        self._tracer = tracer
        self.scheduler.attach_tracer(tracer)

    def attach_telemetry(self, telemetry) -> None:
        """Install a :class:`~repro.telemetry.probe.TelemetryProbe` and
        forward it to the scheduler's push-hook sites."""
        self._telemetry = telemetry
        self.scheduler.attach_telemetry(telemetry)

    def ingress(self, request: Request) -> None:
        """Entry point for arriving requests (the generator's sink)."""
        self.received += 1
        tracer = self._tracer
        loop = self.loop
        delay = self._ingress_delay_us
        cost = self._dispatcher_service_us
        if cost > 0:
            now = loop.now
            backlog_us = max(0.0, self._dispatcher_free_at - now)
            cap = self._dispatcher_queue_capacity
            if cap is not None and backlog_us > cap * cost:
                # The dispatcher cannot keep up; the NIC ring overflows.
                self.dispatcher_drops += 1
                request.dropped = True
                if tracer is not None:
                    tracer.on_ingress(request, now)
                    tracer.on_dispatcher_drop(request)
                self._drop_sink(request)
                return
            self._dispatcher_free_at = max(now, self._dispatcher_free_at) + cost
            sched_at = self._dispatcher_free_at + delay
            if tracer is not None:
                tracer.on_ingress(request, sched_at)
            loop.call_at(sched_at, self._on_request, request)
        elif delay > 0:
            if tracer is not None:
                tracer.on_ingress(request, loop.now + delay)
            loop.call_after(delay, self._on_request, request)
        else:
            if tracer is not None:
                tracer.on_ingress(request, loop.now)
            self._on_request(request)

    def utilization(self) -> UtilizationReport:
        """Utilization over the elapsed simulation time."""
        now = self.loop.now
        if now <= 0:
            raise ConfigurationError("no simulated time has elapsed")
        return UtilizationReport(self.workers, now)

    @property
    def in_flight(self) -> int:
        """Requests being served right now."""
        return sum(1 for w in self.workers if w.is_busy)

    @property
    def alive(self) -> bool:
        """True while at least one worker core has not crashed."""
        return any(not w.failed for w in self.workers)

    @property
    def failed_workers(self) -> int:
        """Number of currently crashed cores."""
        return sum(1 for w in self.workers if w.failed)

    @property
    def pending(self) -> int:
        """Requests queued at the scheduler."""
        return self.scheduler.pending_count()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Server({type(self.scheduler).__name__}, "
            f"{self.config.n_workers} workers, received={self.received})"
        )
