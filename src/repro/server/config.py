"""Server configuration.

Collects the pipeline parameters of §4.3: worker count and the fixed
per-request costs along the ingress path (net worker handling, request
classification, dispatcher→worker channel operation).  The §2/Fig. 10
policy simulations use an "ideal system with no network overheads", i.e.
all costs zero; the Perséphone system model uses the measured prototype
costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigurationError
from ..net.channel import CHANNEL_OP_US
from ..sim.units import nanoseconds

#: §5.1 testbed: 14 worker threads on dedicated physical cores.
TESTBED_WORKERS = 14
#: §2 simulation: 16 workers.
SIMULATION_WORKERS = 16


@dataclass
class ServerConfig:
    """Static parameters of a simulated server."""

    n_workers: int = TESTBED_WORKERS
    #: Net-worker per-packet handling before the dispatcher sees it.
    net_worker_delay_us: float = 0.0
    #: Classification cost on the dispatch path (§4.2, ≈100 ns measured).
    classifier_delay_us: float = 0.0
    #: One SPSC channel operation per dispatch (§4.3.2, ≈88 cycles).
    channel_delay_us: float = 0.0
    #: Serial dispatcher-core occupancy per request.  The dispatcher is a
    #: single hardware thread (Fig. 2): its throughput ceiling is
    #: ``1 / dispatcher_service_us`` — the paper's prototype sustains
    #: ~7 Mpps (≈0.14 us/req).  0 models an infinitely fast dispatcher.
    dispatcher_service_us: float = 0.0
    #: Bound on the dispatcher's inbound queue; beyond it the NIC drops
    #: (how an overloaded Shinjuku dispatcher "starts dropping packets").
    dispatcher_queue_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {self.n_workers}")
        for field in (
            "net_worker_delay_us",
            "classifier_delay_us",
            "channel_delay_us",
            "dispatcher_service_us",
        ):
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{field} must be >= 0")
        if self.dispatcher_queue_capacity is not None and self.dispatcher_queue_capacity < 1:
            raise ConfigurationError("dispatcher_queue_capacity must be >= 1")

    @property
    def ingress_delay_us(self) -> float:
        """Total fixed delay between packet arrival and enqueue."""
        return self.net_worker_delay_us + self.classifier_delay_us + self.channel_delay_us

    @classmethod
    def ideal(cls, n_workers: int = SIMULATION_WORKERS) -> "ServerConfig":
        """The §2 simulation setting: no overheads anywhere."""
        return cls(n_workers=n_workers)

    @classmethod
    def prototype(cls, n_workers: int = TESTBED_WORKERS) -> "ServerConfig":
        """The measured Perséphone prototype costs (§4.2, §4.3.2)."""
        return cls(
            n_workers=n_workers,
            net_worker_delay_us=nanoseconds(50),
            classifier_delay_us=nanoseconds(100),
            channel_delay_us=CHANNEL_OP_US,
            # ~7 Mpps dispatcher ceiling measured in §4.2.
            dispatcher_service_us=1.0 / 7.0,
        )
