"""The run registry + cross-run regression observatory.

Every forensics collection persists one **run record** — trace meta, a
span-derived summary, the blame/herding digests — as a JSON file under
``<store>/runs/`` (written with the sweep module's atomic writer, so a
crashed collection never leaves a torn record) plus a rebuildable
``index.json``.  ``repro-forensics diff`` then compares two run groups:
pointwise metric deltas with the sweep module's Student-t confidence
intervals once a group has replicates, so "did this branch regress the
p99.9?" is answerable from two store selectors before burning any new
simulation cycles — the triage loop "Scalable Tail Latency Estimation"
argues for.

Run ids are content-derived (meta slug + SHA-256 prefix of the record),
so re-collecting an identical run is idempotent and two stores built
from the same artifacts are byte-identical — no wall-clock timestamps
anywhere in the store.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ForensicsError
from ..sweep.checkpoint import read_json, write_json_atomic
from ..sweep.stats import mean_ci

#: Store schema version; bump on incompatible record layout changes.
STORE_VERSION = 1

RECORD_KIND = "repro-forensics-run"

#: Meta keys folded into the human-readable half of a run id.
_SLUG_KEYS = ("experiment", "system", "workload", "balancer", "utilization", "seed")


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() or c in ".-" else "-" for c in text).strip("-")


def record_id(record: Dict[str, Any]) -> str:
    """Content-derived run id: meta slug + record digest prefix."""
    meta = record.get("meta", {})
    parts = [
        _slug(str(meta[key]))
        for key in _SLUG_KEYS
        if meta.get(key) not in (None, "")
    ]
    text = json.dumps(record, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(text.encode()).hexdigest()[:12]
    return "_".join(parts + [digest]) if parts else digest


def _flatten(prefix: str, value: Any, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)


class RunRegistry:
    """One forensics store: ``<root>/runs/*.json`` + ``index.json``."""

    def __init__(self, root: str):
        self.root = root
        self.runs_dir = os.path.join(root, "runs")
        self.index_path = os.path.join(root, "index.json")
        os.makedirs(self.runs_dir, exist_ok=True)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def register(self, record: Dict[str, Any]) -> str:
        """Persist one run record; returns its content-derived id.

        Idempotent: an identical record maps to the same id and file.
        """
        if record.get("kind") != RECORD_KIND:
            raise ForensicsError(
                f"record kind must be {RECORD_KIND!r}, got {record.get('kind')!r}"
            )
        run_id = record_id(record)
        stored = dict(record, run_id=run_id)
        write_json_atomic(os.path.join(self.runs_dir, f"{run_id}.json"), stored)
        self._write_index()
        return run_id

    def _write_index(self) -> None:
        entries = []
        for record in self._iter_records():
            meta = record.get("meta", {})
            entries.append(
                {
                    "run_id": record["run_id"],
                    "meta": {k: meta.get(k) for k in _SLUG_KEYS if k in meta},
                    "digests": record.get("digests", {}),
                }
            )
        write_json_atomic(
            self.index_path,
            {
                "kind": "repro-forensics-index",
                "version": STORE_VERSION,
                "runs": entries,
            },
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def _iter_records(self) -> List[Dict[str, Any]]:
        records = []
        for name in sorted(os.listdir(self.runs_dir)):
            if not name.endswith(".json"):
                continue
            try:
                record = read_json(os.path.join(self.runs_dir, name))
            except (OSError, json.JSONDecodeError) as exc:
                raise ForensicsError(
                    f"unreadable run record {name!r}: {exc}"
                ) from exc
            if record.get("kind") == RECORD_KIND:
                records.append(record)
        return records

    def run_ids(self) -> List[str]:
        return [r["run_id"] for r in self._iter_records()]

    def load(self, run_id: str) -> Dict[str, Any]:
        path = os.path.join(self.runs_dir, f"{run_id}.json")
        if not os.path.exists(path):
            raise ForensicsError(f"no run {run_id!r} in store {self.root!r}")
        return read_json(path)

    def match(self, selector: str) -> List[Dict[str, Any]]:
        """Resolve a selector to run records.

        Two grammars: a run-id prefix (``figure5_Persephone_…`` or just
        the digest head), or a comma-separated meta filter
        (``system=Persephone,utilization=0.7``).
        """
        records = self._iter_records()
        if "=" in selector:
            filters: List[Tuple[str, str]] = []
            for clause in selector.split(","):
                key, _, value = clause.partition("=")
                if not key or not value:
                    raise ForensicsError(f"bad meta filter clause {clause!r}")
                filters.append((key.strip(), value.strip()))
            return [
                r
                for r in records
                if all(
                    str(r.get("meta", {}).get(key)) == value
                    for key, value in filters
                )
            ]
        return [r for r in records if r["run_id"].startswith(selector)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RunRegistry({self.root!r}, {len(self.run_ids())} runs)"


# ----------------------------------------------------------------------
# cross-run diff
# ----------------------------------------------------------------------
def _group_metrics(records: Sequence[Dict[str, Any]]) -> Dict[str, List[float]]:
    grouped: Dict[str, List[float]] = {}
    for record in records:
        flat: Dict[str, float] = {}
        _flatten("", record.get("summary", {}), flat)
        for key, value in flat.items():
            grouped.setdefault(key, []).append(value)
    return grouped


def diff_groups(
    group_a: Sequence[Dict[str, Any]],
    group_b: Sequence[Dict[str, Any]],
    confidence: float = 0.95,
) -> Dict[str, Any]:
    """Metric-by-metric delta between two run groups.

    Each side is summarized as ``mean ± half_width`` (Student-t
    ``mean_ci`` once it has >= 2 replicates; a point estimate with zero
    half-width otherwise).  A delta is **significant** when it exceeds
    the combined half-widths — the conservative no-overlap criterion.
    """
    if not group_a or not group_b:
        raise ForensicsError("diff needs at least one run on each side")
    metrics_a = _group_metrics(group_a)
    metrics_b = _group_metrics(group_b)
    rows: Dict[str, Any] = {}
    for key in sorted(set(metrics_a) & set(metrics_b)):
        va, vb = metrics_a[key], metrics_b[key]
        ci_a = mean_ci(va, confidence) if len(va) >= 2 else None
        ci_b = mean_ci(vb, confidence) if len(vb) >= 2 else None
        mean_a = ci_a.mean if ci_a else sum(va) / len(va)
        mean_b = ci_b.mean if ci_b else sum(vb) / len(vb)
        half_a = ci_a.half_width if ci_a else 0.0
        half_b = ci_b.half_width if ci_b else 0.0
        delta = mean_b - mean_a
        rows[key] = {
            "a": {"n": len(va), "mean": mean_a, "half_width": half_a},
            "b": {"n": len(vb), "mean": mean_b, "half_width": half_b},
            "delta": delta,
            "delta_pct": (delta / mean_a * 100.0) if mean_a else None,
            "significant": abs(delta) > (half_a + half_b),
        }
    return {
        "confidence": confidence,
        "n_a": len(group_a),
        "n_b": len(group_b),
        "metrics": rows,
    }


def render_diff(diff: Dict[str, Any], only_significant: bool = False) -> str:
    """Human-readable diff table (``repro-forensics diff``)."""
    lines = [
        f"Forensics diff: {diff['n_a']} run(s) vs {diff['n_b']} run(s) "
        f"at {diff['confidence'] * 100:g}% confidence"
    ]
    shown = 0
    for key, row in diff["metrics"].items():
        if only_significant and not row["significant"]:
            continue
        shown += 1
        a, b = row["a"], row["b"]
        pct = (
            f" ({row['delta_pct']:+.1f}%)" if row["delta_pct"] is not None else ""
        )
        mark = "  *" if row["significant"] else ""
        lines.append(
            f"  {key:48s} {a['mean']:12.3f}±{a['half_width']:<10.3f}"
            f" -> {b['mean']:12.3f}±{b['half_width']:<10.3f}"
            f" delta {row['delta']:+.3f}{pct}{mark}"
        )
    if shown == 0:
        lines.append("  (no shared metrics" + (" above significance)" if only_significant else ")"))
    else:
        lines.append("  * = |delta| exceeds combined half-widths")
    return "\n".join(lines)
