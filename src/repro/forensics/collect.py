"""Collection glue: trace exports -> forensics records in a store.

Experiment drivers thread a ``forensics_dir`` next to ``trace_dir``;
after the runs finish, :func:`collect_directory` walks every
``*.trace.json`` the driver wrote, runs the blame analyzer (and the
herding detector, for rack traces carrying a ``route`` log), derives a
span-level summary, and registers one run record per trace in the
:class:`~repro.forensics.registry.RunRegistry` under ``forensics_dir``.

Collection is post-hoc by construction — it starts only after the last
simulated event — so ``--forensics`` cannot perturb results.  Asking
for forensics without tracing is a contradiction (there would be
nothing to analyze), reported as :class:`~repro.errors.UsageError`
rather than silently ignored.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence

from ..errors import UsageError
from ..trace.span import COMPLETE, Span
from .blame import (
    DEFAULT_PCT,
    DEFAULT_WARMUP_FRAC,
    analyze_blame,
    percentile_threshold,
)
from .herding import detect_herding
from .registry import RECORD_KIND, STORE_VERSION, RunRegistry


def span_summary(spans: Sequence[Span], pct: float = 99.9) -> Dict[str, Any]:
    """Summary metrics re-derived from the spans themselves.

    The exact post-hoc counterpart of
    :class:`~repro.metrics.summary.RunSummary`: per-type and overall
    completion counts, mean/tail latency, and tail slowdown
    (latency / pure service time) at ``pct``, computed over completed
    spans with no warmup discard (the trace carries every request).
    """
    per_type: Dict[int, Dict[str, List[float]]] = {}
    dropped = 0
    for span in spans:
        if span.terminal == COMPLETE:
            row = per_type.setdefault(span.type_id, {"lat": [], "slow": []})
            latency = span.latency
            row["lat"].append(latency)
            if span.service_time > 0:
                row["slow"].append(latency / span.service_time)
        elif span.terminal is not None:
            dropped += 1
    all_lat = [v for row in per_type.values() for v in row["lat"]]
    all_slow = [v for row in per_type.values() for v in row["slow"]]
    summary: Dict[str, Any] = {
        "pct": pct,
        "completed": len(all_lat),
        "dropped": dropped,
        "overall": {
            "mean_latency_us": sum(all_lat) / len(all_lat) if all_lat else None,
            "tail_latency_us": percentile_threshold(all_lat, pct) if all_lat else None,
            "tail_slowdown": percentile_threshold(all_slow, pct) if all_slow else None,
        },
        "per_type": {},
    }
    for type_id in sorted(per_type):
        lat = per_type[type_id]["lat"]
        slow = per_type[type_id]["slow"]
        summary["per_type"][str(type_id)] = {
            "completed": len(lat),
            "mean_latency_us": sum(lat) / len(lat),
            "tail_latency_us": percentile_threshold(lat, pct),
            "tail_slowdown": percentile_threshold(slow, pct) if slow else None,
        }
    return summary


def analyze_trace_file(
    path: str,
    pct: float = DEFAULT_PCT,
    summary_pct: float = 99.9,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
) -> Dict[str, Any]:
    """One trace file -> one registry-ready run record."""
    from ..trace.export import load_trace

    doc = load_trace(path)
    blame = analyze_blame(doc.spans, pct=pct, warmup_frac=warmup_frac)
    blame.verify()
    herding = None
    if any(
        isinstance(d, (list, tuple)) and len(d) == 3 and d[1] == "route"
        for d in doc.decisions
    ):
        herding = detect_herding(doc.decisions)
    digests: Dict[str, Any] = {
        "blame": blame.digest(),
        "reconciliation_ok": blame.reconciliation()["ok"],
    }
    if herding is not None:
        digests["herding"] = herding.digest()
        digests["herding_flagged"] = herding.flagged
    return {
        "kind": RECORD_KIND,
        "version": STORE_VERSION,
        "meta": dict(doc.meta),
        "summary": span_summary(doc.spans, pct=summary_pct),
        "blame": blame.to_dict(),
        "herding": None if herding is None else herding.to_dict(),
        "digests": digests,
    }


def collect_directory(
    forensics_dir: Optional[str],
    trace_dir: Optional[str],
    experiment: Optional[str] = None,
    pct: float = DEFAULT_PCT,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
) -> List[str]:
    """Collect every trace in ``trace_dir`` into the forensics store.

    No-op returning ``[]`` when ``forensics_dir`` is None.  Raises
    :class:`~repro.errors.UsageError` when forensics is requested
    without tracing.  Returns the registered run ids (trace-filename
    order, so collection is deterministic).
    """
    if forensics_dir is None:
        return []
    if trace_dir is None:
        raise UsageError(
            "--forensics needs --trace: forensics analyzes the per-request "
            "trace exports, and no driver wrote any"
        )
    registry = RunRegistry(forensics_dir)
    run_ids: List[str] = []
    for name in sorted(os.listdir(trace_dir)):
        if not name.endswith(".trace.json"):
            continue
        record = analyze_trace_file(
            os.path.join(trace_dir, name), pct=pct, warmup_frac=warmup_frac
        )
        if experiment is not None:
            record["meta"].setdefault("experiment", experiment)
        record["source"] = name
        run_ids.append(registry.register(record))
    return run_ids
