"""Post-hoc tail forensics: causal blame attribution over trace exports.

The trace plane (:mod:`repro.trace`) says *where* a tail request's time
went — pipeline, queue, preemption gaps, service.  This package says
*who* caused it: for every request above a configurable percentile it
reconstructs the **blocking set** (which concrete requests occupied the
victim's candidate workers during its wait windows) and aggregates
per-victim-type × per-blocker-type **blame matrices** — the causal form
of the paper's head-of-line-blocking argument.  On top of that sit the
rack **herding detector** (synchronized balancer choices under stale
views, over the decision log :mod:`repro.rack.tracing` records) and the
cross-run **regression observatory** (:mod:`repro.forensics.registry`).

Everything here is strictly post-hoc: analyses read exported trace
documents and never touch a live run, so forensics can never perturb a
simulation — digest neutrality is structural, not promised.
"""

from .blame import BlameReport, analyze_blame
from .herding import HerdingReport, detect_herding
from .registry import RunRegistry, diff_groups

__all__ = [
    "BlameReport",
    "analyze_blame",
    "HerdingReport",
    "detect_herding",
    "RunRegistry",
    "diff_groups",
]
