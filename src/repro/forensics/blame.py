"""Causal blame attribution for tail requests.

For each **victim** — a completed span whose latency sits at or above
its type's configurable percentile — this module answers *who made it
wait*, exactly and reconcilably:

* the **HOL bucket** covers the victim's ``queue_wait`` window
  ``[sched_at, first_slice.begin)``;
* the **preempt-interference bucket** covers the gaps between its
  on-core slices (``preempt_wait``);
* the **pipeline bucket** is the dispatcher delay
  (``dispatch_pipeline``), blamed on the synthetic ``dispatch`` blocker.

Wait windows are attributed over the victim type's **candidate
workers** — the cores that served at least one request of that type
after the warmup horizon (under DARC these are the type's reserved
cores; under work-conserving systems they are all cores).  The horizon
mirrors the §5.1 warmup discard: victims and candidate sets come from
the steady-state tail of the trace (default the last 90%), so DARC's
learning phase — during which every core serves every type — does not
smear the candidate sets or dominate the victim population.  Occupancy
timelines still cover the whole run, because a core held is a core
held regardless of when the blocker started.  Each candidate worker
carries a share of the window proportional to the fraction of the
victim type's steady-state service time it performed — a worker that
ran 95% of the shorts carries 95% of a short victim's wait — split
between the concrete requests occupying it (blamed on the *blocker's*
type) and a synthetic ``idle`` blocker for unoccupied time.  Because
the shares sum to one and occupied and idle time partition every
worker's share, the blame totals reconcile **exactly**::

    sum(hol blame)     == queue_wait
    sum(preempt blame) == preempt_wait
    pipeline blame     == dispatch_pipeline

per victim (checked by :meth:`BlameReport.verify`, mirroring
:meth:`repro.trace.breakdown.LatencyBreakdown.verify`).  This is what
turns the paper's Figure-5 story causal: under Perséphone/DARC, short
victims' candidate cores are short-reserved, so their long-type blame
collapses toward zero, while Shenango/Shinjuku spread both types over
every core and shorts inherit substantial long-type blame.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ForensicsError
from ..trace.span import COMPLETE, Span

#: Default victim threshold: the per-type p99.
DEFAULT_PCT = 99.0

#: Default warmup horizon as a fraction of the trace's time span,
#: mirroring the paper's §5.1 warmup discard: victims and candidate
#: sets come from the steady-state last 90% of the run.
DEFAULT_WARMUP_FRAC = 0.10

#: Synthetic blocker key: candidate-worker time nobody occupied (the
#: non-work-conserving "idling is ideal" share of the wait).
IDLE = "idle"
#: Synthetic blocker key for dispatcher-pipeline delay.
DISPATCH = "dispatch"

#: Per-victim reconciliation tolerance (float summation slack).
DEFAULT_ATOL = 1e-6


def percentile_threshold(values: Sequence[float], pct: float) -> float:
    """The inverted-CDF percentile: smallest value with at least
    ``pct``% of the sample at or below it.  Deterministic, exact on the
    sample, and guarantees at least one victim (the max) per type."""
    if not values:
        raise ForensicsError("percentile of an empty sample")
    ordered = sorted(values)
    index = max(0, math.ceil(pct / 100.0 * len(ordered)) - 1)
    return ordered[index]


class _WorkerTimeline:
    """One worker's closed slices, sorted for O(log n) overlap queries.

    Worker exclusivity makes the slices disjoint, so both ``begins``
    and ``ends`` are sorted and the slices overlapping ``[a, b)`` form
    one contiguous run.
    """

    __slots__ = ("begins", "ends", "type_ids", "rids")

    def __init__(self, slices: List[Tuple[float, float, int, int]]):
        slices.sort()
        self.begins = [s[0] for s in slices]
        self.ends = [s[1] for s in slices]
        self.type_ids = [s[2] for s in slices]
        self.rids = [s[3] for s in slices]

    def overlaps(self, a: float, b: float):
        """Yield ``(overlap_us, type_id, rid)`` for slices crossing
        ``[a, b)``."""
        lo = bisect_right(self.ends, a)
        hi = bisect_left(self.begins, b)
        for i in range(lo, hi):
            ov = min(self.ends[i], b) - max(self.begins[i], a)
            if ov > 0.0:
                yield ov, self.type_ids[i], self.rids[i]


class VictimBlame:
    """One victim's fully attributed wait time."""

    __slots__ = (
        "rid",
        "type_id",
        "latency",
        "queue_wait",
        "preempt_wait",
        "dispatch_pipeline",
        "hol",
        "preempt",
        "blockers",
    )

    def __init__(self, span: Span, stages: Dict[str, float]):
        self.rid = span.rid
        self.type_id = span.type_id
        self.latency = span.latency
        self.queue_wait = stages["queue_wait"]
        self.preempt_wait = stages["preempt_wait"]
        self.dispatch_pipeline = stages["dispatch_pipeline"]
        #: HOL blame by blocker key (type id or :data:`IDLE`).
        self.hol: Dict[Any, float] = {}
        #: Preempt-interference blame by blocker key.
        self.preempt: Dict[Any, float] = {}
        #: Concrete blocking set: blocker rid -> unweighted overlap us.
        self.blockers: Dict[int, float] = {}

    def reconcile(self) -> Dict[str, float]:
        """Signed residuals of blame totals vs the span stage partition."""
        return {
            "hol": math.fsum(self.hol.values()) - self.queue_wait,
            "preempt": math.fsum(self.preempt.values()) - self.preempt_wait,
        }

    def top_blockers(self, k: int = 10) -> List[Tuple[int, float]]:
        """The ``k`` heaviest concrete blockers (rid, overlap us)."""
        ranked = sorted(self.blockers.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


class BlameReport:
    """Aggregated blame matrices plus the per-victim evidence."""

    def __init__(self, pct: float, warmup_frac: float = DEFAULT_WARMUP_FRAC):
        self.pct = pct
        self.warmup_frac = warmup_frac
        #: Absolute warmup horizon (us): victims arrive at/after this.
        self.horizon_us = 0.0
        #: Per-type victim latency thresholds.
        self.thresholds: Dict[int, float] = {}
        #: Candidate worker ids per type (who served that type in the
        #: steady state, i.e. in a slice beginning at/after the horizon).
        self.candidates: Dict[int, List[int]] = {}
        #: Per-type worker weights (service-time shares summing to 1):
        #: type -> worker id -> fraction of that type's steady service.
        self.candidate_weights: Dict[int, Dict[int, float]] = {}
        self.victims: List[VictimBlame] = []
        #: victim type -> blocker key -> HOL-blocking us.
        self.hol_matrix: Dict[int, Dict[Any, float]] = {}
        #: victim type -> blocker key -> preempt/steal interference us.
        self.preempt_matrix: Dict[int, Dict[Any, float]] = {}
        #: victim type -> dispatcher-pipeline delay us.
        self.pipeline: Dict[int, float] = {}
        #: Observed mean service time per type (short/long labelling).
        self.mean_service: Dict[int, float] = {}
        #: Closed slices scanned while building timelines (bench metric).
        self.slices_indexed = 0

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def victim_types(self) -> List[int]:
        return sorted(self.hol_matrix)

    def n_victims(self, victim_type: Optional[int] = None) -> int:
        if victim_type is None:
            return len(self.victims)
        return sum(1 for v in self.victims if v.type_id == victim_type)

    def total_blame(self, victim_type: int, blocker_key: Any) -> float:
        """HOL + preempt-interference blame for one matrix cell."""
        return self.hol_matrix.get(victim_type, {}).get(
            blocker_key, 0.0
        ) + self.preempt_matrix.get(victim_type, {}).get(blocker_key, 0.0)

    def blocker_share(self, victim_type: int, blocker_key: Any) -> float:
        """``blocker_key``'s fraction of ``victim_type``'s total wait
        blame (HOL + preempt, all blockers incl. idle); 0 when the type
        has no attributed wait."""
        total = math.fsum(
            self.total_blame(victim_type, key)
            for key in self.blocker_keys(victim_type)
        )
        if total <= 0.0:
            return 0.0
        return self.total_blame(victim_type, blocker_key) / total

    def blocker_keys(self, victim_type: int) -> List[Any]:
        keys = set(self.hol_matrix.get(victim_type, {}))
        keys |= set(self.preempt_matrix.get(victim_type, {}))
        return sorted(keys, key=str)

    def short_long_types(self) -> Optional[Tuple[int, int]]:
        """(shortest, longest) type by observed mean service time, or
        None for single-type workloads."""
        if len(self.mean_service) < 2:
            return None
        ordered = sorted(self.mean_service, key=lambda t: self.mean_service[t])
        return ordered[0], ordered[-1]

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def verify(self, atol: float = DEFAULT_ATOL) -> None:
        """Assert every victim's blame totals equal its stage partition.

        Raises :class:`~repro.errors.ForensicsError` on the first victim
        whose HOL, preempt, or pipeline blame drifts from the span's
        ``queue_wait + preempt_wait + dispatch_pipeline`` by more than
        ``atol`` — a drift means the attribution lost or invented time.
        """
        for victim in self.victims:
            residuals = victim.reconcile()
            for bucket, residual in residuals.items():
                if abs(residual) > atol:
                    raise ForensicsError(
                        f"victim rid={victim.rid}: {bucket} blame drifts "
                        f"{residual:+.3e}us from its stage partition "
                        f"(tolerance {atol:g})"
                    )

    def reconciliation(self, atol: float = DEFAULT_ATOL) -> Dict[str, Any]:
        """Machine-readable reconciliation digest (never raises)."""
        worst = 0.0
        for victim in self.victims:
            for residual in victim.reconcile().values():
                worst = max(worst, abs(residual))
        return {
            "n_victims": len(self.victims),
            "max_residual_us": worst,
            "atol": atol,
            "ok": worst <= atol,
        }

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    @staticmethod
    def _matrix_dict(matrix: Dict[int, Dict[Any, float]]) -> Dict[str, Dict[str, float]]:
        return {
            str(vt): {str(k): matrix[vt][k] for k in sorted(matrix[vt], key=str)}
            for vt in sorted(matrix)
        }

    def to_dict(self, top_blockers: int = 10) -> Dict[str, Any]:
        return {
            "pct": self.pct,
            "warmup_frac": self.warmup_frac,
            "horizon_us": self.horizon_us,
            "thresholds_us": {str(t): self.thresholds[t] for t in sorted(self.thresholds)},
            "candidates": {str(t): self.candidates[t] for t in sorted(self.candidates)},
            "candidate_weights": {
                str(t): {
                    str(w): self.candidate_weights[t][w]
                    for w in sorted(self.candidate_weights[t])
                }
                for t in sorted(self.candidate_weights)
            },
            "mean_service_us": {
                str(t): self.mean_service[t] for t in sorted(self.mean_service)
            },
            "hol_us": self._matrix_dict(self.hol_matrix),
            "preempt_us": self._matrix_dict(self.preempt_matrix),
            "pipeline_us": {str(t): self.pipeline[t] for t in sorted(self.pipeline)},
            "victims": [
                {
                    "rid": v.rid,
                    "type_id": v.type_id,
                    "latency_us": v.latency,
                    "queue_wait_us": v.queue_wait,
                    "preempt_wait_us": v.preempt_wait,
                    "dispatch_pipeline_us": v.dispatch_pipeline,
                    "top_blockers": [[rid, us] for rid, us in v.top_blockers(top_blockers)],
                }
                for v in self.victims
            ],
            "reconciliation": self.reconciliation(),
            "slices_indexed": self.slices_indexed,
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form (regression pinning)."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BlameReport(p{self.pct:g}, victims={len(self.victims)}, "
            f"types={self.victim_types()})"
        )


def _attribute_window(
    a: float,
    b: float,
    weights: Dict[int, float],
    timelines: Dict[int, _WorkerTimeline],
    bucket: Dict[Any, float],
    blockers: Dict[int, float],
) -> None:
    """Split window ``[a, b)`` over the candidate workers into blamed
    occupancy + idle, accumulating into ``bucket`` (keyed by blocker
    type or :data:`IDLE`) and ``blockers`` (keyed by blocker rid).
    ``weights`` maps each candidate worker to its share of the window
    (the type's service-time fractions, summing to 1)."""
    width = b - a
    if width <= 0.0 or not weights:
        return
    for worker in sorted(weights):
        share = weights[worker]
        timeline = timelines.get(worker)
        occupied = 0.0
        if timeline is not None:
            for ov, blocker_type, blocker_rid in timeline.overlaps(a, b):
                occupied += ov
                bucket[blocker_type] = bucket.get(blocker_type, 0.0) + ov * share
                blockers[blocker_rid] = blockers.get(blocker_rid, 0.0) + ov
        idle = width - occupied
        if idle != 0.0:
            bucket[IDLE] = bucket.get(IDLE, 0.0) + idle * share


def analyze_blame(
    spans: Sequence[Span],
    pct: float = DEFAULT_PCT,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
) -> BlameReport:
    """Build the blame report for one run's spans.

    ``spans`` is the native trace section (completed and not); victims
    are completed spans at or above their type's ``pct`` latency
    percentile, drawn from the **steady state**: the earliest-arriving
    ``warmup_frac`` of completions is discarded first, exactly mirroring
    :meth:`repro.metrics.recorder.CompletionColumns.after_warmup` (§5.1).
    Candidate sets use only slices beginning at/after the first kept
    arrival, so DARC's learning phase — when every core still serves
    every type — does not smear them; a type whose service lies entirely
    in the warmup falls back to its whole-run candidates.  Occupancy
    timelines include **every** closed slice — also warmup-era slices
    and those of requests that later dropped or were evicted — because
    a core held is a core held.  Still-open slices (in flight at trace
    capture) are treated as unoccupied time, which books their overlap
    as ``idle`` without breaking the exact reconciliation.
    """
    if not 0.0 < pct < 100.0:
        raise ForensicsError(f"pct must be in (0, 100), got {pct}")
    if not 0.0 <= warmup_frac < 1.0:
        raise ForensicsError(f"warmup_frac must be in [0, 1), got {warmup_frac}")
    report = BlameReport(pct, warmup_frac)

    # Occupancy timelines + completions (whole run).
    per_worker: Dict[int, List[Tuple[float, float, int, int]]] = {}
    completed: List[Span] = []
    for span in spans:
        for s in span.slices:
            if s.end is None:
                continue
            per_worker.setdefault(s.worker_id, []).append(
                (s.begin, s.end, span.type_id, span.rid)
            )
            report.slices_indexed += 1
        if span.terminal == COMPLETE and span.slices:
            completed.append(span)
    if not completed:
        raise ForensicsError("no completed spans to analyze")

    # §5.1 warmup discard: drop the earliest-arriving warmup_frac of
    # completions; the horizon is the first kept arrival.
    completed.sort(key=lambda s: (s.sched_at, s.rid))
    kept = completed[int(len(completed) * warmup_frac):]
    report.horizon_us = kept[0].sched_at

    # Candidate workers weighted by steady-state service time (whole-run
    # fallback for types whose service lies entirely in the warmup).
    steady: Dict[int, Dict[int, float]] = {}
    whole: Dict[int, Dict[int, float]] = {}
    for worker, slices in per_worker.items():
        for begin, end, type_id, _rid in slices:
            row = whole.setdefault(type_id, {})
            row[worker] = row.get(worker, 0.0) + (end - begin)
            if begin >= report.horizon_us:
                row = steady.setdefault(type_id, {})
                row[worker] = row.get(worker, 0.0) + (end - begin)
    for type_id, fallback in whole.items():
        served = steady.get(type_id) or fallback
        total = math.fsum(served.values())
        report.candidates[type_id] = sorted(served)
        if total > 0.0:
            report.candidate_weights[type_id] = {
                w: us / total for w, us in served.items()
            }
        else:  # zero-length slices only: equal shares keep the sum at 1
            report.candidate_weights[type_id] = {
                w: 1.0 / len(served) for w in served
            }

    latencies: Dict[int, List[float]] = {}
    service_sums: Dict[int, Tuple[float, int]] = {}
    for span in kept:
        latencies.setdefault(span.type_id, []).append(span.latency)
        total, count = service_sums.get(span.type_id, (0.0, 0))
        service_sums[span.type_id] = (total + span.service_time, count + 1)
    timelines = {w: _WorkerTimeline(slices) for w, slices in per_worker.items()}
    report.mean_service = {
        t: total / count for t, (total, count) in service_sums.items()
    }
    report.thresholds = {
        t: percentile_threshold(values, pct) for t, values in latencies.items()
    }

    for span in kept:
        if span.latency < report.thresholds[span.type_id]:
            continue
        stages = span.stages()
        victim = VictimBlame(span, stages)
        weights = report.candidate_weights.get(span.type_id, {})
        first_begin = span.slices[0].begin
        _attribute_window(
            span.sched_at, first_begin, weights, timelines, victim.hol, victim.blockers
        )
        prev_end = None
        for s in span.slices:
            if prev_end is not None and s.begin > prev_end:
                _attribute_window(
                    prev_end, s.begin, weights, timelines,
                    victim.preempt, victim.blockers,
                )
            prev_end = s.end
        report.victims.append(victim)
        hol_row = report.hol_matrix.setdefault(span.type_id, {})
        for key, value in victim.hol.items():
            hol_row[key] = hol_row.get(key, 0.0) + value
        preempt_row = report.preempt_matrix.setdefault(span.type_id, {})
        for key, value in victim.preempt.items():
            preempt_row[key] = preempt_row.get(key, 0.0) + value
        report.pipeline[span.type_id] = (
            report.pipeline.get(span.type_id, 0.0) + victim.dispatch_pipeline
        )
        # Every victim type owns a matrix row even if it never waited.
        report.hol_matrix.setdefault(span.type_id, {})
        report.preempt_matrix.setdefault(span.type_id, {})
    return report


def render_blame(report: BlameReport, type_names: Optional[Dict[int, str]] = None) -> str:
    """Human-readable blame matrices (the ``repro-forensics blame`` text)."""
    names = type_names or {}

    def label(key: Any) -> str:
        if isinstance(key, int):
            return names.get(key, f"type{key}")
        return str(key)

    lines = [
        f"Blame report (victims at/above per-type p{report.pct:g}; "
        f"{len(report.victims)} victims; warmup {report.warmup_frac:g} "
        f"-> horizon {report.horizon_us:.1f}us)"
    ]
    for vt in report.victim_types():
        weights = report.candidate_weights.get(vt, {})
        top = sorted(weights, key=lambda w: (-weights[w], w))[:3]
        top_text = ", ".join(f"w{w}={weights[w]:.2f}" for w in top)
        lines.append(
            f"  victim {label(vt)} (n={report.n_victims(vt)}, "
            f"threshold {report.thresholds.get(vt, float('nan')):.1f}us, "
            f"{len(report.candidates.get(vt, []))} candidates: {top_text})"
        )
        for key in report.blocker_keys(vt):
            hol = report.hol_matrix.get(vt, {}).get(key, 0.0)
            pre = report.preempt_matrix.get(vt, {}).get(key, 0.0)
            share = report.blocker_share(vt, key)
            lines.append(
                f"    blocked by {label(key):12s} "
                f"hol={hol:12.2f}us  preempt={pre:10.2f}us  "
                f"share={share * 100:5.1f}%"
            )
        lines.append(
            f"    pipeline delay {report.pipeline.get(vt, 0.0):.2f}us (dispatch)"
        )
    recon = report.reconciliation()
    lines.append(
        f"  reconciliation: max residual {recon['max_residual_us']:.3e}us "
        f"({'exact' if recon['ok'] else 'BROKEN'})"
    )
    return "\n".join(lines)
