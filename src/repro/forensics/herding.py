"""Herding detection over the rack balancer decision log.

A stale-view balancer (RackSched-style piggybacked state) has a failure
mode the mean hides: every arrival inside one staleness window sees the
*same* snapshot, so they all pick the same "least-loaded" replica — a
synchronized-choice **burst** that stampedes one server while the rest
idle.  PR 8's rack sweeps showed ``jsq-stale`` losing to power-of-two
for exactly this reason; this module makes the mechanism measurable.

Input is the ``route`` decision log :class:`repro.rack.tracing.RackTracer`
records (replica chosen, view age, viewed vs actual load).  A **burst**
is a maximal run of consecutive decisions routed to the same replica.
Under a fresh view, routing to a replica raises its load and the next
arrival usually goes elsewhere, so bursts stay near the ~N/(N-1)
random-choice baseline; under a stale view, bursts stretch to roughly
``arrival_rate × staleness`` decisions.  The detector flags a balancer
when the fraction of decisions inside bursts of at least ``burst_min``
crosses ``flag_fraction`` — thresholds far above any fresh-view
balancer and far below a genuinely herding one, locked by tests on the
oracle-vs-50µs ``jsq-stale`` pair.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ForensicsError

#: A burst must reach this many same-replica decisions to count.
DEFAULT_BURST_MIN = 8

#: Flag when this fraction of decisions sits inside counted bursts.
DEFAULT_FLAG_FRACTION = 0.25


class Burst:
    """One maximal run of same-replica routing decisions."""

    __slots__ = ("start", "end", "replica", "length", "stale_count")

    def __init__(self, start: float, replica: int):
        self.start = start
        self.end = start
        self.replica = replica
        self.length = 0
        #: Decisions in the burst made from a stale (aged) view.
        self.stale_count = 0

    def to_list(self) -> list:
        return [self.start, self.end, self.replica, self.length, self.stale_count]


class HerdingReport:
    """Burst statistics + the herding verdict for one decision log."""

    def __init__(
        self,
        bursts: List[Burst],
        n_routes: int,
        n_replicas: int,
        stale_routes: int,
        burst_min: int,
        flag_fraction: float,
    ):
        self.bursts = bursts
        self.n_routes = n_routes
        self.n_replicas = n_replicas
        self.stale_routes = stale_routes
        self.burst_min = burst_min
        self.flag_fraction = flag_fraction

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def max_burst(self) -> int:
        return max((b.length for b in self.bursts), default=0)

    @property
    def mean_burst(self) -> float:
        if not self.bursts:
            return 0.0
        return self.n_routes / len(self.bursts)

    @property
    def herding_fraction(self) -> float:
        """Fraction of decisions inside bursts of >= ``burst_min``."""
        if self.n_routes == 0:
            return 0.0
        herded = sum(b.length for b in self.bursts if b.length >= self.burst_min)
        return herded / self.n_routes

    @property
    def stale_fraction(self) -> float:
        if self.n_routes == 0:
            return 0.0
        return self.stale_routes / self.n_routes

    @property
    def flagged(self) -> bool:
        return self.herding_fraction >= self.flag_fraction

    def to_dict(self, max_bursts: int = 200) -> Dict[str, Any]:
        """JSON digest; the timeline keeps the ``max_bursts`` longest
        bursts (time-ordered) so reports stay bounded."""
        keep = sorted(
            sorted(self.bursts, key=lambda b: (-b.length, b.start))[:max_bursts],
            key=lambda b: b.start,
        )
        return {
            "n_routes": self.n_routes,
            "n_replicas": self.n_replicas,
            "n_bursts": len(self.bursts),
            "max_burst": self.max_burst,
            "mean_burst": self.mean_burst,
            "burst_min": self.burst_min,
            "flag_fraction": self.flag_fraction,
            "herding_fraction": self.herding_fraction,
            "stale_fraction": self.stale_fraction,
            "flagged": self.flagged,
            "bursts": [b.to_list() for b in keep],
        }

    def digest(self) -> str:
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HerdingReport(routes={self.n_routes}, max_burst={self.max_burst}, "
            f"herding={self.herding_fraction:.2f}, flagged={self.flagged})"
        )


def _route_rows(decisions: Sequence[Any]) -> List[Tuple[float, Dict[str, Any]]]:
    """Normalize decision entries to ``(time, payload)`` route rows.

    Accepts both live :class:`~repro.trace.tracer.Decision` objects and
    the exported ``[time, kind, payload]`` list form.
    """
    rows: List[Tuple[float, Dict[str, Any]]] = []
    for entry in decisions:
        if isinstance(entry, (list, tuple)):
            if len(entry) != 3:
                continue
            time, kind, payload = entry
        else:
            time, kind, payload = entry.time, entry.kind, entry.payload
        if kind == "route" and isinstance(payload, dict):
            rows.append((float(time), payload))
    return rows


def detect_herding(
    decisions: Sequence[Any],
    burst_min: int = DEFAULT_BURST_MIN,
    flag_fraction: float = DEFAULT_FLAG_FRACTION,
) -> HerdingReport:
    """Scan a decision log for synchronized-choice bursts.

    ``decisions`` may be a full decision log (non-``route`` entries are
    ignored) or just the route entries.  Raises
    :class:`~repro.errors.ForensicsError` when the log carries no route
    decisions at all — herding over a single-server trace is undefined,
    not zero.
    """
    if burst_min < 2:
        raise ForensicsError(f"burst_min must be >= 2, got {burst_min}")
    if not 0.0 < flag_fraction <= 1.0:
        raise ForensicsError(
            f"flag_fraction must be in (0, 1], got {flag_fraction}"
        )
    rows = _route_rows(decisions)
    if not rows:
        raise ForensicsError(
            "no 'route' decisions in this trace; herding analysis needs a "
            "rack trace (run with --trace on the rack experiment)"
        )
    bursts: List[Burst] = []
    current: Optional[Burst] = None
    replicas = set()
    stale_routes = 0
    for time, payload in rows:
        replica = int(payload.get("replica", -1))
        stale = bool(payload.get("stale", False))
        replicas.add(replica)
        stale_routes += stale
        if current is None or replica != current.replica:
            current = Burst(time, replica)
            bursts.append(current)
        current.length += 1
        current.end = time
        current.stale_count += stale
    return HerdingReport(
        bursts,
        n_routes=len(rows),
        n_replicas=len(replicas),
        stale_routes=stale_routes,
        burst_min=burst_min,
        flag_fraction=flag_fraction,
    )


def render_herding(report: HerdingReport, balancer: Optional[str] = None) -> str:
    """Human-readable herding verdict (``repro-forensics herding``)."""
    label = f" [{balancer}]" if balancer else ""
    verdict = "HERDING" if report.flagged else "no herding"
    lines = [
        f"Herding report{label}: {verdict}",
        f"  routes            {report.n_routes} over {report.n_replicas} replicas",
        f"  bursts            {len(report.bursts)} "
        f"(mean {report.mean_burst:.2f}, max {report.max_burst})",
        f"  herding fraction  {report.herding_fraction * 100:.1f}% of decisions "
        f"in bursts >= {report.burst_min} (flag at "
        f"{report.flag_fraction * 100:.0f}%)",
        f"  stale fraction    {report.stale_fraction * 100:.1f}% of decisions "
        "made from an aged view",
    ]
    longest = sorted(report.bursts, key=lambda b: (-b.length, b.start))[:5]
    for b in longest:
        if b.length < report.burst_min:
            break
        lines.append(
            f"    burst: replica {b.replica} x{b.length} "
            f"[{b.start:.1f}us .. {b.end:.1f}us] "
            f"({b.stale_count} stale)"
        )
    return "\n".join(lines)
