"""The forensics observatory report: one self-contained HTML page.

Renders a registry store as a static, no-JS page (same philosophy as
the telemetry dashboard): the run table, per-run blame matrices
(victim-type rows × blocker columns, shaded by share), herding verdicts
with an inline-SVG burst timeline per rack run, and — when the caller
points it at CI's ``BENCH_*.json`` artifacts — the benchmark trajectory
table, so one artifact answers "what got slower, who blocked whom, and
did the balancer herd" at a glance.
"""

from __future__ import annotations

import glob
import os
from html import escape
from typing import Any, Dict, List, Optional, Sequence

from .registry import RunRegistry

_CSS = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2em; color: #1b1f24; }
h1, h2, h3 { font-weight: 600; }
table { border-collapse: collapse; margin: 0.8em 0 1.6em; }
th, td { border: 1px solid #d0d7de; padding: 0.25em 0.7em;
         text-align: right; font-size: 13px; }
th { background: #f6f8fa; text-align: center; }
td.label { text-align: left; background: #f6f8fa; }
.flag { color: #b30000; font-weight: 700; }
.ok { color: #0a6e31; }
.meta { color: #57606a; font-size: 12px; }
svg { border: 1px solid #d0d7de; background: #fff; }
"""

#: Replica stripe colors for the herding timeline (cycled).
_COLORS = (
    "#4c78a8", "#f58518", "#54a24b", "#e45756",
    "#72b7b2", "#b279a2", "#9d755d", "#bab0ac",
)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return escape(str(value))


def _shade(share: float) -> str:
    """Background shading for a blame cell by its share of the wait."""
    alpha = max(0.0, min(1.0, share))
    return f"background: rgba(214, 39, 40, {alpha * 0.65:.3f});"


def _blame_table(blame: Dict[str, Any]) -> List[str]:
    hol = blame.get("hol_us", {})
    preempt = blame.get("preempt_us", {})
    pipeline = blame.get("pipeline_us", {})
    victim_types = sorted(set(hol) | set(preempt), key=str)
    blockers: List[str] = sorted(
        {k for row in list(hol.values()) + list(preempt.values()) for k in row},
        key=str,
    )
    parts = ["<table><tr><th>victim \\ blocker</th>"]
    parts.extend(f"<th>{escape(b)}</th>" for b in blockers)
    parts.append("<th>pipeline</th></tr>")
    for vt in victim_types:
        row_hol = hol.get(vt, {})
        row_pre = preempt.get(vt, {})
        total = sum(row_hol.values()) + sum(row_pre.values())
        parts.append(f"<tr><td class='label'>type {escape(vt)}</td>")
        for b in blockers:
            cell = row_hol.get(b, 0.0) + row_pre.get(b, 0.0)
            share = cell / total if total > 0 else 0.0
            parts.append(
                f"<td style='{_shade(share)}' title='share {share * 100:.1f}%'>"
                f"{cell:.1f}</td>"
            )
        parts.append(f"<td>{pipeline.get(vt, 0.0):.1f}</td></tr>")
    parts.append("</table>")
    return parts


def _herding_svg(herding: Dict[str, Any], width: int = 720, height: int = 60) -> str:
    """Burst timeline: one colored rect per burst, x = virtual time."""
    bursts = herding.get("bursts", [])
    if not bursts:
        return ""
    t0 = min(b[0] for b in bursts)
    t1 = max(b[1] for b in bursts)
    span = max(t1 - t0, 1e-9)
    parts = [f"<svg width='{width}' height='{height}'>"]
    for start, end, replica, length, _stale in bursts:
        x = (start - t0) / span * (width - 2) + 1
        w = max((end - start) / span * (width - 2), 1.0)
        color = _COLORS[int(replica) % len(_COLORS)]
        parts.append(
            f"<rect x='{x:.1f}' y='8' width='{w:.1f}' height='{height - 16}' "
            f"fill='{color}'><title>replica {replica} x{length} "
            f"[{start:.0f}..{end:.0f}us]</title></rect>"
        )
    parts.append("</svg>")
    return "".join(parts)


def _bench_tables(bench_paths: Sequence[str]) -> List[str]:
    from ..telemetry.bench import summarize_file

    parts: List[str] = ["<h2>Benchmark trajectory</h2>"]
    for path in bench_paths:
        summary = summarize_file(path)
        if not summary:
            continue
        parts.append(f"<h3>{escape(os.path.basename(path))}</h3><table>")
        parts.append("<tr><th>benchmark</th><th>metric</th><th>value</th></tr>")
        for bench in sorted(summary):
            for metric in sorted(summary[bench]):
                parts.append(
                    f"<tr><td class='label'>{escape(bench)}</td>"
                    f"<td class='label'>{escape(metric)}</td>"
                    f"<td>{summary[bench][metric]:.6g}</td></tr>"
                )
        parts.append("</table>")
    return parts


def observatory_html(
    registry: RunRegistry,
    bench_glob: Optional[str] = None,
    title: str = "repro forensics observatory",
) -> str:
    """Render the whole store as one self-contained HTML page."""
    records = [registry.load(run_id) for run_id in registry.run_ids()]
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f"<p class='meta'>{len(records)} run(s) in {escape(registry.root)}</p>",
    ]

    # -- run table ------------------------------------------------------
    parts.append(
        "<h2>Runs</h2><table><tr><th>run</th><th>completed</th>"
        "<th>dropped</th><th>p99.9 latency (us)</th><th>p99.9 slowdown</th>"
        "<th>victims</th><th>herding</th></tr>"
    )
    for record in records:
        summary = record.get("summary", {})
        overall = summary.get("overall", {})
        herding = record.get("herding")
        if herding is None:
            verdict = "<td>n/a</td>"
        elif herding.get("flagged"):
            verdict = "<td class='flag'>HERDING</td>"
        else:
            verdict = "<td class='ok'>clean</td>"
        parts.append(
            f"<tr><td class='label'>{escape(record['run_id'])}</td>"
            f"<td>{summary.get('completed', 0)}</td>"
            f"<td>{summary.get('dropped', 0)}</td>"
            f"<td>{_fmt(overall.get('tail_latency_us', ''))}</td>"
            f"<td>{_fmt(overall.get('tail_slowdown', ''))}</td>"
            f"<td>{record.get('blame', {}).get('reconciliation', {}).get('n_victims', 0)}</td>"
            f"{verdict}</tr>"
        )
    parts.append("</table>")

    # -- per-run blame + herding ---------------------------------------
    for record in records:
        parts.append(f"<h2>{escape(record['run_id'])}</h2>")
        meta = record.get("meta", {})
        parts.append(
            "<p class='meta'>"
            + escape(", ".join(f"{k}={meta[k]}" for k in sorted(meta, key=str)))
            + "</p>"
        )
        parts.append("<h3>Blame matrix (HOL + preempt interference, us)</h3>")
        parts.extend(_blame_table(record.get("blame", {})))
        herding = record.get("herding")
        if herding is not None:
            verdict = "HERDING" if herding.get("flagged") else "no herding"
            cls = "flag" if herding.get("flagged") else "ok"
            parts.append(
                f"<h3>Herding: <span class='{cls}'>{verdict}</span> "
                f"(fraction {herding.get('herding_fraction', 0.0) * 100:.1f}%, "
                f"max burst {herding.get('max_burst', 0)}, "
                f"stale {herding.get('stale_fraction', 0.0) * 100:.1f}%)</h3>"
            )
            parts.append(_herding_svg(herding))

    # -- bench trajectory ----------------------------------------------
    if bench_glob:
        bench_paths = sorted(glob.glob(bench_glob))
        if bench_paths:
            parts.extend(_bench_tables(bench_paths))

    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(
    path: str,
    store: str,
    bench_glob: Optional[str] = None,
    title: str = "repro forensics observatory",
) -> str:
    """Render the store at ``store`` into an HTML file at ``path``."""
    registry = RunRegistry(store)
    with open(path, "w") as fp:
        fp.write(observatory_html(registry, bench_glob=bench_glob, title=title))
    return path
