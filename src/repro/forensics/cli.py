"""``repro-forensics`` — tail forensics over trace exports.

Usage::

    repro-forensics blame run.trace.json                # blame matrices
    repro-forensics blame run.trace.json --pct 99.9 --json
    repro-forensics herding rack.trace.json             # herding verdict
    repro-forensics herding rack.trace.json --fail-on-herding
    repro-forensics collect --store F --trace-dir T     # traces -> registry
    repro-forensics registry F                          # list the store
    repro-forensics diff F system=Persephone system=Shenango
    repro-forensics diff F <run-id-prefix-a> <run-id-prefix-b>
    repro-forensics report F -o observatory.html --bench 'BENCH_*.json'

Exit codes: 0 clean, 1 gate failure (``--fail-on-herding`` with a
flagged log), 2 usage or data errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import ReproError
from .blame import DEFAULT_PCT, DEFAULT_WARMUP_FRAC, analyze_blame, render_blame
from .collect import collect_directory
from .herding import (
    DEFAULT_BURST_MIN,
    DEFAULT_FLAG_FRACTION,
    detect_herding,
    render_herding,
)
from .registry import RunRegistry, diff_groups, render_diff


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-forensics",
        description="Causal tail forensics for the Persephone reproduction: "
        "blame attribution, rack herding detection, and the cross-run "
        "regression observatory.",
    )
    sub = parser.add_subparsers(dest="command")

    blame = sub.add_parser("blame", help="per-victim blame attribution")
    blame.add_argument("trace", help="trace file (repro-trace native export)")
    blame.add_argument(
        "--pct", type=float, default=DEFAULT_PCT,
        help=f"victim threshold percentile per type (default {DEFAULT_PCT:g})",
    )
    blame.add_argument(
        "--warmup", type=float, default=DEFAULT_WARMUP_FRAC, metavar="FRAC",
        help="fraction of earliest arrivals discarded before picking "
        f"victims, as in the paper's §5.1 (default {DEFAULT_WARMUP_FRAC:g})",
    )
    blame.add_argument("--json", action="store_true", help="machine-readable output")

    herd = sub.add_parser("herding", help="balancer herding detection")
    herd.add_argument("trace", help="rack trace file (carries the route log)")
    herd.add_argument(
        "--burst-min", type=int, default=DEFAULT_BURST_MIN,
        help=f"minimum counted burst length (default {DEFAULT_BURST_MIN})",
    )
    herd.add_argument(
        "--flag-fraction", type=float, default=DEFAULT_FLAG_FRACTION,
        help="herded-decision fraction that trips the flag "
        f"(default {DEFAULT_FLAG_FRACTION:g})",
    )
    herd.add_argument("--json", action="store_true", help="machine-readable output")
    herd.add_argument(
        "--fail-on-herding", action="store_true",
        help="exit 1 when the log is flagged (CI gate)",
    )

    collect = sub.add_parser("collect", help="fold trace exports into a store")
    collect.add_argument("--store", required=True, help="forensics store directory")
    collect.add_argument(
        "--trace-dir", required=True, help="directory of *.trace.json exports"
    )
    collect.add_argument(
        "--experiment", default=None, help="experiment tag for the run records"
    )
    collect.add_argument(
        "--pct", type=float, default=DEFAULT_PCT,
        help=f"victim threshold percentile (default {DEFAULT_PCT:g})",
    )
    collect.add_argument(
        "--warmup", type=float, default=DEFAULT_WARMUP_FRAC, metavar="FRAC",
        help=f"warmup discard fraction (default {DEFAULT_WARMUP_FRAC:g})",
    )

    registry = sub.add_parser("registry", help="list the runs in a store")
    registry.add_argument("store", help="forensics store directory")
    registry.add_argument("--json", action="store_true", help="machine-readable output")

    diff = sub.add_parser("diff", help="compare two run groups")
    diff.add_argument("store", help="forensics store directory")
    diff.add_argument("a", help="baseline selector (run-id prefix or k=v,... filter)")
    diff.add_argument("b", help="candidate selector")
    diff.add_argument(
        "--confidence", type=float, default=0.95,
        help="Student-t confidence level for replicated groups (default 0.95)",
    )
    diff.add_argument(
        "--significant-only", action="store_true",
        help="show only deltas beyond the combined half-widths",
    )
    diff.add_argument("--json", action="store_true", help="machine-readable output")

    report = sub.add_parser("report", help="render the observatory HTML page")
    report.add_argument("store", help="forensics store directory")
    report.add_argument("-o", "--output", required=True, help="HTML file to write")
    report.add_argument(
        "--bench", default=None, metavar="GLOB",
        help="BENCH_*.json glob for the benchmark-trajectory section",
    )
    report.add_argument(
        "--title", default="repro forensics observatory", help="page title"
    )
    return parser


def _cmd_blame(args) -> int:
    from ..trace.export import load_trace

    doc = load_trace(args.trace)
    report = analyze_blame(doc.spans, pct=args.pct, warmup_frac=args.warmup)
    report.verify()
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_blame(report))
    return 0


def _cmd_herding(args) -> int:
    from ..trace.export import load_trace

    doc = load_trace(args.trace)
    report = detect_herding(
        doc.decisions, burst_min=args.burst_min, flag_fraction=args.flag_fraction
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_herding(report, balancer=doc.meta.get("balancer")))
    if args.fail_on_herding and report.flagged:
        return 1
    return 0


def _cmd_collect(args) -> int:
    run_ids = collect_directory(
        args.store, args.trace_dir, experiment=args.experiment,
        pct=args.pct, warmup_frac=args.warmup,
    )
    for run_id in run_ids:
        print(f"registered {run_id}")
    print(f"repro-forensics: {len(run_ids)} run(s) collected into {args.store}")
    return 0


def _cmd_registry(args) -> int:
    registry = RunRegistry(args.store)
    if args.json:
        print(json.dumps(registry.run_ids(), indent=2))
        return 0
    for run_id in registry.run_ids():
        record = registry.load(run_id)
        digests = record.get("digests", {})
        herd = digests.get("herding_flagged")
        herd_text = "n/a" if herd is None else ("HERDING" if herd else "clean")
        print(f"{run_id}  blame={digests.get('blame', '?')[:12]}  herding={herd_text}")
    print(f"repro-forensics: {len(registry.run_ids())} run(s) in {args.store}")
    return 0


def _cmd_diff(args) -> int:
    registry = RunRegistry(args.store)
    group_a = registry.match(args.a)
    group_b = registry.match(args.b)
    diff = diff_groups(group_a, group_b, confidence=args.confidence)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, only_significant=args.significant_only))
    return 0


def _cmd_report(args) -> int:
    from .report import write_report

    path = write_report(
        args.output, args.store, bench_glob=args.bench, title=args.title
    )
    print(f"repro-forensics: wrote {path}")
    return 0


_COMMANDS = {
    "blame": _cmd_blame,
    "herding": _cmd_herding,
    "collect": _cmd_collect,
    "registry": _cmd_registry,
    "diff": _cmd_diff,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"repro-forensics: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-forensics: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
