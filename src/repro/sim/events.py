"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a callback.  Events are
ordered by ``(time, seq)`` where ``seq`` is a monotonically increasing
tie-breaker, guaranteeing deterministic FIFO ordering for events scheduled
at the same instant — an important property for reproducible simulations.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Event:
    """A scheduled callback inside the event loop.

    Users normally obtain events from :meth:`repro.sim.engine.EventLoop.call_at`
    and only interact with them to :meth:`cancel` pending work (e.g. a
    preemption timer made obsolete by an early completion).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it; idempotent."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event has not been cancelled (it may have fired)."""
        return not self.cancelled

    def sort_key(self) -> Tuple[float, int]:
        return (self.time, self.seq)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name}, {state})"


def make_repr_time(t: Optional[float]) -> str:
    """Format a simulation time for human-readable messages."""
    if t is None:
        return "<none>"
    return f"{t:.3f}us"
