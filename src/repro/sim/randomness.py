"""Seeded random-number streams for reproducible simulations.

Every stochastic component (arrival process, service-time sampler, RSS
hash, work-stealing victim choice, ...) draws from its own named stream so
that changing one component's consumption pattern does not perturb the
others.  Streams are derived from a single root seed with
``numpy.random.SeedSequence.spawn``-style child seeding, giving
statistically independent streams.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class RngRegistry:
    """A registry of independent, named random streams.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("service")
    >>> a is rngs.stream("arrivals")
    True
    >>> a is not b
    True
    """

    def __init__(self, seed: Optional[int] = None):
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        self.seed = seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream for a given (root seed, name) pair is always the same,
        independent of creation order, because child seeds are derived by
        hashing the name into the entropy pool.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed deterministically from the stream name so
            # that registration order does not matter.
            name_entropy = [ord(c) for c in name]
            child = np.random.SeedSequence(
                entropy=self._root.entropy if self._root.entropy is not None else 0,
                spawn_key=tuple(name_entropy),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngRegistry":
        """Return a registry with a seed derived from this one and ``salt``.

        Useful for running statistically independent replications of the
        same experiment.
        """
        base = self.seed if self.seed is not None else 0
        return RngRegistry(seed=(base * 1_000_003 + salt) % (2**63))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
