"""The discrete-event simulation engine.

:class:`EventLoop` is a classic calendar/heap-based discrete-event
executor.  Time is a ``float`` in *simulated microseconds* — the natural
unit for the microsecond-scale scheduling this package studies.

Design notes
------------
* Events fire strictly in ``(time, insertion order)`` order, so two events
  scheduled for the same instant run in the order they were scheduled.
  This determinism matters: scheduling policies make tie-breaking
  decisions (e.g. "which worker became idle first") that must be stable
  across runs with the same seed.
* Cancellation is lazy: cancelled events stay in the heap and are skipped
  when popped.  This keeps ``cancel`` O(1), which matters for preemption
  timers that are cancelled far more often than they fire.
* The heap stores ``(time, seq, event)`` tuples rather than bare
  :class:`~repro.sim.events.Event` objects.  Tuple comparison runs in C;
  comparing events via ``Event.__lt__`` was the single hottest function
  in the self-profile (one Python call per sift step per push/pop).  The
  ordering is identical — ``Event.__lt__`` uses the same ``(time, seq)``
  key — and :meth:`peek_event` still hands callers the event object.
* The loop never moves time backwards; scheduling in the past raises
  :class:`~repro.errors.SimulationError` instead of silently reordering
  history.
* An optional :class:`~repro.lint.sanitizer.SimSanitizer` may be attached
  via :meth:`EventLoop.attach_sanitizer`; the loop then reports every
  executed event (and heap drain) to it.  With no sanitizer attached the
  cost is a single ``is None`` test per event.
* An optional :class:`~repro.trace.tracer.Tracer` may be attached via
  :meth:`EventLoop.attach_tracer`; the loop notifies it after every
  executed event, which is how the tracer takes its periodic
  queue-depth/worker-state samples *without scheduling events of its
  own* — the heap contents, and therefore the simulated outcome, are
  identical with tracing on or off.  When detached the cost is again a
  single ``is None`` test per event.
* The same piggyback contract powers :mod:`repro.telemetry`: an optional
  :class:`~repro.telemetry.probe.TelemetryProbe`
  (:meth:`EventLoop.attach_telemetry`) is notified after every executed
  event and scrapes metrics on virtual time, and an optional
  :class:`~repro.telemetry.profiler.SelfProfiler`
  (:meth:`EventLoop.attach_profiler`) wraps event execution to attribute
  the simulator's own wall-clock cost per handler type.  Neither touches
  the heap, so simulated outcomes stay bit-identical.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .events import Event


class EventLoop:
    """A deterministic discrete-event executor.

    Example
    -------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.call_at(5.0, fired.append, "b")
    >>> _ = loop.call_at(1.0, fired.append, "a")
    >>> loop.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0):
        if start_time < 0:
            raise SimulationError(f"start_time must be >= 0, got {start_time}")
        self._now = float(start_time)
        self._heap: list = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._stopped = False
        self._sanitizer = None
        self._tracer = None
        self._telemetry = None
        self._profiler = None

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Number of events still in the heap, including cancelled ones."""
        return len(self._heap)

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation ``time``.

        Returns the :class:`Event`, whose :meth:`~Event.cancel` method
        revokes the callback if it has not yet fired.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.3f} before now={self._now:.3f}"
            )
        seq = self._seq
        event = Event(time, seq, fn, args)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` ``delay`` microseconds from now.

        Inlined rather than delegating to :meth:`call_at`: this is the
        dominant scheduling entry point (one call per arrival and per
        service completion) and ``delay >= 0`` already implies the
        not-in-the-past invariant ``call_at`` would re-check.
        """
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        time = self._now + delay
        seq = self._seq
        event = Event(time, seq, fn, args)
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    @property
    def sanitizer(self):
        """The attached :class:`SimSanitizer`, or None (the default)."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer) -> None:
        """Install an invariant checker notified around every event.

        Pass ``None`` to detach.  Only one sanitizer may be attached at a
        time; attaching over an existing one raises.
        """
        if sanitizer is not None and self._sanitizer is not None and sanitizer is not self._sanitizer:
            raise SimulationError("a sanitizer is already attached to this loop")
        self._sanitizer = sanitizer

    @property
    def tracer(self):
        """The attached :class:`~repro.trace.tracer.Tracer`, or None."""
        return self._tracer

    def attach_tracer(self, tracer) -> None:
        """Install an observer notified after every executed event.

        The tracer is strictly read-only: it samples queue depths and
        worker states but never schedules events or mutates state, so
        attaching one cannot change the simulated outcome.  Pass ``None``
        to detach; attaching over a different tracer raises.
        """
        if tracer is not None and self._tracer is not None and tracer is not self._tracer:
            raise SimulationError("a tracer is already attached to this loop")
        self._tracer = tracer

    @property
    def telemetry(self):
        """The attached :class:`~repro.telemetry.probe.TelemetryProbe`,
        or None."""
        return self._telemetry

    def attach_telemetry(self, telemetry) -> None:
        """Install a metrics probe notified after every executed event.

        Like the tracer, the probe is a pure observer — it scrapes
        simulated state on virtual time but never schedules events, so
        attaching one cannot change the simulated outcome.  Pass
        ``None`` to detach; attaching over a different probe raises.
        """
        if telemetry is not None and self._telemetry is not None and telemetry is not self._telemetry:
            raise SimulationError("a telemetry probe is already attached to this loop")
        self._telemetry = telemetry

    @property
    def profiler(self):
        """The attached :class:`~repro.telemetry.profiler.SelfProfiler`,
        or None."""
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        """Install a self-profiler that wraps event execution.

        The profiler measures the *simulator's* wall-clock cost per
        handler type; it executes each event via
        ``profiler.run_event(event)`` instead of a direct call but
        never touches simulated state.  Pass ``None`` to detach;
        attaching over a different profiler raises.
        """
        if profiler is not None and self._profiler is not None and profiler is not self._profiler:
            raise SimulationError("a profiler is already attached to this loop")
        self._profiler = profiler

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is drained."""
        event = self.peek_event()
        return event.time if event is not None else None

    def peek_event(self) -> Optional[Event]:
        """The next pending non-cancelled event, or None when drained.

        This is how a sanitizer in shadow mode detects same-timestamp
        *sibling* events: inside a callback (or the sanitizer hooks
        around it) the event being executed has already been popped, so
        the peeked event is the one that will fire next — if its time
        equals the current event's time, the two are an insertion-order
        tie.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0][2] if heap else None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` on return even if the last event fired earlier, so
        measurements of "simulated duration" are exact.

        Returns the simulation time at exit.
        """
        if self._running:
            raise SimulationError("EventLoop.run() is not reentrant")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        sanitizer = self._sanitizer
        tracer = self._tracer
        telemetry = self._telemetry
        profiler = self._profiler
        executed = 0
        try:
            while heap:
                head = heap[0]
                event = head[2]
                if event.cancelled:
                    heappop(heap)
                    continue
                time = head[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(heap)
                if sanitizer is not None:
                    sanitizer.before_event(self, event)
                self._now = time
                if profiler is not None:
                    profiler.run_event(event)
                else:
                    event.fn(*event.args)
                self._events_processed += 1
                executed += 1
                if sanitizer is not None:
                    sanitizer.after_event(self, event)
                if tracer is not None:
                    tracer.on_loop_event(self)
                if telemetry is not None:
                    telemetry.on_loop_event(self)
                if self._stopped:
                    break
            if sanitizer is not None:
                drained = True
                for entry in heap:
                    if not entry[2].cancelled:
                        drained = False
                        break
                if drained:
                    sanitizer.on_drain(self)
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            if max_events is None or executed < max_events:
                self._now = until
        return self._now

    def drain(self) -> None:
        """Discard every pending event without running it."""
        self._heap.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EventLoop(now={self._now:.3f}us, pending={len(self._heap)}, "
            f"processed={self._events_processed})"
        )
