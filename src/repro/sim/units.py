"""Unit helpers: everything in this package is simulated *microseconds*.

The paper mixes units freely — cycles for dispatcher costs, nanoseconds
for the classifier, microseconds for service times, seconds for run
durations, and millions of requests per second for load.  These helpers
make each conversion explicit at the call site.
"""

from __future__ import annotations

from ..errors import ConfigurationError

#: Clock rate of the paper's CloudLab c6420 testbed (Intel Xeon Gold 6142).
DEFAULT_CPU_GHZ = 2.6

US_PER_SECOND = 1_000_000.0
#: Short alias — the spelling experiment code reaches for at call sites
#: (``total_duration_us=1.2 * US_PER_S``); the analyzer's A505 check
#: treats either name as the sanctioned way to write big times.
US_PER_S = US_PER_SECOND
US_PER_MS = 1_000.0
NS_PER_US = 1_000.0


def seconds(s: float) -> float:
    """Convert seconds to simulated microseconds."""
    return s * US_PER_SECOND


def milliseconds(ms: float) -> float:
    """Convert milliseconds to simulated microseconds."""
    return ms * US_PER_MS


def nanoseconds(ns: float) -> float:
    """Convert nanoseconds to simulated microseconds."""
    return ns / NS_PER_US


def cycles_to_us(cycles: float, ghz: float = DEFAULT_CPU_GHZ) -> float:
    """Convert CPU cycles at ``ghz`` GHz to microseconds.

    >>> round(cycles_to_us(2600), 3)
    1.0
    """
    if ghz <= 0:
        raise ConfigurationError(f"ghz must be > 0, got {ghz}")
    return cycles / (ghz * 1_000.0)


def us_to_cycles(us: float, ghz: float = DEFAULT_CPU_GHZ) -> float:
    """Convert microseconds to CPU cycles at ``ghz`` GHz."""
    if ghz <= 0:
        raise ConfigurationError(f"ghz must be > 0, got {ghz}")
    return us * ghz * 1_000.0


def mrps_to_per_us(mrps: float) -> float:
    """Convert millions of requests per second to requests per microsecond.

    Conveniently, 1 Mrps == 1 request/us, so this is the identity — but
    spelling it out keeps experiment code self-documenting.
    """
    return mrps


def per_us_to_mrps(rate: float) -> float:
    """Convert requests per microsecond to millions of requests per second."""
    return rate


def krps_to_per_us(krps: float) -> float:
    """Convert thousands of requests per second to requests per microsecond."""
    return krps / 1_000.0


def per_us_to_krps(rate: float) -> float:
    """Convert requests per microsecond to thousands of requests per second."""
    return rate * 1_000.0
