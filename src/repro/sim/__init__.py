"""Discrete-event simulation substrate.

Exports the event loop, the event handle type, seeded random streams, and
unit-conversion helpers.  All simulation times are in microseconds.
"""

from .engine import EventLoop
from .events import Event
from .randomness import RngRegistry
from .units import (
    DEFAULT_CPU_GHZ,
    cycles_to_us,
    krps_to_per_us,
    milliseconds,
    mrps_to_per_us,
    nanoseconds,
    per_us_to_krps,
    per_us_to_mrps,
    seconds,
    us_to_cycles,
)

__all__ = [
    "EventLoop",
    "Event",
    "RngRegistry",
    "DEFAULT_CPU_GHZ",
    "cycles_to_us",
    "us_to_cycles",
    "seconds",
    "milliseconds",
    "nanoseconds",
    "mrps_to_per_us",
    "per_us_to_mrps",
    "krps_to_per_us",
    "per_us_to_krps",
]
