"""Shared suppression-pragma parsing for ``repro-lint`` and ``repro-analyze``.

Both analyzers honour the same comment grammar, differing only in the
tool token and the rule-id namespace::

    t = time.time()          # repro-lint: disable=R002
    self.rng = faults_rng    # repro-analyze: disable=A102
    # repro-analyze: disable-file=A001   (first 10 lines only)

``disable=all`` suppresses every rule of that tool.  Pragmas are read
from genuine comment tokens only, so a pragma quoted inside a docstring
is inert.

The parser also keeps a usage ledger: runners call :meth:`mark_used`
for every finding a pragma absorbed, and :meth:`unused` afterwards
reports *stale* suppressions — pragmas naming a rule that no longer
fires on that line (or anywhere in the file, for ``disable-file``).
Stale pragmas are hazards in their own right: they read as "this line
is exempt for a reason" long after the reason is gone.  ``repro-lint``
surfaces them as rule R010; ``repro-analyze`` as finding A000.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..errors import LintError

#: How deep into a file a ``disable-file`` comment may appear.
FILE_PRAGMA_WINDOW = 10


class PragmaError(NamedTuple):
    """A malformed or unknown-id pragma (collected, not raised, when the
    caller asks for lenient parsing)."""

    line: int
    message: str


def _pragma_re(tool: str) -> re.Pattern:
    return re.compile(
        r"#\s*"
        + re.escape(tool)
        + r":\s*(?P<kind>disable|disable-file)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
    )


def iter_comments(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, text)`` for genuine comment tokens only."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


class PragmaSuppressions:
    """Parsed suppression pragmas for one file and one tool.

    Parameters
    ----------
    source:
        The module source text.
    tool:
        The pragma token, e.g. ``"repro-lint"`` or ``"repro-analyze"``.
    known_ids:
        Valid rule ids for the tool (``all`` is always accepted).
    on_unknown:
        ``"raise"`` raises :class:`~repro.errors.LintError` on an unknown
        rule id (repro-lint's historical behaviour); ``"collect"`` records
        a :class:`PragmaError` in :attr:`errors` instead, so whole-program
        analyzers can report bad pragmas as ordinary findings.
    """

    def __init__(
        self,
        source: str,
        tool: str,
        known_ids: Sequence[str],
        on_unknown: str = "raise",
    ):
        if on_unknown not in ("raise", "collect"):
            raise ValueError(f"on_unknown must be 'raise' or 'collect', got {on_unknown!r}")
        self.tool = tool
        self._known = {rule_id.upper() for rule_id in known_ids}
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        #: Unknown-id / misplaced pragmas found under ``on_unknown="collect"``.
        self.errors: List[PragmaError] = []
        #: (line, rule_id) pairs that absorbed at least one finding.
        self._used: Set[Tuple[int, str]] = set()
        pattern = _pragma_re(tool)
        for lineno, comment in iter_comments(source):
            match = pattern.search(comment)
            if match is None:
                continue
            ids = {part.strip().upper() for part in match.group("ids").split(",") if part.strip()}
            bad = sorted(i for i in ids if i != "ALL" and i not in self._known)
            if bad:
                message = (
                    f"line {lineno}: unknown rule id {', '.join(repr(b) for b in bad)} "
                    f"in {tool} suppression (known: {', '.join(sorted(self._known))}, or 'all')"
                )
                if on_unknown == "raise":
                    raise LintError(message)
                self.errors.append(PragmaError(lineno, message))
                ids -= set(bad)
                if not ids:
                    continue
            if match.group("kind") == "disable-file":
                if lineno <= FILE_PRAGMA_WINDOW:
                    self.file_wide.update(ids)
                else:
                    message = (
                        f"line {lineno}: disable-file pragma must appear in the "
                        f"first {FILE_PRAGMA_WINDOW} lines"
                    )
                    if on_unknown == "raise":
                        raise LintError(message)
                    self.errors.append(PragmaError(lineno, message))
            else:
                self.by_line.setdefault(lineno, set()).update(ids)

    # ------------------------------------------------------------------
    # the runner surface
    # ------------------------------------------------------------------
    def is_suppressed(self, line: int, rule_id: str) -> bool:
        """True when a finding of ``rule_id`` on ``line`` is absorbed.

        Marks the absorbing pragma used, feeding :meth:`unused`.
        """
        rule_id = rule_id.upper()
        if "ALL" in self.file_wide or rule_id in self.file_wide:
            self._used.add((0, rule_id if rule_id in self.file_wide else "ALL"))
            return True
        ids = self.by_line.get(line)
        if ids is None:
            return False
        if "ALL" in ids:
            self._used.add((line, "ALL"))
            return True
        if rule_id in ids:
            self._used.add((line, rule_id))
            return True
        return False

    def mark_used(self, line: int, rule_id: str) -> None:
        """Explicitly mark a pragma as live (for callers that filter
        findings themselves rather than via :meth:`is_suppressed`)."""
        self._used.add((line, rule_id.upper()))

    def unused(self, checked_ids: Optional[Sequence[str]] = None) -> List[Tuple[int, str]]:
        """Stale pragmas: ``(line, rule_id)`` pairs that absorbed nothing.

        ``checked_ids`` limits staleness judgement to rules that actually
        ran — a pragma for a rule outside the run's ``--select`` subset is
        never stale.  Line 0 denotes a file-wide pragma.
        """
        checked = None if checked_ids is None else {i.upper() for i in checked_ids}
        stale: List[Tuple[int, str]] = []
        for rule_id in sorted(self.file_wide):
            if checked is not None and rule_id != "ALL" and rule_id not in checked:
                continue
            if (0, rule_id) not in self._used:
                stale.append((0, rule_id))
        for line in sorted(self.by_line):
            for rule_id in sorted(self.by_line[line]):
                if checked is not None and rule_id != "ALL" and rule_id not in checked:
                    continue
                if (line, rule_id) not in self._used:
                    stale.append((line, rule_id))
        return stale

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PragmaSuppressions(tool={self.tool!r}, lines={sorted(self.by_line)}, "
            f"file_wide={sorted(self.file_wide)})"
        )


def scan_foreign_pragmas(
    source: str, tool: str, known_ids: Sequence[str]
) -> List[PragmaError]:
    """Validate another tool's pragmas without applying them.

    ``repro-lint`` uses this to reject ``repro-analyze`` pragmas naming
    rules that do not exist — the single-file half of suppression
    hygiene (the whole-program half, staleness, needs the analyzer's own
    run).
    """
    return PragmaSuppressions(source, tool, known_ids, on_unknown="collect").errors
