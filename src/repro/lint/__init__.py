"""repro.lint — simulation-correctness analyzer.

Three layers, one goal: keep the discrete-event simulation *provably*
deterministic and conservation-correct so the paper's queueing results
can be trusted.

* :mod:`repro.lint.rules` / :mod:`repro.lint.runner` — AST lint rules
  (``repro-lint`` CLI) flagging nondeterminism and unit bugs at rest;
* :mod:`repro.lint.sanitizer` — :class:`SimSanitizer`, an opt-in runtime
  invariant checker hooked into the event loop;
* :mod:`repro.lint.determinism` — the twice-run same-seed digest check.

See ``docs/lint.md`` for the rule catalogue and suppression syntax.
"""

from .determinism import (
    DeterminismReport,
    RunDigest,
    check_all,
    check_system,
    digest_run,
)
from .pragmas import FILE_PRAGMA_WINDOW, PragmaError, PragmaSuppressions, scan_foreign_pragmas
from .rules import ALL_RULES, RULES_BY_ID, Rule
from .runner import Finding, has_errors, lint_file, lint_paths, lint_source
from .sanitizer import SimSanitizer

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "FILE_PRAGMA_WINDOW",
    "PragmaError",
    "PragmaSuppressions",
    "scan_foreign_pragmas",
    "Finding",
    "has_errors",
    "lint_file",
    "lint_paths",
    "lint_source",
    "SimSanitizer",
    "DeterminismReport",
    "RunDigest",
    "digest_run",
    "check_system",
    "check_all",
]
