"""AST lint rules for simulation correctness.

Each rule is a :class:`Rule` subclass with a stable id (``R0xx``), a
severity, and a ``check`` generator yielding :class:`RawFinding` tuples.
Rules are deliberately *domain* rules, not style rules: every one of them
guards a property the discrete-event simulation needs to stay credible —
determinism under a fixed seed, simulated-time purity, and explicit
units.

Scoping
-------
Some rules only make sense inside the simulation core.  A file's
*package* is the first path component under ``repro/`` (``sim``,
``core``, ``policies``, ...).  Driver/reporting code (``cli``,
``experiments``, ``metrics``, ``analysis``, and this ``lint`` package)
may legitimately touch wall clocks and host state, so scoped rules skip
it.  Files outside a ``repro`` tree are treated as sim-critical, which
errs toward reporting.

Suppression
-----------
A finding on line *L* is suppressed by a trailing comment on that line::

    t = time.time()  # repro-lint: disable=R002

or for a whole file by a comment in the first ten lines::

    # repro-lint: disable-file=R005

``disable=all`` suppresses every rule.  Suppressions are honoured by
:mod:`repro.lint.runner`, not here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence, Set, Tuple

#: Packages whose code runs *inside* simulated time.  Scoped rules apply
#: only here; wall clocks and host entropy are fine in driver code.
SIM_CRITICAL_PACKAGES = frozenset(
    {
        "sim",
        "core",
        "policies",
        "systems",
        "server",
        "workload",
        "net",
        "cluster",
        "apps",
        "faults",
    }
)

#: Packages under ``repro/`` that are *not* sim-critical (reporting,
#: drivers, and the analyzers themselves).
_NONCRITICAL_PACKAGES = frozenset(
    {"cli", "experiments", "metrics", "analysis", "lint", "analyze"}
)


class RawFinding(NamedTuple):
    """A rule hit before suppression filtering (runner adds path/severity)."""

    line: int
    col: int
    message: str


class ModuleContext:
    """Everything a rule needs to know about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        # Normalized, forward-slash path parts for package detection.
        parts = path.replace("\\", "/").split("/")
        self.package: Optional[str] = None
        if "repro" in parts:
            idx = len(parts) - 1 - parts[::-1].index("repro")
            rest = parts[idx + 1:]
            if len(rest) >= 2:
                self.package = rest[0]
            elif len(rest) == 1:
                self.package = rest[0].rsplit(".py", 1)[0]
        #: alias -> fully dotted module/name, built from the import table
        #: (``import numpy as np`` => ``np -> numpy``;
        #: ``from datetime import datetime`` => ``datetime -> datetime.datetime``).
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    @property
    def is_sim_critical(self) -> bool:
        """True when scoped rules should apply to this module."""
        if self.package is None:
            return True
        return self.package not in _NONCRITICAL_PACKAGES

    @property
    def module_basename(self) -> str:
        return self.path.replace("\\", "/").rsplit("/", 1)[-1]

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted name, expanding import
        aliases at the root (``np.random.default_rng`` ->
        ``numpy.random.default_rng``).  Returns None for non-name roots."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(chain))


class Rule:
    """Base class: subclasses set the metadata and implement ``check``."""

    id: str = ""
    name: str = ""
    #: "error" findings fail the lint run; "warning" findings are reported
    #: but only fail under ``--strict``.
    severity: str = "error"
    #: When True the rule only runs on sim-critical packages.
    scoped: bool = False

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        """One-paragraph rule description (the class docstring)."""
        return (cls.__doc__ or "").strip()


class DirectRandomRule(Rule):
    """Direct ``random.*`` / ``numpy.random.*`` calls bypass the seeded
    stream registry.  All randomness must flow through
    :class:`repro.sim.randomness.RngRegistry` so that (a) a single root
    seed reproduces the whole run and (b) one component's draws never
    perturb another's.  ``repro/sim/randomness.py`` itself is exempt — it
    is the sanctioned wrapper."""

    id = "R001"
    name = "direct-random"
    severity = "error"
    scoped = False

    _EXEMPT_FILES = ("randomness.py",)

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.module_basename in self._EXEMPT_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random.") or dotted.startswith("numpy.random."):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"direct RNG call {dotted}() bypasses sim.randomness; "
                    "draw from an RngRegistry stream instead",
                )


class WallClockRule(Rule):
    """Wall-clock reads inside simulation code leak host time into
    simulated time: results stop depending only on the seed, and two
    same-seed runs diverge.  Simulation components must read
    ``EventLoop.now``; only driver code (CLI, experiments) may time
    itself with the host clock."""

    id = "R002"
    name = "wall-clock"
    severity = "error"
    scoped = True

    _FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.sleep",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted in self._FORBIDDEN:
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"wall-clock call {dotted}() inside simulation code; "
                    "use the event loop's simulated time (EventLoop.now)",
                )


class MutableDefaultRule(Rule):
    """A mutable default argument is created once at function definition
    and shared across every call — classic hidden global state.  In a
    simulator it also couples runs: state from run N leaks into run N+1
    through the default object, silently breaking seed reproducibility."""

    id = "R003"
    name = "mutable-default"
    severity = "error"
    scoped = False

    _MUTABLE_CALLS = frozenset(
        {
            "list",
            "dict",
            "set",
            "bytearray",
            "collections.deque",
            "collections.defaultdict",
            "collections.OrderedDict",
            "collections.Counter",
        }
    )

    def _is_mutable(self, node: ast.AST, ctx: ModuleContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            return dotted in self._MUTABLE_CALLS
        return False

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    yield RawFinding(
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in {node.name}(); "
                        "default to None and create the object in the body",
                    )


class UnorderedIterationRule(Rule):
    """Iterating a ``set`` in a scheduling decision loop makes dispatch
    order depend on hash order.  Integer hashing is stable today, but one
    refactor to string keys (hash-salted per process) silently breaks
    cross-run determinism.  Scheduling loops must iterate a ``sorted()``
    view or an explicitly ordered structure (list / deque / dict)."""

    id = "R004"
    name = "unordered-iteration"
    severity = "error"
    scoped = True

    def _set_typed_names(self, ctx: ModuleContext) -> Set[str]:
        """Names ("x" or "self.x") assigned a set in this module."""
        names: Set[str] = set()
        for node in ast.walk(ctx.tree):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
                ann = ast.unparse(node.annotation) if node.annotation else ""
                if "Set[" in ann or ann in ("set", "Set", "frozenset", "FrozenSet"):
                    names.update(self._target_keys(targets))
                    continue
            if value is None:
                continue
            if isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and ctx.dotted_name(value.func) in ("set", "frozenset")
            ):
                names.update(self._target_keys(targets))
        return names

    @staticmethod
    def _target_keys(targets: Sequence[ast.AST]) -> Iterator[str]:
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id
            elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
                yield f"{target.value.id}.{target.attr}"

    @staticmethod
    def _iter_key(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            return f"{node.value.id}.{node.attr}"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        set_named = self._set_typed_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            direct_set = isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and ctx.dotted_name(it.func) in ("set", "frozenset")
            )
            named_set = self._iter_key(it) in set_named if not direct_set else False
            if direct_set or named_set:
                yield RawFinding(
                    it.lineno,
                    it.col_offset,
                    "iteration over an unordered set in simulation code; "
                    "wrap in sorted(...) or use an ordered container",
                )


class RawUnitLiteralRule(Rule):
    """Multiplying or dividing by bare ``1e6`` / ``1e9`` style constants
    is almost always a hand-rolled seconds<->microseconds<->nanoseconds
    conversion.  Unit bugs are invisible in queueing output (everything
    just shifts); conversions must go through :mod:`repro.sim.units`
    helpers, which name the units at the call site.  ``sim/units.py``
    itself is exempt."""

    id = "R005"
    name = "raw-unit-literal"
    severity = "error"
    scoped = True

    _MAGIC = (1_000_000, 1_000_000_000)
    _EXEMPT_FILES = ("units.py",)

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        if ctx.module_basename in self._EXEMPT_FILES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            for side in (node.left, node.right):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, (int, float))
                    and not isinstance(side.value, bool)
                    and abs(side.value) in self._MAGIC
                ):
                    yield RawFinding(
                        side.lineno,
                        side.col_offset,
                        f"raw unit-conversion literal {side.value!r}; "
                        "use repro.sim.units helpers (seconds(), nanoseconds(), ...)",
                    )


class HandlerGlobalMutationRule(Rule):
    """Event handlers that mutate module-level state make simulation
    behavior depend on what ran earlier in the *process*, not earlier in
    the *simulation*: back-to-back runs in one process diverge from fresh
    runs.  Flags ``global`` declarations in any function, and in-place
    mutation of module-level names (``STATE[...] = ...``,
    ``STATE.append(...)``) inside ``on_*`` / ``handle_*`` handlers.
    Per-run state belongs on the scheduler/server object."""

    id = "R006"
    name = "handler-global-mutation"
    severity = "error"
    scoped = True

    _MUTATORS = frozenset(
        {"append", "add", "update", "extend", "insert", "pop", "popleft",
         "remove", "discard", "clear", "setdefault", "appendleft"}
    )

    def _module_level_names(self, ctx: ModuleContext) -> Set[str]:
        names: Set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
        return names

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        module_names = self._module_level_names(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            is_handler = node.name.startswith(("on_", "handle_"))
            for sub in ast.walk(node):
                if isinstance(sub, ast.Global):
                    yield RawFinding(
                        sub.lineno,
                        sub.col_offset,
                        f"'global {', '.join(sub.names)}' in {node.name}(); "
                        "simulation state must live on per-run objects",
                    )
                elif is_handler and isinstance(sub, ast.Subscript):
                    if (
                        isinstance(sub.ctx, (ast.Store, ast.Del))
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id in module_names
                    ):
                        yield RawFinding(
                            sub.lineno,
                            sub.col_offset,
                            f"event handler {node.name}() mutates module-level "
                            f"'{sub.value.id}'; move it onto the scheduler/server",
                        )
                elif is_handler and isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in self._MUTATORS
                        and isinstance(func.value, ast.Name)
                        and func.value.id in module_names
                    ):
                        yield RawFinding(
                            sub.lineno,
                            sub.col_offset,
                            f"event handler {node.name}() mutates module-level "
                            f"'{func.value.id}' via .{func.attr}(); "
                            "move it onto the scheduler/server",
                        )


class NondeterministicSourceRule(Rule):
    """Host entropy sources (``uuid.uuid4``, ``os.urandom``,
    ``secrets.*``, ``os.getpid``) can never be replayed from a seed.  Any
    identifier or sample a simulation needs must be derived from the run's
    ``RngRegistry`` or a deterministic counter."""

    id = "R007"
    name = "nondeterministic-source"
    severity = "error"
    scoped = False

    _FORBIDDEN_PREFIXES = ("secrets.",)
    _FORBIDDEN = frozenset(
        {"uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getpid", "os.getrandom"}
    )

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in self._FORBIDDEN or dotted.startswith(self._FORBIDDEN_PREFIXES):
                yield RawFinding(
                    node.lineno,
                    node.col_offset,
                    f"nondeterministic source {dotted}(); derive values from "
                    "RngRegistry or a deterministic counter",
                )


class BuiltinHashOrderRule(Rule):
    """``hash()`` of str/bytes is salted per process (PYTHONHASHSEED), so
    anything ordered or steered by it — RSS-style request steering, sort
    keys, bucket choice — differs between processes with the same seed.
    Use an explicit stable digest (e.g. ``zlib.crc32``) or integer keys."""

    id = "R008"
    name = "builtin-hash-order"
    severity = "warning"
    scoped = True

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "hash":
                # Only the builtin: a local redefinition changes the alias map.
                if ctx.aliases.get("hash", "hash") == "hash":
                    yield RawFinding(
                        node.lineno,
                        node.col_offset,
                        "builtin hash() is process-salted for str/bytes; "
                        "use a stable digest for any ordering/steering decision",
                    )


class TracePurityRule(Rule):
    """The observer planes promise that attaching them cannot change a
    run: spans, samples and metric scrapes are a pure function of
    simulated events.  Any wall-clock read, direct RNG draw, or
    host-entropy source inside ``repro/trace/``, ``repro/telemetry/``,
    ``repro/sweep/``, or ``repro/forensics/`` would break that promise
    (trace/metrics/merged sweep files and forensics stores would differ
    between identical runs, and ``--trace``/``--metrics``/
    ``--forensics``/``repro-sweep`` could no longer claim bit-identical
    results).  Timestamps must come from ``EventLoop.now``
    and identifiers from request ids or deterministic counters.  The
    sweep package's cell results, checkpoints, and CI aggregation are
    covered because parallel and resumed sweeps must reproduce serial
    ones byte for byte; only its worker-*management* lines (pool
    timeouts, the latency-selftest sleep) may carry an explicit
    ``repro-lint: disable=R009`` pragma, since they steer processes,
    never results.  The other sanctioned exception is the opt-in
    self-profiler (``repro/telemetry/profiler.py``), which *measures*
    the simulator's wall-clock cost by design — each of its timing
    lines carries an explicit pragma too."""

    id = "R009"
    name = "observer-purity"
    severity = "error"
    scoped = False

    _WALL_CLOCK = WallClockRule._FORBIDDEN
    _ENTROPY = NondeterministicSourceRule._FORBIDDEN
    _ENTROPY_PREFIXES = NondeterministicSourceRule._FORBIDDEN_PREFIXES
    _RNG_PREFIXES = ("random.", "numpy.random.")

    #: Packages bound by the pure-observer contract.  ``rack`` is held
    #: to the same bar: its balancers draw only from named registry
    #: streams, so any wall-clock read or direct ``random``/
    #: ``numpy.random`` module call there is a determinism bug.
    #: ``forensics`` is post-hoc (it only reads exported artifacts) but
    #: its stores must be byte-identical across re-collections, so it
    #: carries the same purity bar.
    _OBSERVER_PACKAGES = ("trace", "telemetry", "sweep", "rack", "forensics")

    @classmethod
    def _observer_package(cls, ctx: ModuleContext) -> Optional[str]:
        posix = ctx.path.replace("\\", "/")
        for package in cls._OBSERVER_PACKAGES:
            if ctx.package == package or f"/{package}/" in posix:
                return package
        return None

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        package = self._observer_package(ctx)
        if package is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in self._WALL_CLOCK:
                kind = "wall-clock read"
            elif dotted in self._ENTROPY or dotted.startswith(self._ENTROPY_PREFIXES):
                kind = "host-entropy source"
            elif dotted.startswith(self._RNG_PREFIXES):
                kind = "direct RNG draw"
            else:
                continue
            yield RawFinding(
                node.lineno,
                node.col_offset,
                f"{kind} {dotted}() inside repro/{package}/; observers "
                "must be pure functions of simulated time (use "
                "EventLoop.now and deterministic counters)",
            )


class StaleSuppressionRule(Rule):
    """Suppression pragmas must stay honest.  This rule flags (a)
    ``repro-analyze`` pragmas naming a finding id that does not exist —
    the single-file half of suppression hygiene shared with the
    whole-program analyzer — and, via the runner, (b) *stale*
    ``repro-lint`` pragmas: a ``disable=`` comment naming a rule that no
    longer fires on that line.  A stale pragma reads as "this line is
    exempt for a reason" long after the reason is gone, and will mask
    the next genuine regression on that line.  (``repro-analyze``
    staleness needs the whole-program run and is reported there as
    A000.)"""

    id = "R010"
    name = "stale-suppression"
    severity = "warning"
    scoped = False

    def check(self, ctx: ModuleContext) -> Iterator[RawFinding]:
        try:
            from ..analyze.findings import ANALYSIS_RULES
        except ImportError:  # pragma: no cover - analyze always ships with lint
            return
        from .pragmas import scan_foreign_pragmas

        known = list(ANALYSIS_RULES) + ["A000"]
        for error in scan_foreign_pragmas(ctx.source, "repro-analyze", known):
            yield RawFinding(error.line, 0, error.message)


#: Every implemented rule, in id order.  The runner instantiates these.
ALL_RULES: Tuple[type, ...] = (
    DirectRandomRule,
    WallClockRule,
    MutableDefaultRule,
    UnorderedIterationRule,
    RawUnitLiteralRule,
    HandlerGlobalMutationRule,
    NondeterministicSourceRule,
    BuiltinHashOrderRule,
    TracePurityRule,
    StaleSuppressionRule,
)

RULES_BY_ID: Dict[str, type] = {rule.id: rule for rule in ALL_RULES}
