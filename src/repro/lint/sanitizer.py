"""Runtime invariant sanitizer for the discrete-event simulation.

:class:`SimSanitizer` is the dynamic half of ``repro.lint``: where the
AST rules catch nondeterminism *patterns*, the sanitizer catches live
invariant breakage while a simulation runs.  It hooks into
:class:`~repro.sim.engine.EventLoop` (see
:meth:`~repro.sim.engine.EventLoop.attach_sanitizer`) and is called
around every executed event; when disabled (the default — no sanitizer
attached) the engine pays a single ``is None`` test per event.

Invariants checked after every event
------------------------------------
* **monotonic-time** — executed event times never decrease, and the loop
  clock equals the last executed event's time.
* **worker-exclusivity** — every busy worker serves exactly one request,
  that request points back at the worker, no request is on two workers,
  no completed request is still occupying a core, and no *crashed* core
  holds a request (the crash handler must evict in-flight work).
* **queue-depth** — ``Scheduler.pending_count()`` is never negative and
  drop counters never decrease.
* **request-conservation** (running form) — completions (including late
  completions of orphaned attempts) + drops never exceed arrivals.
* **darc-reservation** — with a :class:`~repro.core.darc.DarcScheduler`
  attached: reserved worker ids are in range, distinct reserved cores
  never exceed the machine, and every request *begins* service on a
  worker its type may use under the reservation in force at begin time
  (typed queues only drain to eligible workers).

Invariants checked when the heap drains
---------------------------------------
* **request-conservation** (drain form) — arrivals == completions (rows
  + late completions of orphaned/duplicated attempts) + drops, with zero
  requests in flight or still queued.  This is the lost-request
  detector: a scheduler that strands a request in a queue no worker may
  serve fails here rather than silently shifting the tail.  When cores
  are still *crashed* at drain time, queued work stranded behind them is
  expected and only the accounting equality is enforced.

Tie-break shadow check (opt-in)
-------------------------------
Constructed with ``shadow_tiebreaks=True``, the sanitizer additionally
watches for *same-timestamp sibling events* — the runtime twin of the
static A001/A002 race analysis in :mod:`repro.analyze.eventflow`.  Using
:meth:`~repro.sim.engine.EventLoop.peek_event` it detects when the event
about to execute ties with the next pending one, snapshots the
observable simulation state around each tied handler, and compares the
handlers' *write sets* (state keys whose values changed, digest-
compared).  Two tied handlers with different callbacks whose write sets
overlap do not observably commute: the run's outcome hangs on heap
insertion order.  Hazards are **recorded**, never raised — shadow mode
must not perturb results — in :attr:`SimSanitizer.tiebreak_hazards`.

Violations raise :class:`~repro.errors.SanitizerViolation` with the
invariant id, the simulation time, and structured context.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import SanitizerViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..server.server import Server
    from ..sim.engine import EventLoop
    from ..sim.events import Event


class SimSanitizer:
    """Opt-in runtime checker; attach one per :class:`EventLoop`.

    Example
    -------
    >>> from repro.sim.engine import EventLoop
    >>> loop = EventLoop()
    >>> sanitizer = SimSanitizer()
    >>> sanitizer.attach(loop)
    >>> _ = loop.call_at(1.0, lambda: None)
    >>> _ = loop.run()
    >>> sanitizer.events_checked
    1
    """

    def __init__(self, server: Optional["Server"] = None, shadow_tiebreaks: bool = False):
        self.server = server
        self.loop: Optional["EventLoop"] = None
        #: Number of events the sanitizer has inspected.
        self.events_checked = 0
        #: Total individual invariant checks evaluated (for tests/reports).
        self.checks_run = 0
        self._last_event_time = float("-inf")
        self._last_drops = 0
        # (worker_id -> (rid, reservation identity)) pairs already
        # validated for DARC eligibility; re-validated only when a new
        # request lands on the worker.
        self._validated: Dict[int, Tuple[int, int]] = {}
        #: Whether the tie-break shadow check is on.
        self.shadow_tiebreaks = shadow_tiebreaks
        #: Same-timestamp events inspected by the shadow check.
        self.ties_checked = 0
        #: Recorded (not raised) tie-break hazards: dicts with the tied
        #: handlers, the overlapping state keys, and each side's effect
        #: digest.
        self.tiebreak_hazards: List[dict] = []
        # Current tie group: timestamp + (handler label, write set,
        # effect digest) per already-executed member.
        self._tie_time: Optional[float] = None
        self._tie_members: List[Tuple[str, frozenset, str]] = []
        self._tie_snapshot: Optional[Dict[str, object]] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, loop: "EventLoop", server: Optional["Server"] = None) -> "SimSanitizer":
        """Hook into ``loop`` (and optionally observe ``server``)."""
        if server is not None:
            self.server = server
        self.loop = loop
        loop.attach_sanitizer(self)
        return self

    # ------------------------------------------------------------------
    # engine callbacks
    # ------------------------------------------------------------------
    def before_event(self, loop: "EventLoop", event: "Event") -> None:
        """Called by the engine just before an event executes."""
        self.checks_run += 1
        if event.time < self._last_event_time:
            self._violate(
                "monotonic-time",
                "event popped earlier than an already-executed event",
                loop,
                {"event_time": event.time, "last_time": self._last_event_time},
            )
        if event.time < loop.now:
            self._violate(
                "monotonic-time",
                "event scheduled in the past slipped into the heap",
                loop,
                {"event_time": event.time, "now": loop.now},
            )
        self._last_event_time = event.time
        if self.shadow_tiebreaks:
            self._shadow_before(loop, event)

    def after_event(self, loop: "EventLoop", event: "Event") -> None:
        """Called by the engine just after an event executes."""
        self.events_checked += 1
        if self.shadow_tiebreaks:
            self._shadow_after(loop, event)
        if self.server is not None:
            self._check_workers(loop)
            self._check_queues(loop)
            self._check_conservation(loop, at_drain=False)
            self._check_darc(loop)

    def on_drain(self, loop: "EventLoop") -> None:
        """Called by the engine when the heap empties at the end of run()."""
        if self.server is not None:
            self._check_conservation(loop, at_drain=True)

    # ------------------------------------------------------------------
    # tie-break shadow check
    # ------------------------------------------------------------------
    @staticmethod
    def _handler_label(event: "Event") -> str:
        fn = event.fn
        return getattr(fn, "__qualname__", None) or repr(fn)

    def _observable_state(self, loop: "EventLoop") -> Dict[str, object]:
        """The simulation state a tied handler's effects are judged on.

        Deliberately the *observable* surface — worker occupancy and
        health, queue depth, the recorder's ledgers — not raw object
        identity, so two handlers that touch disjoint observables never
        conflict even if they share containers internally.
        """
        state: Dict[str, object] = {}
        server = self.server
        if server is None:
            return state
        for worker in server.workers:
            wid = worker.worker_id
            current = worker.current
            state[f"w{wid}.current"] = None if current is None else current.rid
            state[f"w{wid}.failed"] = worker.failed
            state[f"w{wid}.speed"] = worker.speed_factor
        state["sched.pending"] = server.scheduler.pending_count()
        recorder = server.recorder
        state["rec.completed"] = recorder.completed
        state["rec.dropped"] = recorder.dropped
        state["rec.late"] = recorder.late_completions
        state["srv.received"] = server.received
        return state

    def _shadow_before(self, loop: "EventLoop", event: "Event") -> None:
        if event.time != self._tie_time:
            # New timestamp: the previous tie group (if any) is closed.
            self._tie_time = event.time
            self._tie_members = []
        nxt = loop.peek_event()
        in_group = bool(self._tie_members) or (
            nxt is not None and nxt.time == event.time
        )
        self._tie_snapshot = self._observable_state(loop) if in_group else None

    def _shadow_after(self, loop: "EventLoop", event: "Event") -> None:
        before = self._tie_snapshot
        if before is None:
            return
        self._tie_snapshot = None
        self.ties_checked += 1
        after = self._observable_state(loop)
        changed = frozenset(
            key
            for key in before.keys() | after.keys()
            if before.get(key) != after.get(key)
        )
        digest = hashlib.sha256(
            "\n".join(
                f"{key}:{before.get(key)!r}->{after.get(key)!r}"
                for key in sorted(changed)
            ).encode("utf-8")
        ).hexdigest()[:16]
        label = self._handler_label(event)
        for other_label, other_writes, other_digest in self._tie_members:
            if other_label == label:
                continue  # order among identical handlers is benign
            overlap = changed & other_writes
            if overlap:
                self.tiebreak_hazards.append(
                    {
                        "time": event.time,
                        "handlers": (other_label, label),
                        "keys": sorted(overlap),
                        "digests": (other_digest, digest),
                    }
                )
        self._tie_members.append((label, changed, digest))

    # ------------------------------------------------------------------
    # the invariants
    # ------------------------------------------------------------------
    def _violate(self, invariant: str, message: str, loop: "EventLoop", context: dict) -> None:
        raise SanitizerViolation(invariant, message, time=loop.now, context=context)

    def _check_workers(self, loop: "EventLoop") -> None:
        self.checks_run += 1
        seen_rids: Dict[int, int] = {}
        for worker in self.server.workers:
            request = worker.current
            if request is None:
                continue
            if request.worker_id != worker.worker_id:
                self._violate(
                    "worker-exclusivity",
                    "in-flight request does not point back at its worker",
                    loop,
                    {"worker": worker.worker_id, "rid": request.rid,
                     "request_worker": request.worker_id},
                )
            if request.rid in seen_rids:
                self._violate(
                    "worker-exclusivity",
                    "one request is in flight on two workers",
                    loop,
                    {"rid": request.rid, "workers": (seen_rids[request.rid], worker.worker_id)},
                )
            seen_rids[request.rid] = worker.worker_id
            if request.finish_time is not None:
                self._violate(
                    "worker-exclusivity",
                    "completed request still occupies a worker",
                    loop,
                    {"rid": request.rid, "worker": worker.worker_id,
                     "finish_time": request.finish_time},
                )
            if worker.failed:
                self._violate(
                    "worker-exclusivity",
                    "crashed worker still holds an in-flight request",
                    loop,
                    {"rid": request.rid, "worker": worker.worker_id},
                )

    def _check_queues(self, loop: "EventLoop") -> None:
        self.checks_run += 1
        pending = self.server.scheduler.pending_count()
        if pending < 0:
            self._violate(
                "queue-depth",
                "scheduler reports a negative queue depth",
                loop,
                {"pending": pending},
            )
        drops = self.server.recorder.dropped
        if drops < self._last_drops:
            self._violate(
                "queue-depth",
                "drop counter decreased",
                loop,
                {"drops": drops, "previous": self._last_drops},
            )
        self._last_drops = drops

    def _check_conservation(self, loop: "EventLoop", at_drain: bool) -> None:
        self.checks_run += 1
        server = self.server
        received = server.received
        # Late completions are server-side finishes of attempts the
        # resilience layer had already orphaned (timeout) or never sent
        # (network duplicates); they produce no completion row but are
        # part of the attempt ledger.
        completed = server.recorder.completed + server.recorder.late_completions
        dropped = server.recorder.dropped
        if completed + dropped > received:
            self._violate(
                "request-conservation",
                "more requests completed+dropped than ever arrived",
                loop,
                {"received": received, "completed": completed, "dropped": dropped},
            )
        if at_drain:
            in_flight = server.in_flight
            pending = server.pending
            if completed + dropped + in_flight + pending != received:
                self._violate(
                    "request-conservation",
                    "requests lost at drain: arrivals != completions + drops",
                    loop,
                    {"received": received, "completed": completed,
                     "dropped": dropped, "in_flight": in_flight, "pending": pending},
                )
            if (in_flight or pending) and server.failed_workers == 0:
                # With crashed cores still down, queued work stranded
                # behind them is accounted for above and expected here.
                self._violate(
                    "request-conservation",
                    "event heap drained with work still in the system",
                    loop,
                    {"in_flight": in_flight, "pending": pending},
                )

    def _check_darc(self, loop: "EventLoop") -> None:
        scheduler = self.server.scheduler
        if not hasattr(scheduler, "worker_may_serve"):
            return
        reservation = getattr(scheduler, "reservation", None)
        if reservation is None:
            # c-FCFS startup window: any worker may serve any type.
            # Record placements so a later reservation install does not
            # retroactively judge requests begun before it existed.
            for worker in self.server.workers:
                if worker.current is None:
                    self._validated.pop(worker.worker_id, None)
                else:
                    self._validated[worker.worker_id] = (worker.current.rid, 0)
            return
        self.checks_run += 1
        n_workers = len(self.server.workers)
        # During a total outage the stale reservation is inert (no core
        # is ever free), so only judge it while someone could dispatch.
        any_alive = any(not w.failed for w in self.server.workers)
        reserved_ids = set()
        for alloc in reservation.allocations:
            for widx in alloc.reserved:
                if not 0 <= widx < n_workers:
                    self._violate(
                        "darc-reservation",
                        "reservation names a worker outside the machine",
                        loop,
                        {"worker": widx, "n_workers": n_workers},
                    )
                if any_alive and self.server.workers[widx].failed:
                    self._violate(
                        "darc-reservation",
                        "reservation names a crashed worker (its typed "
                        "queues would strand)",
                        loop,
                        {"worker": widx},
                    )
                reserved_ids.add(widx)
        if len(reserved_ids) > n_workers:
            self._violate(
                "darc-reservation",
                "distinct reserved cores exceed total cores",
                loop,
                {"reserved": len(reserved_ids), "n_workers": n_workers},
            )
        reservation_key = id(reservation)
        for worker in self.server.workers:
            request = worker.current
            if request is None:
                self._validated.pop(worker.worker_id, None)
                continue
            mark = (request.rid, reservation_key)
            if self._validated.get(worker.worker_id) == mark:
                continue
            previous = self._validated.get(worker.worker_id)
            if previous is not None and previous[0] == request.rid:
                # Same request, reservation replaced mid-service: its
                # placement was legal when it began; do not re-judge.
                self._validated[worker.worker_id] = mark
                continue
            type_id = request.effective_type()
            if not scheduler.worker_may_serve(worker.worker_id, type_id):
                self._violate(
                    "darc-reservation",
                    "typed queue drained to a worker its type may not use",
                    loop,
                    {"worker": worker.worker_id, "rid": request.rid, "type": type_id},
                )
            self._validated[worker.worker_id] = mark

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimSanitizer(events_checked={self.events_checked}, "
            f"checks_run={self.checks_run})"
        )
