"""``repro-lint`` — the simulation-correctness analyzer CLI.

Usage::

    repro-lint src/repro                # static AST lint
    repro-lint --list-rules             # rule catalogue with docstrings
    repro-lint --determinism            # twice-run digest check (3 systems)
    repro-lint --determinism --chaos    # also digest fault-injected runs
    repro-lint src/repro --determinism  # both; exit 1 on any failure
    repro-lint src/ --select R001,R003  # subset of rules
    repro-lint src/ --format json       # machine-readable findings

Exit codes: 0 clean, 1 findings of severity *error* (or any finding with
``--strict``) or a determinism mismatch, 2 usage/internal errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..errors import LintError
from .determinism import check_all, check_chaos_all
from .rules import ALL_RULES
from .runner import Finding, has_errors, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static + dynamic correctness analyzer for the Persephone "
        "reproduction's discrete-event simulator.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="findings output format"
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help="run the twice-run same-seed digest check over the three systems",
    )
    parser.add_argument(
        "--n-requests",
        type=int,
        default=2000,
        help="arrivals per determinism run (default 2000)",
    )
    parser.add_argument("--seed", type=int, default=1, help="determinism root seed")
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="also attach the runtime SimSanitizer during determinism runs",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="with --determinism: additionally twice-run each system "
        "through a fault-injected episode (crash/recover, straggler, "
        "packet loss/dup, retries) and compare digests",
    )
    return parser


def _print_rules() -> None:
    for rule in ALL_RULES:
        scope = "sim-critical packages" if rule.scoped else "all files"
        print(f"{rule.id} {rule.name} [{rule.severity}] (scope: {scope})")
        for line in rule.describe().splitlines():
            print(f"    {line.strip()}")
        print()


def _emit(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([finding._asdict() for finding in findings], indent=2))
        return
    for finding in findings:
        print(finding.format())
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"repro-lint: {errors} error(s), {warnings} warning(s)")


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream consumer (e.g. ``repro-lint ... | head``) closed the
        # pipe; exit quietly like any well-behaved filter.
        sys.stderr.close()
        return 1


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths and not args.determinism:
        print("repro-lint: nothing to do (give paths and/or --determinism)", file=sys.stderr)
        return 2

    failed = False
    if args.paths:
        select = [s.strip() for s in args.select.split(",")] if args.select else None
        try:
            findings = lint_paths(args.paths, select=select)
        except LintError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        _emit(findings, args.format)
        failed |= has_errors(findings, strict=args.strict)

    if args.determinism:
        reports = check_all(
            n_requests=args.n_requests, seed=args.seed, sanitize=args.sanitize
        )
        if args.chaos:
            reports = reports + check_chaos_all(
                n_requests=args.n_requests, seed=args.seed, sanitize=args.sanitize
            )
        for report in reports:
            print(report.describe())
        mismatches = [r for r in reports if not r.identical]
        print(
            f"repro-lint: determinism {len(reports) - len(mismatches)}/{len(reports)} "
            "system(s) reproducible"
        )
        failed |= bool(mismatches)
    elif args.chaos:
        print("repro-lint: --chaos requires --determinism", file=sys.stderr)
        return 2

    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
