"""Lint driver: walk files, run rules, honour suppressions.

The runner is a library first (:func:`lint_paths`, :func:`lint_source`)
and a CLI second (:mod:`repro.lint.cli`), so tests and tooling can lint
in-memory snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Set

from ..errors import LintError
from .rules import ALL_RULES, RULES_BY_ID, ModuleContext, Rule

#: ``# repro-lint: disable=R001,R002`` (line) / ``disable-file=R005`` (file).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*(?P<ids>[A-Za-z0-9_,\s]+)"
)

#: How deep into a file a ``disable-file`` comment may appear.
_FILE_PRAGMA_WINDOW = 10


class Finding(NamedTuple):
    """One lint violation, after suppression filtering."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"


class Suppressions:
    """Parsed ``repro-lint`` pragmas for one file."""

    def __init__(self, source: str):
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        for lineno, comment in self._comments(source):
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            ids = {part.strip().upper() for part in match.group("ids").split(",") if part.strip()}
            for rule_id in ids:
                if rule_id != "ALL" and rule_id not in RULES_BY_ID:
                    raise LintError(
                        f"line {lineno}: unknown rule id {rule_id!r} in suppression "
                        f"(known: {', '.join(sorted(RULES_BY_ID))}, or 'all')"
                    )
            if match.group("kind") == "disable-file":
                if lineno <= _FILE_PRAGMA_WINDOW:
                    self.file_wide.update(ids)
                else:
                    raise LintError(
                        f"line {lineno}: disable-file pragma must appear in the "
                        f"first {_FILE_PRAGMA_WINDOW} lines"
                    )
            else:
                self.by_line.setdefault(lineno, set()).update(ids)

    @staticmethod
    def _comments(source: str):
        """Yield (lineno, text) for genuine comment tokens only, so a
        pragma quoted inside a docstring is not treated as live."""
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rule_id = rule_id.upper()
        if "ALL" in self.file_wide or rule_id in self.file_wide:
            return True
        ids = self.by_line.get(line)
        return ids is not None and ("ALL" in ids or rule_id in ids)


def _make_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return [rule() for rule in ALL_RULES]
    rules: List[Rule] = []
    for rule_id in select:
        cls = RULES_BY_ID.get(rule_id.upper())
        if cls is None:
            raise LintError(f"unknown rule id {rule_id!r}")
        rules.append(cls())
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module given as a string; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    ctx = ModuleContext(path, source, tree)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    for rule in _make_rules(select):
        if rule.scoped and not ctx.is_sim_critical:
            continue
        for raw in rule.check(ctx):
            if suppressions.is_suppressed(raw.line, rule.id):
                continue
            findings.append(
                Finding(path, raw.line, raw.col, rule.id, rule.severity, raw.message)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not d.startswith((".", "__pycache__")))
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(collected))


def lint_file(path: str, select: Optional[Sequence[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fp:
        return lint_source(fp.read(), path=path, select=select)


def lint_paths(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return findings


def has_errors(findings: Sequence[Finding], strict: bool = False) -> bool:
    """True when the findings should fail the run (errors always;
    warnings only under ``strict``)."""
    if strict:
        return bool(findings)
    return any(f.severity == "error" for f in findings)
