"""Lint driver: walk files, run rules, honour suppressions.

The runner is a library first (:func:`lint_paths`, :func:`lint_source`)
and a CLI second (:mod:`repro.lint.cli`), so tests and tooling can lint
in-memory snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, NamedTuple, Optional, Sequence

from ..errors import LintError
from .pragmas import PragmaSuppressions
from .rules import ALL_RULES, RULES_BY_ID, ModuleContext, Rule, StaleSuppressionRule


class Finding(NamedTuple):
    """One lint violation, after suppression filtering."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"


class Suppressions(PragmaSuppressions):
    """Parsed ``repro-lint`` pragmas for one file.

    A thin specialization of the shared
    :class:`~repro.lint.pragmas.PragmaSuppressions` grammar, keeping the
    historical behaviour of raising :class:`LintError` on unknown ids.
    """

    def __init__(self, source: str):
        super().__init__(source, "repro-lint", list(RULES_BY_ID), on_unknown="raise")


def _make_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    if select is None:
        return [rule() for rule in ALL_RULES]
    rules: List[Rule] = []
    for rule_id in select:
        cls = RULES_BY_ID.get(rule_id.upper())
        if cls is None:
            raise LintError(f"unknown rule id {rule_id!r}")
        rules.append(cls())
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint one module given as a string; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    ctx = ModuleContext(path, source, tree)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    checked_ids: List[str] = []
    stale_rule: Optional[Rule] = None
    for rule in _make_rules(select):
        if rule.scoped and not ctx.is_sim_critical:
            continue
        if isinstance(rule, StaleSuppressionRule):
            stale_rule = rule
        checked_ids.append(rule.id)
        for raw in rule.check(ctx):
            if suppressions.is_suppressed(raw.line, rule.id):
                continue
            findings.append(
                Finding(path, raw.line, raw.col, rule.id, rule.severity, raw.message)
            )
    if stale_rule is not None:
        # Staleness is a runner-level property — only the runner knows
        # which findings each pragma absorbed — so R010's second half
        # lives here rather than in the rule's AST check.
        for line, rule_id in suppressions.unused(checked_ids):
            if rule_id == StaleSuppressionRule.id:
                continue  # suppressing the stale-checker is self-justifying
            where = "file-wide pragma" if line == 0 else "pragma"
            message = (
                f"stale suppression: {where} disables "
                f"{'every rule' if rule_id == 'ALL' else rule_id} "
                "but no such finding fires; remove it (or it will mask a "
                "future regression silently)"
            )
            anchor = 1 if line == 0 else line
            if suppressions.is_suppressed(anchor, stale_rule.id):
                continue
            findings.append(
                Finding(path, anchor, 0, stale_rule.id, stale_rule.severity, message)
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if not d.startswith((".", "__pycache__")))
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise LintError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(collected))


def lint_file(path: str, select: Optional[Sequence[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as fp:
        return lint_source(fp.read(), path=path, select=select)


def lint_paths(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns all findings."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, select=select))
    return findings


def has_errors(findings: Sequence[Finding], strict: bool = False) -> bool:
    """True when the findings should fail the run (errors always;
    warnings only under ``strict``)."""
    if strict:
        return bool(findings)
    return any(f.severity == "error" for f in findings)
