"""Seed-determinism checker.

Runs an experiment twice with the same root seed and compares a digest of
the observable event stream — every completion's (type, arrival, service,
finish, wait) plus engine counters and drop totals.  Two same-seed runs
of a correct simulator must produce byte-identical digests; any
divergence means hidden state (wall clock, unseeded RNG, hash-order
iteration, cross-run leakage) reached a scheduling decision.

Exposed as ``repro-lint --determinism`` and as a pytest suite
(``tests/lint/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..experiments.common import run_once
from ..systems.base import SystemModel
from ..workload.spec import WorkloadSpec


def _columns_sha(recorder) -> "hashlib._Hash":
    """SHA-256 primed with every completion column — the common prefix of
    all outcome digests."""
    columns = recorder.columns()
    sha = hashlib.sha256()
    for array in (
        columns.type_ids,
        columns.arrivals,
        columns.services,
        columns.finishes,
        columns.waits,
        columns.preemptions,
        columns.overheads,
    ):
        sha.update(np.ascontiguousarray(array).tobytes())
    return sha


def digest_outcome(recorder, loop) -> str:
    """Hash one run's observable outcome: completion columns plus engine
    counters.  This is *the* per-run fingerprint — :func:`digest_run`,
    the determinism pytest suite and the sweep executor
    (:mod:`repro.sweep.runner`) all produce their digests through it, so
    a cell's digest is comparable no matter which path executed it."""
    sha = _columns_sha(recorder)
    sha.update(
        struct.pack(
            "<qqqd",
            recorder.completed,
            recorder.dropped,
            loop.events_processed,
            loop.now,
        )
    )
    return sha.hexdigest()


def digest_chaos_outcome(recorder, loop, injector) -> str:
    """Chaos-run fingerprint: additionally covers the orphan-request
    ledger and the fault injector's counters."""
    sha = _columns_sha(recorder)
    sha.update(
        struct.pack(
            "<qqqqqqqd",
            recorder.completed,
            recorder.dropped,
            recorder.timeouts,
            recorder.retries,
            recorder.failures,
            recorder.late_completions,
            loop.events_processed,
            loop.now,
        )
    )
    for key, value in sorted(injector.counters().items()):
        sha.update(key.encode())
        sha.update(struct.pack("<q", value))
    return sha.hexdigest()


class RunDigest(NamedTuple):
    """Fingerprint of one simulated run."""

    system: str
    seed: int
    digest: str
    completed: int
    dropped: int
    events_processed: int
    final_time: float


class DeterminismReport(NamedTuple):
    """Outcome of one twice-run comparison."""

    system: str
    seed: int
    identical: bool
    first: RunDigest
    second: RunDigest

    def describe(self) -> str:
        verdict = "OK " if self.identical else "FAIL"
        line = (
            f"[{verdict}] {self.system}: seed={self.seed} "
            f"digest={self.first.digest[:16]}"
        )
        if not self.identical:
            line += (
                f" != {self.second.digest[:16]} "
                f"(completed {self.first.completed}/{self.second.completed}, "
                f"events {self.first.events_processed}/{self.second.events_processed})"
            )
        return line


def digest_run(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: "bool | str" = False,
    tracer=None,
    telemetry=None,
) -> RunDigest:
    """Simulate one load point and hash its observable outcome.

    ``tracer`` optionally attaches a :class:`repro.trace.Tracer`;
    ``telemetry`` optionally attaches a
    :class:`repro.telemetry.TelemetryProbe`.  The digest must come out
    identical with or without either (the observers'
    zero-interference contract, asserted by ``tests/trace`` and
    ``tests/telemetry``).
    """
    result = run_once(
        system,
        spec,
        utilization,
        n_requests=n_requests,
        seed=seed,
        sanitize=sanitize,
        tracer=tracer,
        telemetry=telemetry,
    )
    recorder = result.server.recorder
    loop = result.server.loop
    return RunDigest(
        system=result.system_name,
        seed=seed,
        digest=digest_outcome(recorder, loop),
        completed=recorder.completed,
        dropped=recorder.dropped,
        events_processed=loop.events_processed,
        final_time=loop.now,
    )


def check_system(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: "bool | str" = False,
) -> DeterminismReport:
    """Run ``system`` twice with the same seed and compare digests."""
    first = digest_run(system, spec, utilization, n_requests, seed, sanitize)
    second = digest_run(system, spec, utilization, n_requests, seed, sanitize)
    return DeterminismReport(
        system=first.system,
        seed=seed,
        identical=first.digest == second.digest,
        first=first,
        second=second,
    )


def default_systems() -> List[SystemModel]:
    """The paper's three systems, as checked by CI."""
    from ..systems.persephone import PersephoneSystem
    from ..systems.shenango import ShenangoSystem
    from ..systems.shinjuku import ShinjukuSystem

    return [
        PersephoneSystem(n_workers=8, min_samples=200),
        ShenangoSystem(n_workers=8),
        ShinjukuSystem(n_workers=8),
    ]


def check_all(
    systems: Optional[Sequence[SystemModel]] = None,
    spec_factory: Optional[Callable[[], WorkloadSpec]] = None,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: "bool | str" = False,
) -> List[DeterminismReport]:
    """Twice-run every system; a fresh spec per run pair guards against
    workload-spec mutation leaking between runs."""
    if spec_factory is None:
        from ..workload.presets import high_bimodal

        spec_factory = high_bimodal
    reports = []
    for system in systems if systems is not None else default_systems():
        reports.append(
            check_system(
                system,
                spec_factory(),
                utilization=utilization,
                n_requests=n_requests,
                seed=seed,
                sanitize=sanitize,
            )
        )
    return reports


# ----------------------------------------------------------------------
# chaos determinism: same seed + same fault plan -> identical runs
# ----------------------------------------------------------------------
def default_chaos_plan():
    """A plan exercising every fault class inside a short checker run:
    crash/recover, a straggler, and probabilistic packet loss/dup."""
    from ..faults.plan import (
        FaultPlan,
        PacketDrop,
        PacketDup,
        WorkerCrash,
        WorkerRecover,
        WorkerSlowdown,
    )

    return FaultPlan(
        [
            WorkerCrash(1500.0, 0),
            WorkerCrash(1800.0, 1, requeue=False),
            WorkerSlowdown(2000.0, 2, factor=3.0, until=5000.0),
            PacketDrop(2500.0, 4000.0, 0.2),
            PacketDup(3000.0, 4500.0, 0.1),
            WorkerRecover(6000.0, 0),
            WorkerRecover(6000.0, 1),
        ]
    )


def digest_chaos_run(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: "bool | str" = False,
    plan=None,
) -> RunDigest:
    """Simulate one fault-injected episode and hash its outcome.

    The digest additionally covers the orphan-request ledger (timeouts /
    retries / failures / late completions) and the injector's counters,
    so a divergence anywhere in the fault path shows up."""
    from ..faults.runner import run_chaos
    from ..workload.resilience import RetryPolicy

    if plan is None:
        plan = default_chaos_plan()
    retry = RetryPolicy(
        timeout_us=1500.0,
        max_retries=2,
        backoff_base_us=50.0,
        jitter_frac=0.25,
    )
    result = run_chaos(
        system,
        spec,
        utilization,
        plan,
        n_requests=n_requests,
        seed=seed,
        retry=retry,
        sanitize=sanitize,
    )
    recorder = result.recorder
    loop = result.server.loop
    return RunDigest(
        system=result.system_name,
        seed=seed,
        digest=digest_chaos_outcome(recorder, loop, result.injector),
        completed=recorder.completed,
        dropped=recorder.dropped,
        events_processed=loop.events_processed,
        final_time=loop.now,
    )


def check_chaos_all(
    systems: Optional[Sequence[SystemModel]] = None,
    spec_factory: Optional[Callable[[], WorkloadSpec]] = None,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: "bool | str" = False,
) -> List[DeterminismReport]:
    """Twice-run every system through the default fault plan; fresh spec
    *and* fresh plan per run so no state can leak between runs."""
    if spec_factory is None:
        from ..workload.presets import high_bimodal

        spec_factory = high_bimodal
    reports = []
    for system in systems if systems is not None else default_systems():
        first = digest_chaos_run(
            system, spec_factory(), utilization, n_requests, seed, sanitize,
            plan=default_chaos_plan(),
        )
        second = digest_chaos_run(
            system, spec_factory(), utilization, n_requests, seed, sanitize,
            plan=default_chaos_plan(),
        )
        reports.append(
            DeterminismReport(
                system=first.system,
                seed=seed,
                identical=first.digest == second.digest,
                first=first,
                second=second,
            )
        )
    return reports
