"""Seed-determinism checker.

Runs an experiment twice with the same root seed and compares a digest of
the observable event stream — every completion's (type, arrival, service,
finish, wait) plus engine counters and drop totals.  Two same-seed runs
of a correct simulator must produce byte-identical digests; any
divergence means hidden state (wall clock, unseeded RNG, hash-order
iteration, cross-run leakage) reached a scheduling decision.

Exposed as ``repro-lint --determinism`` and as a pytest suite
(``tests/lint/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..experiments.common import run_once
from ..systems.base import SystemModel
from ..workload.spec import WorkloadSpec


class RunDigest(NamedTuple):
    """Fingerprint of one simulated run."""

    system: str
    seed: int
    digest: str
    completed: int
    dropped: int
    events_processed: int
    final_time: float


class DeterminismReport(NamedTuple):
    """Outcome of one twice-run comparison."""

    system: str
    seed: int
    identical: bool
    first: RunDigest
    second: RunDigest

    def describe(self) -> str:
        verdict = "OK " if self.identical else "FAIL"
        line = (
            f"[{verdict}] {self.system}: seed={self.seed} "
            f"digest={self.first.digest[:16]}"
        )
        if not self.identical:
            line += (
                f" != {self.second.digest[:16]} "
                f"(completed {self.first.completed}/{self.second.completed}, "
                f"events {self.first.events_processed}/{self.second.events_processed})"
            )
        return line


def digest_run(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: bool = False,
) -> RunDigest:
    """Simulate one load point and hash its observable outcome."""
    result = run_once(
        system,
        spec,
        utilization,
        n_requests=n_requests,
        seed=seed,
        sanitize=sanitize,
    )
    recorder = result.server.recorder
    columns = recorder.columns()
    sha = hashlib.sha256()
    for array in (
        columns.type_ids,
        columns.arrivals,
        columns.services,
        columns.finishes,
        columns.waits,
        columns.preemptions,
        columns.overheads,
    ):
        sha.update(np.ascontiguousarray(array).tobytes())
    loop = result.server.loop
    sha.update(
        struct.pack(
            "<qqqd",
            recorder.completed,
            recorder.dropped,
            loop.events_processed,
            loop.now,
        )
    )
    return RunDigest(
        system=result.system_name,
        seed=seed,
        digest=sha.hexdigest(),
        completed=recorder.completed,
        dropped=recorder.dropped,
        events_processed=loop.events_processed,
        final_time=loop.now,
    )


def check_system(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: bool = False,
) -> DeterminismReport:
    """Run ``system`` twice with the same seed and compare digests."""
    first = digest_run(system, spec, utilization, n_requests, seed, sanitize)
    second = digest_run(system, spec, utilization, n_requests, seed, sanitize)
    return DeterminismReport(
        system=first.system,
        seed=seed,
        identical=first.digest == second.digest,
        first=first,
        second=second,
    )


def default_systems() -> List[SystemModel]:
    """The paper's three systems, as checked by CI."""
    from ..systems.persephone import PersephoneSystem
    from ..systems.shenango import ShenangoSystem
    from ..systems.shinjuku import ShinjukuSystem

    return [
        PersephoneSystem(n_workers=8, min_samples=200),
        ShenangoSystem(n_workers=8),
        ShinjukuSystem(n_workers=8),
    ]


def check_all(
    systems: Optional[Sequence[SystemModel]] = None,
    spec_factory: Optional[Callable[[], WorkloadSpec]] = None,
    utilization: float = 0.7,
    n_requests: int = 2000,
    seed: int = 1,
    sanitize: bool = False,
) -> List[DeterminismReport]:
    """Twice-run every system; a fresh spec per run pair guards against
    workload-spec mutation leaking between runs."""
    if spec_factory is None:
        from ..workload.presets import high_bimodal

        spec_factory = high_bimodal
    reports = []
    for system in systems if systems is not None else default_systems():
        reports.append(
            check_system(
                system,
                spec_factory(),
                utilization=utilization,
                n_requests=n_requests,
                seed=seed,
                sanitize=sanitize,
            )
        )
    return reports
