"""Exception hierarchy for the Persephone/DARC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class WorkloadError(ReproError):
    """Raised for ill-formed workload specifications."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy reaches an inconsistent state."""


class ClassifierError(ReproError):
    """Raised when a request classifier misbehaves in a detectable way."""
