"""Exception hierarchy for the Persephone/DARC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with invalid parameters."""


class WorkloadError(ReproError):
    """Raised for ill-formed workload specifications."""


class SchedulingError(ReproError):
    """Raised when a scheduling policy reaches an inconsistent state."""


class ClassifierError(ReproError):
    """Raised when a request classifier misbehaves in a detectable way."""


class TraceError(ReproError):
    """Raised when the ``repro.trace`` subsystem reaches an inconsistent
    state: a span receives a second terminal transition, a slice closes
    with none open, or a trace file fails to parse.  Tracing is
    observational, so a TraceError always means either an instrumentation
    bug or a genuine conservation violation in the pipeline — never a
    scheduling decision gone wrong."""


class TelemetryError(ReproError):
    """Raised when the ``repro.telemetry`` subsystem reaches an
    inconsistent state: a metric name is re-registered with a different
    kind, a counter moves backwards, a probe is installed twice, or a
    metrics file fails to parse.  Telemetry is observational, so a
    TelemetryError always means an instrumentation bug or a genuine
    conservation violation — never a scheduling decision gone wrong."""


class ForensicsError(ReproError):
    """Raised when the ``repro.forensics`` subsystem reaches an
    inconsistent state: a blame report fails to reconcile against the
    span stage partition, a registry store is malformed, or a trace
    document lacks the sections an analysis needs.  Forensics is
    post-hoc — it only ever reads exported artifacts — so a
    ForensicsError always means a broken artifact or an analyzer bug,
    never a scheduling decision gone wrong."""


class UsageError(ReproError):
    """Raised when a driver or CLI entry point is invoked with flags it
    cannot honor (e.g. ``--forensics`` without ``--trace``).  Distinct
    from :class:`ConfigurationError` — the *components* are fine; the
    invocation asked for an unsupported combination — so callers can
    map it to an exit-code-2 usage failure instead of a crash."""


class LintError(ReproError):
    """Raised for fatal problems inside the ``repro.lint`` analyzer itself
    (unparseable source, unknown rule ids, bad suppression syntax) — *not*
    for lint findings, which are reported as data, never raised."""


class AnalysisError(ReproError):
    """Raised for fatal problems inside the ``repro.analyze`` whole-program
    analyzer (unparseable source, malformed baseline files, impossible
    configurations) — *not* for analysis findings, which are reported as
    data, never raised."""


class SanitizerViolation(ReproError):
    """A simulation invariant was broken at runtime.

    Raised by :class:`repro.lint.sanitizer.SimSanitizer` the moment an
    invariant check fails.  Carries structured context so test harnesses
    and CI logs can pinpoint the offending event:

    ``invariant``
        Stable identifier of the broken invariant (e.g.
        ``"monotonic-time"``, ``"request-conservation"``).
    ``time``
        Simulation time (us) at which the violation was detected, or
        ``None`` when no loop was attached.
    ``context``
        Free-form dict of supporting values (counters, worker ids, ...).
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        time: "float | None" = None,
        context: "dict | None" = None,
    ):
        self.invariant = invariant
        self.time = time
        self.context = dict(context) if context else {}
        at = f" at t={time:.3f}us" if time is not None else ""
        detail = f" ({', '.join(f'{k}={v}' for k, v in self.context.items())})" if self.context else ""
        super().__init__(f"[{invariant}]{at}: {message}{detail}")
