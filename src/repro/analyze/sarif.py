"""SARIF 2.1.0 serialization for analysis findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning and most IDE problem-matchers ingest.  We emit the minimal
valid document: one run, one tool driver carrying the rule catalogue,
one result per finding with a physical location and a
``partialFingerprints`` entry reusing the baseline fingerprint so
re-uploads dedup stably across line drift.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import ANALYSIS_RULES, AnalysisFinding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analyze"

#: repro severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    meta = ANALYSIS_RULES[rule_id]
    return {
        "id": meta.id,
        "name": meta.name,
        "shortDescription": {"text": meta.description},
        "defaultConfiguration": {"level": _LEVELS.get(meta.severity, "warning")},
        "properties": {"analysis": meta.analysis},
    }


def to_sarif(findings: Sequence[AnalysisFinding]) -> Dict[str, object]:
    """Build the SARIF 2.1.0 document (as a plain dict) for ``findings``."""
    used_rules = sorted({f.rule_id for f in findings})
    rule_index = {rule_id: i for i, rule_id in enumerate(used_rules)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append(
            {
                "ruleId": finding.rule_id,
                "ruleIndex": rule_index[finding.rule_id],
                "level": _LEVELS.get(finding.severity, "warning"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path.replace("\\", "/"),
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": max(1, finding.line),
                                "startColumn": max(1, finding.col + 1),
                            },
                        }
                    }
                ],
                "partialFingerprints": {
                    "reproAnalyzeFingerprint/v1": finding.fingerprint
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro-analyze",
                        "rules": [_rule_descriptor(r) for r in used_rules],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def sarif_text(findings: Sequence[AnalysisFinding]) -> str:
    return json.dumps(to_sarif(findings), indent=2) + "\n"


def findings_from_sarif(doc: Dict[str, object]) -> List[Dict[str, object]]:
    """Flatten a SARIF document back into simple result dicts (used by
    tests to round-trip and by tooling that post-processes uploads)."""
    out: List[Dict[str, object]] = []
    for run in doc.get("runs", []):  # type: ignore[union-attr]
        for result in run.get("results", []):
            loc = result["locations"][0]["physicalLocation"]
            out.append(
                {
                    "rule_id": result["ruleId"],
                    "level": result["level"],
                    "message": result["message"]["text"],
                    "path": loc["artifactLocation"]["uri"],
                    "line": loc["region"]["startLine"],
                    "fingerprint": result.get("partialFingerprints", {}).get(
                        "reproAnalyzeFingerprint/v1", ""
                    ),
                }
            )
    return out
