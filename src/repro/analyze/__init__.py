"""Whole-program static analysis for the Persephone reproduction.

Where :mod:`repro.lint` checks one module at a time, this package parses
the entire tree into a symbol table and call graph
(:mod:`repro.analyze.model`) and runs four interprocedural analyses
over it:

* :mod:`repro.analyze.eventflow` — simulated-time race detection
  (A001/A002): same-timestamp event pairs whose handlers touch
  overlapping state, i.e. outcomes decided only by heap insertion order.
* :mod:`repro.analyze.rngflow` — RNG-stream ownership and escape
  analysis (A101–A103): subsystem-scoped streams created or consumed
  across subsystem boundaries.
* :mod:`repro.analyze.contracts` — Policy/System/Balancer contract
  verification (A201–A203): required overrides, mandatory ``super()``
  chains, reserved engine-owned field writes.
* :mod:`repro.analyze.purity` — observer-purity verification (A301):
  wall-clock, entropy, RNG, and heap-tracking calls inside the trace
  and telemetry observer packages, resolved through each module's
  import table.
* :mod:`repro.analyze.hotpath` — profile-guided hot-path performance
  analysis (A401–A406): allocations, missing ``__slots__``, repeated
  attribute lookups, string formatting, exception-driven control flow,
  and trivial delegation inside the set of functions transitively
  reachable from event dispatch, optionally ranked by measured handler
  cost from a ``BENCH_profile.json``.

Findings share :mod:`repro.lint`'s severity and pragma model
(``# repro-analyze: disable=A102``), serialize to text, JSON and SARIF
2.1.0 (:mod:`repro.analyze.sarif`), and gate in CI against a checked-in
baseline (:mod:`repro.analyze.baseline`).  The CLI is ``repro-analyze``
(:mod:`repro.analyze.cli`).  The runtime twin of the eventflow analysis
is the tie-break shadow check in :class:`repro.lint.sanitizer.SimSanitizer`.
"""

from .baseline import BaselineDiff, diff_baseline, load_baseline, write_baseline
from .contracts import analyze_contracts
from .eventflow import analyze_eventflow, collect_schedule_sites
from .findings import ANALYSIS_RULES, AnalysisFinding, RuleMeta, fingerprint, make_finding
from .hotpath import (
    analyze_hotpath,
    function_weights,
    hot_functions,
    hot_roots,
    load_profile,
    rank_findings,
)
from .model import Program, build_program
from .purity import analyze_purity
from .rngflow import analyze_rngflow
from .runner import analyze_paths, analyze_program, has_errors
from .sarif import findings_from_sarif, sarif_text, to_sarif

__all__ = [
    "ANALYSIS_RULES",
    "AnalysisFinding",
    "BaselineDiff",
    "Program",
    "RuleMeta",
    "analyze_contracts",
    "analyze_eventflow",
    "analyze_hotpath",
    "analyze_paths",
    "analyze_program",
    "analyze_purity",
    "analyze_rngflow",
    "build_program",
    "collect_schedule_sites",
    "diff_baseline",
    "findings_from_sarif",
    "fingerprint",
    "function_weights",
    "has_errors",
    "hot_functions",
    "hot_roots",
    "load_baseline",
    "load_profile",
    "make_finding",
    "rank_findings",
    "sarif_text",
    "to_sarif",
    "write_baseline",
]
