"""Whole-program static analysis for the Persephone reproduction.

Where :mod:`repro.lint` checks one module at a time, this package parses
the entire tree into a symbol table and call graph
(:mod:`repro.analyze.model`) and runs seven interprocedural analyses
over it:

* :mod:`repro.analyze.eventflow` — simulated-time race detection
  (A001/A002): same-timestamp event pairs whose handlers touch
  overlapping state, i.e. outcomes decided only by heap insertion order.
* :mod:`repro.analyze.rngflow` — RNG-stream ownership and escape
  analysis (A101–A103): subsystem-scoped streams created or consumed
  across subsystem boundaries.
* :mod:`repro.analyze.contracts` — Policy/System/Balancer contract
  verification (A201–A203): required overrides, mandatory ``super()``
  chains, reserved engine-owned field writes.
* :mod:`repro.analyze.purity` — observer-purity verification (A301):
  wall-clock, entropy, RNG, and heap-tracking calls inside the trace
  and telemetry observer packages, resolved through each module's
  import table.
* :mod:`repro.analyze.hotpath` — profile-guided hot-path performance
  analysis (A401–A406): allocations, missing ``__slots__``, repeated
  attribute lookups, string formatting, exception-driven control flow,
  and trivial delegation inside the set of functions transitively
  reachable from event dispatch, optionally ranked by measured handler
  cost from a ``BENCH_profile.json``.
* :mod:`repro.analyze.unitsflow` — virtual-time unit checking
  (A501–A505): an abstract interpretation over the unit lattice in
  :mod:`repro.analyze.dataflow` (``Duration_us`` / ``Timestamp_us`` /
  ``Rate_per_us`` / ``Fraction`` / ``Bytes``) that catches mixed units
  at scheduler sinks, rate-vs-duration confusion, percent-scaled
  fractions, unclamped timestamp subtractions, and unit-less big
  literals at time sites.
* :mod:`repro.analyze.forksafety` — process-boundary determinism
  checks (A601–A604) for the sweep/rack multiprocessing era:
  unpicklable spawn payloads, worker reads of runtime-mutated
  module-level state, unprefixed RNG streams in fork-adjacent
  packages, and checkpoint writes that bypass the single-writer
  store.

Findings share :mod:`repro.lint`'s severity and pragma model
(``# repro-analyze: disable=A102``), serialize to text, JSON and SARIF
2.1.0 (:mod:`repro.analyze.sarif`), and gate in CI against a checked-in
baseline (:mod:`repro.analyze.baseline`).  The CLI is ``repro-analyze``
(:mod:`repro.analyze.cli`).  The runtime twin of the eventflow analysis
is the tie-break shadow check in :class:`repro.lint.sanitizer.SimSanitizer`.
"""

from .baseline import BaselineDiff, diff_baseline, load_baseline, write_baseline
from .contracts import analyze_contracts
from .dataflow import (
    AbstractValue,
    FunctionSummary,
    analyze_function,
    compute_summaries,
    join,
    transfer_binop,
)
from .eventflow import analyze_eventflow, collect_schedule_sites
from .findings import ANALYSIS_RULES, AnalysisFinding, RuleMeta, fingerprint, make_finding
from .forksafety import analyze_forksafety
from .hotpath import (
    analyze_hotpath,
    function_weights,
    hot_functions,
    hot_roots,
    load_profile,
    rank_findings,
)
from .model import Program, build_program
from .purity import analyze_purity
from .rngflow import analyze_rngflow
from .runner import analyze_paths, analyze_program, has_errors
from .sarif import findings_from_sarif, sarif_text, to_sarif
from .unitsflow import analyze_unitsflow

__all__ = [
    "ANALYSIS_RULES",
    "AbstractValue",
    "AnalysisFinding",
    "BaselineDiff",
    "FunctionSummary",
    "Program",
    "RuleMeta",
    "analyze_contracts",
    "analyze_eventflow",
    "analyze_forksafety",
    "analyze_function",
    "analyze_hotpath",
    "analyze_paths",
    "analyze_program",
    "analyze_purity",
    "analyze_rngflow",
    "analyze_unitsflow",
    "build_program",
    "collect_schedule_sites",
    "compute_summaries",
    "diff_baseline",
    "findings_from_sarif",
    "fingerprint",
    "function_weights",
    "has_errors",
    "hot_functions",
    "hot_roots",
    "join",
    "load_baseline",
    "load_profile",
    "make_finding",
    "rank_findings",
    "sarif_text",
    "to_sarif",
    "transfer_binop",
    "write_baseline",
]
