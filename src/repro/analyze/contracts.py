"""Policy/System/Balancer contract verifier (findings A201/A202/A203).

The extension points this repo exposes — scheduling policies
(:class:`repro.policies.base.Scheduler`), system models
(:class:`repro.systems.base.SystemModel`) and cluster balancers
(:class:`repro.cluster.balancer.Balancer`) — each carry an implicit
contract: members a subclass must provide, base methods whose overrides
must chain to ``super()`` because the base maintains engine-side state
there, and fields that belong to the engine and must never be written
from outside their owning module.  Breaking any of these compiles fine
and usually *runs* fine at low load; it fails as a stranded
service-event, a phantom worker state, or a wrong recovery decision ten
thousand simulated microseconds later.  This analysis makes the
contract machine-checked.

* **A201** — a concrete subclass is missing a required override or
  class attribute (an inherited ``@abstractmethod`` does not count as
  provided).
* **A202** — an override of a chained method never calls ``super()``
  (accepted forms: ``super().m(...)`` and ``Base.m(self, ...)``).
* **A203** — a write to an engine-owned field from outside the owning
  module (``EventLoop`` internals, ``Worker`` lifecycle fields,
  ``Scheduler`` wiring).
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..lint.rules import SIM_CRITICAL_PACKAGES
from .findings import AnalysisFinding, make_finding
from .model import ClassInfo, FunctionInfo, Program


class ContractSpec(NamedTuple):
    """One extension-point contract."""

    base_key: str  # dotted key of the contract root class
    display: str
    required_methods: Tuple[str, ...]
    required_attrs: Tuple[str, ...]
    super_chain: Tuple[str, ...]  # overrides that must call super()


CONTRACTS: Tuple[ContractSpec, ...] = (
    ContractSpec(
        base_key="repro.policies.base.Scheduler",
        display="scheduling policy",
        required_methods=("on_request", "on_worker_free"),
        required_attrs=("traits",),
        super_chain=(
            "__init__",
            "bind",
            "on_worker_crash",
            "on_worker_recover",
            "attach_tracer",
        ),
    ),
    ContractSpec(
        base_key="repro.systems.base.SystemModel",
        display="system model",
        required_methods=("make_scheduler",),
        required_attrs=("name",),
        super_chain=("__init__",),
    ),
    ContractSpec(
        base_key="repro.cluster.balancer.Balancer",
        display="cluster balancer",
        required_methods=("pick",),
        required_attrs=(),
        super_chain=("__init__", "ingress"),
    ),
)

#: Engine-owned fields: attr name -> (owning module, owner description).
_RESERVED_FIELDS: Dict[str, Tuple[str, str]] = {
    # EventLoop internals — only the engine advances time and the heap.
    "_now": ("repro.sim.engine", "EventLoop"),
    "_heap": ("repro.sim.engine", "EventLoop"),
    "_seq": ("repro.sim.engine", "EventLoop"),
    "_events_processed": ("repro.sim.engine", "EventLoop"),
    "_running": ("repro.sim.engine", "EventLoop"),
    "_stopped": ("repro.sim.engine", "EventLoop"),
    # Worker lifecycle — set through Worker methods so busy-time
    # accounting and the sanitizer's exclusivity checks stay truthful.
    "current": ("repro.server.worker", "Worker"),
    "failed": ("repro.server.worker", "Worker"),
    "speed_factor": ("repro.server.worker", "Worker"),
    "crash_count": ("repro.server.worker", "Worker"),
    "_busy_since": ("repro.server.worker", "Worker"),
}

#: Scheduler wiring fields only ``policies/base.py`` may rebind.
_SCHEDULER_WIRING = frozenset({"loop", "workers", "_bound", "_on_complete", "_on_drop"})


def _is_abstract(fn: FunctionInfo) -> bool:
    for deco in fn.node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
        if name == "abstractmethod":
            return True
    return False


def _calls_super(node: ast.FunctionDef, method: str) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call) or not isinstance(sub.func, ast.Attribute):
            continue
        if sub.func.attr != method:
            continue
        receiver = sub.func.value
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "super"
        ):
            return True
        # Explicit Base.m(self, ...) chaining.
        if isinstance(receiver, ast.Name) and receiver.id[:1].isupper():
            return True
    return False


def _check_contract(
    program: Program, spec: ContractSpec, findings: List[AnalysisFinding]
) -> None:
    if spec.base_key not in program.classes:
        return
    for cls in program.subclasses_of(spec.base_key):
        ancestry = program.ancestry(cls)
        concrete = not cls.is_abstract_decorated
        # --- A201: required overrides -------------------------------
        if concrete:
            for method in spec.required_methods:
                fn = program.resolve_method(cls, method)
                if fn is None or _is_abstract(fn):
                    findings.append(
                        make_finding(
                            "A201",
                            cls.module.path,
                            cls.lineno,
                            cls.node.col_offset,
                            f"{spec.display} {cls.name} does not implement "
                            f"required method {method}() (only the abstract "
                            "declaration is inherited)",
                            symbol=f"{cls.key}.{method}",
                        )
                    )
            for attr in spec.required_attrs:
                provided = any(
                    attr in ancestor.class_attrs
                    for ancestor in ancestry
                    if ancestor.key != spec.base_key
                )
                if not provided and not program.resolve_class_attr_excluding(
                    cls, attr, spec.base_key
                ):
                    findings.append(
                        make_finding(
                            "A201",
                            cls.module.path,
                            cls.lineno,
                            cls.node.col_offset,
                            f"{spec.display} {cls.name} does not define required "
                            f"class attribute '{attr}' (the base default is a "
                            "placeholder, not an answer)",
                            symbol=f"{cls.key}.{attr}",
                        )
                    )
        # --- A202: mandatory super() chains -------------------------
        for method in spec.super_chain:
            own = cls.methods.get(method)
            if own is None or _is_abstract(own):
                continue
            inherited = None
            for ancestor in ancestry:
                if ancestor.key == cls.key:
                    continue
                candidate = ancestor.methods.get(method)
                if candidate is not None:
                    inherited = candidate
                    break
            if inherited is None or _is_abstract(inherited):
                continue
            if not _calls_super(own.node, method):
                findings.append(
                    make_finding(
                        "A202",
                        cls.module.path,
                        own.lineno,
                        own.node.col_offset,
                        f"{cls.name}.{method}() overrides a chained contract "
                        f"method but never calls super().{method}(); the base "
                        "class maintains engine-side state there",
                        symbol=f"{cls.key}.{method}",
                    )
                )


def _check_reserved_fields(program: Program, findings: List[AnalysisFinding]) -> None:
    scheduler_base = "repro.policies.base.Scheduler"
    for fn in program.iter_functions():
        module = fn.module
        pkg = module.package
        if pkg is not None and pkg not in SIM_CRITICAL_PACKAGES and pkg != "faults":
            continue
        cls = program.classes.get(fn.class_key) if fn.class_key else None
        in_policy = cls is not None and (
            cls.key == scheduler_base or program.is_subclass_of(cls, scheduler_base)
        )
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute) or not isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                continue
            receiver_is_self = (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            )
            if receiver_is_self:
                if (
                    in_policy
                    and node.attr in _SCHEDULER_WIRING
                    and module.name != "repro.policies.base"
                ):
                    findings.append(
                        make_finding(
                            "A203",
                            module.path,
                            node.lineno,
                            node.col_offset,
                            f"{fn.qualname}() rebinds Scheduler wiring field "
                            f"'self.{node.attr}'; only bind() in "
                            "policies/base.py may set it",
                            symbol=f"{fn.key}:{node.attr}",
                        )
                    )
                continue
            owner = _RESERVED_FIELDS.get(node.attr)
            if owner is None:
                continue
            owner_module, owner_class = owner
            if module.name == owner_module:
                continue
            findings.append(
                make_finding(
                    "A203",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"{fn.qualname}() writes engine-owned field "
                    f"'.{node.attr}' ({owner_class} lifecycle state owned by "
                    f"{owner_module}); call the owner's API instead of "
                    "poking the field",
                    symbol=f"{fn.key}:{node.attr}",
                )
            )


def analyze_contracts(program: Program) -> List[AnalysisFinding]:
    """Run the contract verifier over ``program``."""
    findings: List[AnalysisFinding] = []
    for spec in CONTRACTS:
        _check_contract(program, spec, findings)
    _check_reserved_fields(program, findings)
    return findings
