"""Fork-safety analysis (findings A601–A604).

The sweep executor (PR 7) and the rack composition it drives (PR 8)
moved the reproduction across process boundaries: cells run in spawned
workers, results cross pipes as documents, and checkpoints make sweeps
resumable.  Every one of those mechanisms carries a determinism hazard
the single-process analyses cannot see:

* **A601 — unpicklable capture in a spawn payload.**  A ``lambda`` or
  nested function passed as a worker ``target`` (or buried in its
  ``args``) pickles under the ``fork`` start method by accident and
  fails under ``spawn`` — i.e. it works on the machine it was written
  on and crashes on macOS/Windows CI.  Worker entry points must be
  module top-level functions taking plain documents.
* **A602 — module-level mutable state read on a worker path.**  A
  module-level dict/list/set that is *mutated at runtime* and *read by
  code reachable from a worker entry point* silently forks into
  per-process copies: the parent's mutations never reach spawned
  workers, and fork-inherited copies go stale.  Tables populated only
  at import time are exempt — every process reconstructs those
  identically.
* **A603 — unprefixed RNG stream in a fork-sensitive package.**  The
  flow-based upgrade of the A10x name checks: inside ``rack``/``sweep``/
  ``faults``, streams must carry their owning ``rack.*``/``sweep.*``/
  ``faults.*`` prefix so cross-process draw schedules stay auditable.
  Unlike A101 this follows the name through locals, f-string heads and
  literal concatenation, and it exempts the one sanctioned pattern:
  a workload-shared stream (``"arrivals"``) passed *directly* into a
  foreign package's constructor, which is the owner handing the stream
  over, not acquiring it.
* **A604 — checkpoint write outside the single-writer store.**  All
  sweep state on disk goes through
  :func:`repro.sweep.checkpoint.write_json_atomic` (temp file +
  ``os.replace``) so a crash mid-write can never corrupt a resumable
  sweep.  A raw ``open(..., "w")``/``os.replace`` in the sweep package
  outside ``checkpoint.py`` — or a raw write anywhere to a store path
  attribute (``plan_path``/``manifest_path``/``merged_path``/
  ``cells_dir``) — bypasses that guarantee.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .findings import AnalysisFinding, make_finding
from .model import FunctionInfo, ModuleInfo, Program
from .rngflow import _is_registry_receiver

#: Terminal callee names that ship work to another process.
SPAWN_CALLS = {"Process", "submit", "apply_async"}

#: Packages whose RNG streams must be prefix-audited (they run on both
#: sides of the process boundary).
FORK_PACKAGES = ("faults", "rack", "sweep")

#: The single-writer checkpoint store: its module, and the path
#: attributes that name files it owns.
STORE_MODULE = "repro.sweep.checkpoint"
STORE_PATH_ATTRS = {"plan_path", "manifest_path", "merged_path", "cells_dir"}

#: Mutating method names that mark a module-level container as
#: runtime-mutable when called outside module top level.
_MUTATORS = {
    "append",
    "add",
    "update",
    "setdefault",
    "extend",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
}

#: Constructors whose module-level result is a mutable container.
_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}


def _call_terminal(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


# ----------------------------------------------------------------------
# worker-path closure
# ----------------------------------------------------------------------
def _spawn_sites(fn: FunctionInfo) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(fn.node)
        if isinstance(node, ast.Call) and _call_terminal(node) in SPAWN_CALLS
    ]


def _spawn_target(call: ast.Call) -> Optional[ast.AST]:
    """The callable an ``SPAWN_CALLS`` site ships across the boundary."""
    terminal = _call_terminal(call)
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    if terminal in ("submit", "apply_async") and call.args:
        return call.args[0]
    return None


def _resolve_target(program: Program, fn: FunctionInfo, target: ast.AST) -> Optional[FunctionInfo]:
    module = fn.module
    if isinstance(target, ast.Name):
        local = program.functions.get(f"{module.name}.{target.id}")
        if local is not None:
            return local
        dotted = module.aliases.get(target.id)
        if dotted is not None:
            return program.functions.get(dotted)
        return None
    if isinstance(target, ast.Attribute):
        dotted = module.dotted_name(target)
        if dotted is not None:
            return program.functions.get(dotted)
    return None


def worker_functions(program: Program) -> List[FunctionInfo]:
    """Every function statically reachable from a spawn target — the
    code that executes inside pool workers."""
    roots: List[FunctionInfo] = []
    for fn in program.iter_functions():
        for call in _spawn_sites(fn):
            target = _spawn_target(call)
            if target is None:
                continue
            resolved = _resolve_target(program, fn, target)
            if resolved is not None:
                roots.append(resolved)
    seen: Dict[str, FunctionInfo] = {}
    queue = list(roots)
    while queue:
        fn = queue.pop(0)
        if fn.key in seen:
            continue
        seen[fn.key] = fn
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = program.resolve_call(fn, node)
                if callee is not None and callee.key not in seen:
                    queue.append(callee)
    return [seen[key] for key in sorted(seen)]


# ----------------------------------------------------------------------
# A601: unpicklable spawn payloads
# ----------------------------------------------------------------------
def _nested_def_names(fn: FunctionInfo) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not fn.node
        ):
            names.add(node.name)
    return names


def _check_spawn_payloads(fn: FunctionInfo, findings: List[AnalysisFinding]) -> None:
    nested = _nested_def_names(fn)
    for call in _spawn_sites(fn):
        terminal = _call_terminal(call)
        target = _spawn_target(call)
        if target is not None:
            bad = ""
            if isinstance(target, ast.Lambda):
                bad = "a lambda"
            elif isinstance(target, ast.Name) and target.id in nested:
                bad = f"the nested function {target.id}()"
            if bad:
                findings.append(
                    make_finding(
                        "A601",
                        fn.module.path,
                        call.lineno,
                        call.col_offset,
                        f"{fn.qualname}() ships {bad} as a {terminal} "
                        "target; closures pickle under fork by accident "
                        "and fail under spawn — use a module top-level "
                        "function taking plain documents",
                        symbol=f"{fn.key}:spawn-target",
                    )
                )
        for kw in call.keywords:
            if kw.arg != "args":
                continue
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Lambda):
                    findings.append(
                        make_finding(
                            "A601",
                            fn.module.path,
                            sub.lineno,
                            sub.col_offset,
                            f"{fn.qualname}() buries a lambda in a "
                            f"{terminal} args payload; it cannot cross a "
                            "spawn boundary — pass plain data and resolve "
                            "behaviour by name on the worker side",
                            symbol=f"{fn.key}:spawn-args",
                        )
                    )
                    break


# ----------------------------------------------------------------------
# A602: module-level mutable state on worker paths
# ----------------------------------------------------------------------
def _module_level_mutables(module: ModuleInfo) -> Set[str]:
    """Names bound at module top level to a mutable container."""
    out: Set[str] = set()
    for stmt in module.tree.body:
        targets: Iterable[ast.AST] = ()
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call) and _call_terminal(value) in _MUTABLE_CALLS
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _runtime_mutated(program: Program, module: ModuleInfo, names: Set[str]) -> Set[str]:
    """The subset of ``names`` mutated *outside* module top level —
    import-time registration patterns rebuild identically in every
    process and are exempt."""
    mutated: Set[str] = set()
    for fn in program.functions.values():
        if fn.module is not module:
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Name) and base.id in names:
                        mutated.add(base.id)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in names
            ):
                mutated.add(node.func.value.id)
            elif isinstance(node, ast.Global):
                mutated.update(n for n in node.names if n in names)
    return mutated


def _check_worker_state(
    program: Program, workers: List[FunctionInfo], findings: List[AnalysisFinding]
) -> None:
    per_module: Dict[str, Set[str]] = {}
    reported: Set[Tuple[str, str]] = set()
    for fn in workers:
        module = fn.module
        if module.name not in per_module:
            candidates = _module_level_mutables(module)
            per_module[module.name] = _runtime_mutated(program, module, candidates)
        hazards = per_module[module.name]
        if not hazards:
            continue
        local_names = {
            a.arg
            for a in (
                list(fn.node.args.posonlyargs)
                + list(fn.node.args.args)
                + list(fn.node.args.kwonlyargs)
            )
        }
        reads: Dict[str, ast.Name] = {}
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in hazards
                and node.id not in local_names
            ):
                best = reads.get(node.id)
                if best is None or (node.lineno, node.col_offset) < (
                    best.lineno,
                    best.col_offset,
                ):
                    reads[node.id] = node
        for name in sorted(reads):
            node = reads[name]
            key = (module.name, node.id)
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                make_finding(
                    "A602",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"{fn.qualname}() runs on a worker path and reads "
                    f"module-level mutable {node.id}, which is mutated "
                    "at runtime; spawned workers never see the "
                    "parent's mutations (and forked copies go stale) "
                    "— pass the state through the cell document, or "
                    "make the table import-time-only",
                    symbol=f"{module.name}.{node.id}:worker-read",
                )
            )


# ----------------------------------------------------------------------
# A603: unprefixed streams in fork-sensitive packages
# ----------------------------------------------------------------------
def _stream_name(fn: FunctionInfo, call: ast.Call, env: Dict[str, str]) -> Optional[str]:
    """The stream-name head of a registry ``.stream(...)`` call, flowed
    through locals, f-string heads and literal concatenation.  Returns
    the full literal when static, a ``"prefix."``-headed partial name
    for dynamic tails, or None when nothing is known (A103's case)."""
    if not call.args:
        return None
    return _literal_head(call.args[0], env)


def _literal_head(node: ast.AST, env: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _literal_head(node.left, env)
    return None


def _string_env(fn: FunctionInfo) -> Dict[str, str]:
    """Locals bound (once) to a string literal or literal-headed value."""
    env: Dict[str, str] = {}
    bound: Set[str] = set()
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            name = node.targets[0].id
            if name in bound:
                env.pop(name, None)
                continue
            bound.add(name)
            head = _literal_head(node.value, {})
            if head is not None:
                env[name] = head
    return env


def _parent_map(root: ast.AST) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _is_direct_handoff(
    program: Program,
    fn: FunctionInfo,
    stream_call: ast.Call,
    parents: Dict[int, ast.AST],
) -> bool:
    """True when the stream call sits in the argument list of a call
    into a *different* package — the owner handing a shared stream to a
    foreign component (the sanctioned generator-wiring pattern)."""
    node: ast.AST = stream_call
    while True:
        parent = parents.get(id(node))
        if parent is None:
            return False
        if isinstance(parent, ast.Call) and node is not parent.func:
            owner = program.resolve_callable_owner(fn, parent)
            if owner is not None and owner != fn.module.package:
                return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)):
            return False
        node = parent


def _check_stream_prefixes(
    program: Program, fn: FunctionInfo, findings: List[AnalysisFinding]
) -> None:
    pkg = fn.module.package
    if pkg not in FORK_PACKAGES:
        return
    env = _string_env(fn)
    parents: Optional[Dict[int, ast.AST]] = None
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream"
            and _is_registry_receiver(node.func.value)
        ):
            continue
        name = _stream_name(fn, node, env)
        if name is None:
            continue  # dynamic name: A103's finding, not ours
        if "." in name:
            continue  # prefixed: correct, or A101's cross-package case
        if parents is None:
            parents = _parent_map(fn.node)
        if _is_direct_handoff(program, fn, node, parents):
            continue
        findings.append(
            make_finding(
                "A603",
                fn.module.path,
                node.lineno,
                node.col_offset,
                f"{fn.qualname}() acquires RNG stream '{name}' inside "
                f"the fork-sensitive package '{pkg}' without its "
                f"'{pkg}.' prefix; cross-process draw audits need the "
                f"owner in the name — use '{pkg}.{name}'",
                symbol=f"{fn.key}:stream:{name}",
            )
        )


# ----------------------------------------------------------------------
# A604: writes bypassing the single-writer checkpoint store
# ----------------------------------------------------------------------
def _open_write_mode(call: ast.Call) -> bool:
    if _call_terminal(call) != "open" or isinstance(call.func, ast.Attribute):
        return False
    mode: Optional[ast.AST] = call.args[1] if len(call.args) > 1 else None
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return False
    return (
        isinstance(mode, ast.Constant)
        and isinstance(mode.value, str)
        and any(ch in mode.value for ch in "wax")
    )


def _is_os_replace(call: ast.Call, module: ModuleInfo) -> bool:
    if not isinstance(call.func, ast.Attribute) or call.func.attr != "replace":
        return False
    dotted = module.dotted_name(call.func)
    return dotted == "os.replace"


def _store_path_arg(call: ast.Call) -> Optional[str]:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Attribute) and sub.attr in STORE_PATH_ATTRS:
                return sub.attr
    return None


def _check_checkpoint_writes(
    program: Program, fn: FunctionInfo, findings: List[AnalysisFinding]
) -> None:
    module = fn.module
    in_store = module.name == STORE_MODULE
    in_sweep = module.package == "sweep"
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        raw_write = _open_write_mode(node) or _is_os_replace(node, module)
        if not raw_write:
            continue
        if in_store:
            continue  # the store itself is the sanctioned writer
        store_attr = _store_path_arg(node)
        if in_sweep:
            what = f"store path .{store_attr}" if store_attr else "a file"
            findings.append(
                make_finding(
                    "A604",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"{fn.qualname}() writes {what} directly inside the "
                    "sweep package; all resumable state must go through "
                    "checkpoint.write_json_atomic (temp + os.replace) so "
                    "a crash mid-write cannot corrupt a sweep",
                    symbol=f"{fn.key}:raw-write",
                )
            )
        elif store_attr is not None:
            findings.append(
                make_finding(
                    "A604",
                    module.path,
                    node.lineno,
                    node.col_offset,
                    f"{fn.qualname}() writes the checkpoint store path "
                    f".{store_attr} outside the single-writer store; use "
                    "checkpoint.write_json_atomic or route the write "
                    "through the orchestrator",
                    symbol=f"{fn.key}:store-write:{store_attr}",
                )
            )


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def analyze_forksafety(program: Program) -> List[AnalysisFinding]:
    """Run the fork-safety checks over ``program``."""
    findings: List[AnalysisFinding] = []
    for fn in program.iter_functions():
        _check_spawn_payloads(fn, findings)
        _check_stream_prefixes(program, fn, findings)
        _check_checkpoint_writes(program, fn, findings)
    workers = worker_functions(program)
    _check_worker_state(program, workers, findings)
    return findings
