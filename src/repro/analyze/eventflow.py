"""Simulated-time race detector (findings A001/A002).

The event loop fires same-timestamp events in *insertion order* — a
deterministic but implicit tie-break.  Whenever two different handlers
can be booked for the same instant and their effects touch overlapping
state, the simulation's outcome depends on which line of code happened
to schedule first: the heapq tie-break nondeterminism class that
single-file linting cannot see, because the two schedule sites usually
live in different modules (a fault injector's ``call_at`` vs a policy's
completion event).

The analysis proceeds in three steps:

1. **Schedule sites** — every ``call_at`` / ``call_after`` /
   ``schedule_service_event`` call, with its delay classified as a
   numeric constant, an absolute time, or symbolic, and its callback
   resolved to a program function where possible.
2. **Handler effects** — per handler, the transitive read/write sets
   over object state, computed through the call graph.  ``self``
   attributes are namespaced by the handler's *hierarchy root* class
   (``Scheduler.x``), so a base-class helper and a subclass override
   compare against the same field names; calls into methods known only
   by name (``worker.end()``) expand through every in-program class
   defining that method.
3. **Pairing** — two sites can tie when both use equal constant delays
   (A001) or when at least one books at an absolute, externally supplied
   time (A002).  A pair with conflicting effect sets becomes a finding,
   deduplicated per handler pair.

Everything here is a *hazard* report (severity ``warning``): the run is
still reproducible, but its outcome hangs on an undeclared ordering.
The runtime twin of this analysis is the tie-break shadow check in
:class:`repro.lint.sanitizer.SimSanitizer`.
"""

from __future__ import annotations

import ast
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from ..lint.rules import SIM_CRITICAL_PACKAGES
from .findings import AnalysisFinding, make_finding
from .model import ClassInfo, FunctionInfo, Program

#: (method attr name, delay argument index, callback argument index)
_SCHEDULE_METHODS = {
    "call_at": (0, 1),
    "call_after": (0, 1),
    "schedule_service_event": (1, 2),
}

#: Mutating method names treated as state effects on unresolved receivers.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "update", "extend", "insert",
        "pop", "popleft", "remove", "discard", "clear", "setdefault",
        "begin", "end", "fail", "recover", "cancel",
    }
)

#: Cap on call-graph expansion depth when closing effect sets.
_MAX_DEPTH = 5


class Effects(NamedTuple):
    reads: Set[str]
    writes: Set[str]


class ScheduleSite(NamedTuple):
    """One static ``call_at``/``call_after``/``schedule_service_event``."""

    scheduler_fn: FunctionInfo  # the function containing the call
    callback: Optional[FunctionInfo]
    method: str  # which scheduling API
    delay_kind: str  # "const" | "at" | "expr"
    delay_value: Optional[float]
    line: int
    col: int

    def where(self) -> str:
        return f"{self.scheduler_fn.module.path}:{self.line}"


def _classify_delay(method: str, expr: ast.AST) -> Tuple[str, Optional[float]]:
    if method == "call_at":
        if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
            return "at", float(expr.value)
        return "at", None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (int, float)):
        return "const", float(expr.value)
    return "expr", None


def collect_schedule_sites(program: Program) -> List[ScheduleSite]:
    """Every static schedule call in the program, in source order."""
    sites: List[ScheduleSite] = []
    for fn in program.iter_functions():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            spec = _SCHEDULE_METHODS.get(node.func.attr)
            if spec is None:
                continue
            delay_idx, cb_idx = spec
            if len(node.args) <= cb_idx:
                continue
            kind, value = _classify_delay(node.func.attr, node.args[delay_idx])
            callback = _resolve_callback(program, fn, node.args[cb_idx])
            sites.append(
                ScheduleSite(
                    fn, callback, node.func.attr, kind, value,
                    node.lineno, node.col_offset,
                )
            )
    return sites


def _resolve_callback(
    program: Program, fn: FunctionInfo, expr: ast.AST
) -> Optional[FunctionInfo]:
    """Resolve a callback expression to its handler function."""
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" and fn.class_key:
            cls = program.classes.get(fn.class_key)
            if cls is not None:
                return program.resolve_method(cls, expr.attr)
        dotted = fn.module.dotted_name(expr)
        if dotted is not None:
            return program.functions.get(dotted)
        return None
    if isinstance(expr, ast.Name):
        name = expr.id
        local = program.functions.get(f"{fn.module.name}.{name}")
        if local is not None:
            return local
        dotted = fn.module.aliases.get(name)
        if dotted is not None:
            return program.functions.get(dotted)
    return None


class EffectAnalyzer:
    """Computes transitive handler effect sets over the program."""

    def __init__(self, program: Program):
        self.program = program
        self._cache: Dict[str, Effects] = {}
        # method name -> in-program functions defining it (for
        # name-only expansion of unresolved receivers).
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        for fn in program.functions.values():
            if fn.class_key is not None:
                self._by_name.setdefault(fn.name, []).append(fn)

    # ------------------------------------------------------------------
    def _namespace(self, fn: FunctionInfo) -> str:
        """Hierarchy-root class name for ``self`` attributes, so a base
        helper and a subclass override talk about the same fields."""
        if fn.class_key is None:
            return fn.module.name
        cls = self.program.classes.get(fn.class_key)
        if cls is None:
            return fn.class_key.rsplit(".", 1)[-1]
        ancestry = self.program.ancestry(cls)
        return ancestry[-1].name

    def effects_of(self, fn: FunctionInfo) -> Effects:
        return self._effects(fn, depth=0, visiting=set())

    def _effects(self, fn: FunctionInfo, depth: int, visiting: Set[str]) -> Effects:
        cached = self._cache.get(fn.key)
        if cached is not None:
            return cached
        if fn.key in visiting or depth > _MAX_DEPTH:
            return Effects(set(), set())
        visiting = visiting | {fn.key}
        ns = self._namespace(fn)
        reads: Set[str] = set()
        writes: Set[str] = set()

        def self_key(attr: str) -> str:
            return f"{ns}.{attr}"

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    if isinstance(node.ctx, (ast.Store, ast.Del)):
                        writes.add(self_key(node.attr))
                    elif isinstance(node.ctx, ast.Load):
                        reads.add(self_key(node.attr))
                elif isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
                    node.value, ast.Name
                ):
                    writes.add(f"*.{node.attr}")
            elif isinstance(node, ast.Subscript):
                # self.X[...] = ... mutates X.
                target = node.value
                if (
                    isinstance(node.ctx, (ast.Store, ast.Del))
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    writes.add(self_key(target.attr))
            elif isinstance(node, ast.Call):
                self._call_effects(fn, node, ns, reads, writes, depth, visiting)

        result = Effects(reads, writes)
        if depth == 0:
            self._cache[fn.key] = result
        return result

    def _call_effects(
        self,
        fn: FunctionInfo,
        call: ast.Call,
        ns: str,
        reads: Set[str],
        writes: Set[str],
        depth: int,
        visiting: Set[str],
    ) -> None:
        func = call.func
        # self.X.mutator(...) mutates the self attribute X.
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            writes.add(f"{ns}.{func.value.attr}")
            return
        resolved = self.program.resolve_call(fn, call)
        if resolved is not None:
            sub = self._effects(resolved, depth + 1, visiting)
            reads.update(sub.reads)
            writes.update(sub.writes)
            return
        # Unresolved receiver: expand by method name when the program
        # defines it, else record mutators/handlers as symbolic writes.
        if isinstance(func, ast.Attribute):
            name = func.attr
            definers = self._by_name.get(name, ())
            if definers and (name in _MUTATORS or name.startswith(("on_", "handle_"))):
                for target in definers:
                    sub = self._effects(target, depth + 1, visiting)
                    reads.update(sub.reads)
                    writes.update(sub.writes)
                writes.add(f"*.{name}()")
            elif name in _MUTATORS or name.startswith(("on_", "handle_")):
                writes.add(f"*.{name}()")


def _conflict(a: Effects, b: Effects) -> Set[str]:
    """State keys where one handler's writes meet the other's accesses."""
    return (a.writes & b.writes) | (a.writes & b.reads) | (b.writes & a.reads)


def _tie_reason(a: ScheduleSite, b: ScheduleSite) -> Optional[Tuple[str, str]]:
    """(rule_id, human reason) when the two sites can book the same
    timestamp; None otherwise."""
    if a.delay_kind == "const" and b.delay_kind == "const":
        if a.delay_value == b.delay_value:
            return "A001", f"both schedule with the same constant delay ({a.delay_value:g}us)"
        return None
    if a.delay_kind == "at" or b.delay_kind == "at":
        if (
            a.delay_kind == "at"
            and b.delay_kind == "at"
            and a.delay_value is not None
            and b.delay_value is not None
            and a.delay_value != b.delay_value
        ):
            return None
        return (
            "A002",
            "an absolute-time schedule (externally supplied timestamp) can "
            "land on the same instant as the other site",
        )
    return None


def _sim_critical(fn: FunctionInfo) -> bool:
    pkg = fn.module.package
    return pkg is None or pkg in SIM_CRITICAL_PACKAGES


def analyze_eventflow(program: Program) -> List[AnalysisFinding]:
    """Run the race detector over ``program``."""
    sites = [s for s in collect_schedule_sites(program) if s.callback is not None]
    sites = [s for s in sites if _sim_critical(s.callback) and _sim_critical(s.scheduler_fn)]
    analyzer = EffectAnalyzer(program)
    findings: List[AnalysisFinding] = []
    reported: Set[Tuple[str, str, str]] = set()
    for i, a in enumerate(sites):
        for b in sites[i + 1:]:
            if a.callback.key == b.callback.key:
                continue  # same handler twice: order among equals is benign
            reason = _tie_reason(a, b)
            if reason is None:
                continue
            rule_id, why = reason
            pair = tuple(sorted((a.callback.key, b.callback.key)))
            if (rule_id, pair[0], pair[1]) in reported:
                continue
            conflict = _conflict(
                analyzer.effects_of(a.callback), analyzer.effects_of(b.callback)
            )
            if not conflict:
                continue
            reported.add((rule_id, pair[0], pair[1]))
            first, second = sorted((a, b), key=lambda s: (s.scheduler_fn.module.path, s.line))
            keys = ", ".join(sorted(conflict)[:6])
            findings.append(
                make_finding(
                    rule_id,
                    first.scheduler_fn.module.path,
                    first.line,
                    first.col,
                    f"handlers {first.callback.qualname}() and "
                    f"{second.callback.qualname}() (scheduled at {second.where()}) "
                    f"can fire at the same timestamp — {why} — and their effects "
                    f"overlap on: {keys}; only heap insertion order decides the "
                    "outcome, so state the tie-break explicitly or suppress with "
                    "justification",
                    symbol="~".join(pair),
                )
            )
    return findings
