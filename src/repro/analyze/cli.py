"""``repro-analyze`` — the whole-program static analyzer CLI.

Usage::

    repro-analyze scan src/repro                      # full scan, text output
    repro-analyze scan src/repro --format json        # machine-readable
    repro-analyze scan src/repro --sarif out.sarif    # also write SARIF 2.1.0
    repro-analyze scan src/repro --baseline analyze-baseline.json
                                                      # gate: new findings fail
    repro-analyze scan src/repro --purity-audit       # + sanctioned-impurity
                                                      # ledger (R009/A301)
    repro-analyze baseline src/repro -o analyze-baseline.json
                                                      # (re)write the baseline
    repro-analyze diff src/repro --baseline analyze-baseline.json
                                                      # show new + resolved
    repro-analyze sarif src/repro -o out.sarif        # SARIF only
    repro-analyze hotpath src/repro --profile BENCH_profile.json
                                                      # A401-A406 only,
                                                      # cost-ranked output
    repro-analyze units src/repro --strict            # A501-A505 only
    repro-analyze forksafety src/repro --strict       # A601-A604 only
    repro-analyze selfcheck                           # scan this package's
                                                      # own source tree
    repro-analyze list-rules                          # finding catalogue

Exit codes: 0 clean, 1 gate failure (unbaselined findings / severity
errors / any finding with ``--strict``), 2 usage or internal errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from ..errors import ReproError
from .baseline import diff_baseline, load_baseline, write_baseline
from .findings import ANALYSIS_RULES, AnalysisFinding
from .hotpath import load_profile, rank_findings
from .model import build_program
from .runner import analyze_paths, analyze_program, has_errors
from ..lint.runner import iter_python_files
from .sarif import sarif_text

#: The rule ids the ``hotpath`` subcommand restricts itself to.
HOTPATH_SELECT = ["A000", "A401", "A402", "A403", "A404", "A405", "A406"]

#: The rule ids the ``units`` subcommand restricts itself to.
UNITS_SELECT = ["A000", "A501", "A502", "A503", "A504", "A505"]

#: The rule ids the ``forksafety`` subcommand restricts itself to.
FORKSAFETY_SELECT = ["A000", "A601", "A602", "A603", "A604"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Interprocedural static analyzer for the Persephone "
        "reproduction: simulated-time races, RNG-stream escapes, and "
        "Policy/System/Balancer contract violations.",
    )
    sub = parser.add_subparsers(dest="command")

    def add_scan_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("paths", nargs="+", help="files or directories to analyze")
        p.add_argument(
            "--select",
            metavar="IDS",
            default=None,
            help="comma-separated finding ids to run (default: all)",
        )
        p.add_argument(
            "--root",
            default=None,
            help="root directory for module naming of non-repro trees",
        )

    scan = sub.add_parser("scan", help="analyze and report findings")
    add_scan_args(scan)
    scan.add_argument(
        "--format", choices=("text", "json"), default="text", help="findings format"
    )
    scan.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON; findings in it are tolerated, new ones fail",
    )
    scan.add_argument("--sarif", default=None, help="also write SARIF 2.1.0 here")
    scan.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )
    scan.add_argument(
        "--purity-audit",
        action="store_true",
        help="also print the sanctioned-impurity ledger: every R009/A301 "
        "suppression pragma with its file:line and code",
    )

    base = sub.add_parser("baseline", help="write the current findings as baseline")
    add_scan_args(base)
    base.add_argument("-o", "--output", required=True, help="baseline file to write")

    diff = sub.add_parser("diff", help="compare findings against a baseline")
    add_scan_args(diff)
    diff.add_argument("--baseline", required=True, help="baseline JSON to diff against")
    diff.add_argument(
        "--format", choices=("text", "json"), default="text", help="diff format"
    )

    sarif = sub.add_parser("sarif", help="analyze and write SARIF 2.1.0 only")
    add_scan_args(sarif)
    sarif.add_argument("-o", "--output", required=True, help="SARIF file to write")

    hot = sub.add_parser(
        "hotpath",
        help="profile-guided hot-path performance scan (A401-A406 only)",
    )
    add_scan_args(hot)
    hot.add_argument(
        "--profile",
        default=None,
        metavar="BENCH_PROFILE",
        help="BENCH_profile.json to rank findings by measured handler cost",
    )
    hot.add_argument(
        "--format", choices=("text", "json"), default="text", help="findings format"
    )
    hot.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON; findings in it are tolerated, new ones fail",
    )
    hot.add_argument("--sarif", default=None, help="also write SARIF 2.1.0 here")
    hot.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )

    for name, help_text in (
        ("units", "virtual-time unit-flow scan (A501-A505 only)"),
        ("forksafety", "process-boundary determinism scan (A601-A604 only)"),
    ):
        family = sub.add_parser(name, help=help_text)
        add_scan_args(family)
        family.add_argument(
            "--format", choices=("text", "json"), default="text", help="findings format"
        )
        family.add_argument(
            "--baseline",
            default=None,
            help="baseline JSON; findings in it are tolerated, new ones fail",
        )
        family.add_argument("--sarif", default=None, help="also write SARIF 2.1.0 here")
        family.add_argument(
            "--strict", action="store_true", help="warnings also fail the run"
        )

    self_p = sub.add_parser(
        "selfcheck", help="scan the installed repro package's own source"
    )
    self_p.add_argument(
        "--baseline", default=None, help="baseline JSON to gate against"
    )
    self_p.add_argument(
        "--format", choices=("text", "json"), default="text", help="findings format"
    )
    self_p.add_argument("--sarif", default=None, help="also write SARIF 2.1.0 here")
    self_p.add_argument(
        "--strict", action="store_true", help="warnings also fail the run"
    )

    sub.add_parser("list-rules", help="print the finding catalogue and exit")
    return parser


def _split_select(select: Optional[str]) -> Optional[List[str]]:
    if select is None:
        return None
    return [s.strip() for s in select.split(",") if s.strip()]


def _package_root() -> str:
    """Directory of the installed ``repro`` package (selfcheck target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _emit(findings: Sequence[AnalysisFinding], fmt: str) -> None:
    if fmt == "json":
        print(
            json.dumps(
                [dict(f._asdict(), fingerprint=f.fingerprint) for f in findings],
                indent=2,
            )
        )
        return
    for finding in findings:
        print(finding.format())
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    print(f"repro-analyze: {errors} error(s), {warnings} warning(s)")


def _print_purity_audit(paths: Sequence[str]) -> None:
    """The sanctioned-impurity ledger (``scan --purity-audit``)."""
    from .purity import purity_pragma_ledger

    entries = purity_pragma_ledger(paths)
    print("Sanctioned observer impurities (R009/A301 suppression pragmas):")
    for entry in entries:
        print(
            f"  {entry['path']}:{entry['line']} "
            f"[{entry['tool']}:{entry['rule']}] {entry['code']}"
        )
    print(f"repro-analyze: {len(entries)} sanctioned impurity pragma(s)")


def _print_rules() -> None:
    for meta in ANALYSIS_RULES.values():
        print(f"{meta.id} {meta.name} [{meta.severity}] (analysis: {meta.analysis})")
        for line in meta.description.splitlines():
            print(f"    {line.strip()}")
        print()


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as fp:
        return fp.read()


def _write(path: str, text: str) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(text)


def _gate(
    findings: List[AnalysisFinding],
    baseline_path: Optional[str],
    fmt: str,
    sarif_path: Optional[str],
    strict: bool,
    emit=None,
) -> int:
    """Shared scan/selfcheck/hotpath reporting + gating logic."""
    emit = emit or _emit
    if sarif_path:
        _write(sarif_path, sarif_text(findings))
    if baseline_path:
        baseline = load_baseline(_read(baseline_path))
        result = diff_baseline(findings, baseline)
        emit(result.new, fmt)
        if result.resolved:
            print(
                f"repro-analyze: {len(result.resolved)} baselined finding(s) "
                "no longer fire — ratchet the baseline down "
                "(repro-analyze baseline ... -o <file>)"
            )
        if result.new:
            print(
                f"repro-analyze: {len(result.new)} finding(s) not in baseline "
                f"({len(result.known)} tolerated)"
            )
            return 1
        print(
            f"repro-analyze: clean against baseline "
            f"({len(result.known)} tolerated finding(s))"
        )
        return 0
    emit(findings, fmt)
    return 1 if has_errors(findings, strict=strict) else 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        sys.stderr.close()
        return 1


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        return 2
    if args.command == "list-rules":
        _print_rules()
        return 0
    try:
        if args.command == "selfcheck":
            findings = analyze_paths([_package_root()])
            return _gate(findings, args.baseline, args.format, args.sarif, args.strict)
        if args.command == "hotpath":
            select = _split_select(args.select) or HOTPATH_SELECT
            files = iter_python_files(args.paths)
            if not files:
                raise ReproError("no Python files to analyze")
            program = build_program(files, root=args.root)
            findings = analyze_program(program, select=select)
            profile = load_profile(args.profile) if args.profile else None

            def emit_ranked(shown: Sequence[AnalysisFinding], fmt: str) -> None:
                if profile is None or fmt != "text":
                    _emit(shown, fmt)
                    return
                for weight, finding in rank_findings(program, shown, profile):
                    print(f"{weight * 1e3:9.3f}ms {finding.format()}")
                print(
                    f"repro-analyze: {len(shown)} hot-path finding(s), "
                    "ranked by measured handler cost"
                )

            return _gate(
                findings,
                args.baseline,
                args.format,
                args.sarif,
                args.strict,
                emit=emit_ranked,
            )
        if args.command in ("units", "forksafety"):
            family = UNITS_SELECT if args.command == "units" else FORKSAFETY_SELECT
            select = _split_select(args.select) or family
            findings = analyze_paths(args.paths, select=select, root=args.root)
            return _gate(findings, args.baseline, args.format, args.sarif, args.strict)
        select = _split_select(args.select)
        findings = analyze_paths(args.paths, select=select, root=args.root)
        if args.command == "scan":
            code = _gate(findings, args.baseline, args.format, args.sarif, args.strict)
            if args.purity_audit:
                _print_purity_audit(args.paths)
            return code
        if args.command == "baseline":
            _write(args.output, write_baseline(findings))
            print(
                f"repro-analyze: wrote {len(findings)} finding(s) to {args.output}"
            )
            return 0
        if args.command == "diff":
            baseline = load_baseline(_read(args.baseline))
            result = diff_baseline(findings, baseline)
            if args.format == "json":
                print(
                    json.dumps(
                        {
                            "new": [
                                dict(f._asdict(), fingerprint=f.fingerprint)
                                for f in result.new
                            ],
                            "resolved": result.resolved,
                            "known": len(result.known),
                        },
                        indent=2,
                    )
                )
            else:
                for finding in result.new:
                    print(f"NEW      {finding.format()}")
                for entry in result.resolved:
                    print(
                        f"RESOLVED {entry.get('rule_id', '?')} {entry.get('path', '?')} "
                        f"{entry.get('symbol', '')} [{entry.get('fingerprint', '')}]"
                    )
                print(
                    f"repro-analyze: {len(result.new)} new, "
                    f"{len(result.resolved)} resolved, {len(result.known)} known"
                )
            return 1 if result.new else 0
        if args.command == "sarif":
            _write(args.output, sarif_text(findings))
            print(f"repro-analyze: wrote SARIF for {len(findings)} finding(s) to {args.output}")
            return 0
    except ReproError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro-analyze: {exc}", file=sys.stderr)
        return 2
    parser.print_usage(sys.stderr)  # pragma: no cover - unreachable
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
