"""Finding baseline: ratchet legacy findings without letting new ones in.

A whole-program analyzer pointed at an existing tree fires on code that
predates it.  Rather than demand a flag day (or worse, launch with the
analyses disabled), CI compares the current scan against a checked-in
baseline of *fingerprints*: pre-existing findings are tolerated, any
finding not in the baseline fails the build, and baselined findings that
no longer fire are reported so the file can be ratcheted down.

Fingerprints (:data:`repro.analyze.findings.AnalysisFinding.fingerprint`)
hash rule id, path, symbol and message — **not** the line number — so
unrelated edits above a finding do not churn the baseline.
"""

from __future__ import annotations

import json
from typing import Dict, List, NamedTuple, Sequence

from ..errors import AnalysisError
from .findings import ANALYSIS_RULES, AnalysisFinding

BASELINE_VERSION = 1


class BaselineDiff(NamedTuple):
    """Scan-vs-baseline comparison.

    ``new``
        Findings whose fingerprint is absent from the baseline — these
        fail the gate.
    ``resolved``
        Baseline entries whose fingerprint no longer fires — candidates
        for removal (the ratchet direction).
    ``known``
        Findings matched by the baseline — tolerated.
    """

    new: List[AnalysisFinding]
    resolved: List[Dict[str, str]]
    known: List[AnalysisFinding]


def baseline_entry(finding: AnalysisFinding) -> Dict[str, object]:
    """The checked-in representation of one tolerated finding."""
    return {
        "fingerprint": finding.fingerprint,
        "rule_id": finding.rule_id,
        "path": finding.path.replace("\\", "/"),
        "symbol": finding.symbol,
        "message": finding.message,
    }


def write_baseline(findings: Sequence[AnalysisFinding]) -> str:
    """Serialize ``findings`` as a baseline JSON document (stable order)."""
    entries = sorted(
        (baseline_entry(f) for f in findings),
        key=lambda e: (e["rule_id"], e["path"], e["fingerprint"]),
    )
    doc = {"version": BASELINE_VERSION, "findings": entries}
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"


def load_baseline(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a baseline document into fingerprint -> entry."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "findings" not in doc:
        raise AnalysisError("baseline must be an object with a 'findings' list")
    version = doc.get("version")
    if version != BASELINE_VERSION:
        raise AnalysisError(
            f"baseline version {version!r} is not supported "
            f"(expected {BASELINE_VERSION})"
        )
    out: Dict[str, Dict[str, object]] = {}
    for entry in doc["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise AnalysisError("baseline entry missing 'fingerprint'")
        rule_id = entry.get("rule_id", "")
        if rule_id and rule_id not in ANALYSIS_RULES:
            raise AnalysisError(f"baseline names unknown rule id {rule_id!r}")
        out[str(entry["fingerprint"])] = entry
    return out


def diff_baseline(
    findings: Sequence[AnalysisFinding],
    baseline: Dict[str, Dict[str, object]],
) -> BaselineDiff:
    """Split ``findings`` into new/known and find resolved entries."""
    new: List[AnalysisFinding] = []
    known: List[AnalysisFinding] = []
    seen: set = set()
    for finding in findings:
        fp = finding.fingerprint
        seen.add(fp)
        (known if fp in baseline else new).append(finding)
    resolved = [
        {str(k): str(v) for k, v in entry.items()}
        for fp, entry in sorted(baseline.items())
        if fp not in seen
    ]
    return BaselineDiff(new=new, resolved=resolved, known=known)
