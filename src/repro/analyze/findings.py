"""Finding model for the whole-program analyzer.

``repro-analyze`` findings mirror ``repro-lint``'s shape (path, line,
rule id, severity, message) and add two things the whole-program setting
needs:

* a **symbol** — the dotted program entity the finding is about (a
  handler pair, a stream name, a class) — so a finding survives the file
  being reformatted;
* a **fingerprint** — a stable hash of (rule, path, symbol, message)
  *excluding line numbers*, which is what the baseline ratchet keys on:
  moving code around does not churn ``analyze-baseline.json``; changing
  behaviour does.

This module is deliberately standalone (no imports from the rest of
``repro``) so ``repro.lint`` can import the rule registry without
creating an import cycle.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, NamedTuple


class RuleMeta(NamedTuple):
    """Catalogue entry for one finding id."""

    id: str
    name: str
    severity: str  # "error" | "warning"
    analysis: str  # which analysis emits it
    description: str


#: The finding-id catalogue.  A0xx — analyzer hygiene; A1xx — RNG-stream
#: flow; A2xx — policy/system/balancer contracts; A3xx — observer
#: purity; A4xx — hot-path performance; A5xx — units flow; A6xx —
#: fork safety; A001/A002 — event-flow.
ANALYSIS_RULES: Dict[str, RuleMeta] = {
    meta.id: meta
    for meta in (
        RuleMeta(
            "A000",
            "suppression-hygiene",
            "warning",
            "runner",
            "A repro-analyze pragma is unknown, misplaced, or stale — it "
            "names a finding that no longer fires on that line.  Stale "
            "suppressions silently mask the next real regression.",
        ),
        RuleMeta(
            "A001",
            "same-time-race",
            "warning",
            "eventflow",
            "Two schedule sites book events with equal constant delays "
            "(typically both immediate), and their handlers read/write "
            "overlapping state.  When both fire at the same simulated "
            "timestamp, only heap insertion order decides the outcome — "
            "a tie-break the code never states.  Make the ordering "
            "explicit (distinct delays, one combined handler, or a "
            "documented commutation) or suppress with justification.",
        ),
        RuleMeta(
            "A002",
            "absolute-time-race",
            "warning",
            "eventflow",
            "An absolute-time schedule site (call_at with an externally "
            "supplied time, e.g. a fault-plan timestamp) can land on the "
            "same instant as another handler that touches the same "
            "state.  Crash-vs-dispatch and recover-vs-complete ties are "
            "the canonical instances: behaviour is deterministic only by "
            "insertion order, which external data controls.",
        ),
        RuleMeta(
            "A101",
            "stream-foreign-prefix",
            "error",
            "rngflow",
            "A dotted RNG stream name ('faults.net') declares its owning "
            "subsystem in its prefix, but the stream is created in a "
            "different package.  The prefix convention is what keeps one "
            "subsystem's draws from perturbing another's; a mismatched "
            "creation site breaks the audit trail.",
        ),
        RuleMeta(
            "A102",
            "stream-escape",
            "error",
            "rngflow",
            "A subsystem-scoped RNG stream (dotted name) is passed into "
            "a function or constructor belonging to a different "
            "subsystem.  The receiving code's draw pattern now silently "
            "couples to the owning subsystem's seed schedule: adding one "
            "draw on either side perturbs both.",
        ),
        RuleMeta(
            "A103",
            "dynamic-stream-name",
            "warning",
            "rngflow",
            "An RNG stream is requested with a non-literal name, which "
            "defeats static stream-ownership tracking (and makes the "
            "stream registry's contents depend on runtime values).  Use "
            "a string literal, or a literal prefix plus a deterministic "
            "suffix built at one audited site.",
        ),
        RuleMeta(
            "A201",
            "missing-override",
            "error",
            "contracts",
            "A concrete Policy/System/Balancer subclass does not provide "
            "a required member of its contract (e.g. a Scheduler without "
            "on_request/on_worker_free or traits).  The gap surfaces at "
            "runtime as an abstract-instantiation error at best, or as "
            "silently inherited wrong behaviour at worst.",
        ),
        RuleMeta(
            "A202",
            "broken-super-chain",
            "error",
            "contracts",
            "An override of a chained contract method (__init__, "
            "on_worker_crash, on_worker_recover, attach_tracer) never "
            "calls super().  The base class maintains engine-side state "
            "in these methods (service-event registry, capacity "
            "bookkeeping, tracer forwarding); skipping the chain strands "
            "that state.",
        ),
        RuleMeta(
            "A203",
            "reserved-field-write",
            "error",
            "contracts",
            "Code outside the owning module writes an engine-owned field "
            "(EventLoop internals, Worker.current/failed/speed_factor, "
            "Scheduler wiring).  These fields have single designated "
            "writers; outside writes bypass the invariants the "
            "sanitizer checks and the accounting the recorder trusts.",
        ),
        RuleMeta(
            "A301",
            "observer-impurity",
            "error",
            "purity",
            "An observer module (repro/trace/, repro/telemetry/) calls a "
            "wall clock, host-entropy source, direct RNG constructor, or "
            "tracemalloc heap-tracking function.  Observers promise that "
            "attaching them cannot change a run and that their output is "
            "a pure function of simulated events; the self-profiler is "
            "the one sanctioned exception and must pragma-tag every such "
            "line so each impurity stays individually justified.",
        ),
        RuleMeta(
            "A401",
            "allocation-in-hot-loop",
            "warning",
            "hotpath",
            "A comprehension, sorted() call, collection literal, slice, "
            "or allocating builtin sits on the event-dispatch hot path "
            "(inside a loop of a reachable handler, or anywhere in one "
            "for comprehensions).  Each event pays an allocation and a "
            "garbage-collection debt; build the structure once outside "
            "the hot path or maintain it incrementally.",
        ),
        RuleMeta(
            "A402",
            "missing-slots-on-hot-path",
            "warning",
            "hotpath",
            "A class instantiated by hot-path code declares no __slots__ "
            "anywhere in its ancestry.  Every instance then carries a "
            "__dict__ (56+ bytes) and every attribute read is a hash "
            "probe instead of an index; at thousands of instances per "
            "simulated second this dominates allocator time.",
        ),
        RuleMeta(
            "A403",
            "repeated-attribute-lookup",
            "warning",
            "hotpath",
            "A depth->=2 attribute chain (self.x.y) is loaded repeatedly "
            "in one hot-path function with no intervening store.  Each "
            "load re-walks the chain through two dict probes; hoist the "
            "value to a local, or cache it at construction when the "
            "middle object never changes.",
        ),
        RuleMeta(
            "A404",
            "string-formatting-on-hot-path",
            "warning",
            "hotpath",
            "An f-string, str.format/%-formatting, print, or logging "
            "call executes per event on the hot path.  String building "
            "costs even when the output is discarded (and logging "
            "formats before the level check); error paths (raise/assert) "
            "are exempt.",
        ),
        RuleMeta(
            "A405",
            "exception-driven-control-flow",
            "warning",
            "hotpath",
            "A try/except around a single lookup catches only "
            "KeyError/IndexError/AttributeError/StopIteration on the hot "
            "path.  Setting up the handler is cheap but each *miss* "
            "costs an exception instance plus a traceback; dict.get or a "
            "membership precheck is both faster and clearer.",
        ),
        RuleMeta(
            "A406",
            "trivial-delegation-on-hot-path",
            "warning",
            "hotpath",
            "A hot-path function's entire body is `return other(args)` "
            "with pass-through arguments.  The indirection costs one "
            "Python call frame per event and buys nothing; inline the "
            "callee or bind the target directly where it is called.",
        ),
        RuleMeta(
            "A501",
            "unit-mixing-at-time-sink",
            "error",
            "unitsflow",
            "A value of the wrong unit — or one tainted by an ill-typed "
            "arithmetic mix (timestamp+timestamp, duration-timestamp, "
            "duration+rate) — reaches a time-typed parameter.  Virtual "
            "time is float microseconds everywhere; a unit slip here "
            "does not crash, it silently reschedules the simulation and "
            "corrupts every µs-scale figure downstream.",
        ),
        RuleMeta(
            "A502",
            "rate-duration-confusion",
            "error",
            "unitsflow",
            "A rate (req/µs) flows where a duration/timestamp is "
            "expected, or vice versa.  The two are reciprocals: at "
            "rate 0.5 the confusion books 0.5 µs gaps instead of 2 µs "
            "ones, quietly quadrupling offered load.",
        ),
        RuleMeta(
            "A503",
            "fraction-percent-confusion",
            "error",
            "unitsflow",
            "A percent-scale constant (85) or a unit-bearing value "
            "reaches a fraction parameter (utilization, probability, "
            "warmup share).  Fractions here are of 1.0; the cutoff is "
            "1.5 — matching the phase-validation cap — so deliberate "
            "overload fractions like 1.2 stay legal.",
        ),
        RuleMeta(
            "A504",
            "unclamped-subtraction-at-scheduler",
            "warning",
            "unitsflow",
            "A subtraction-derived time reaches a scheduling sink "
            "(call_at/call_after/schedule_service_event) without "
            "passing through a clamping max().  When the operands "
            "cross — an event fires later than assumed — the delay "
            "goes negative or the absolute time lands in the past, and "
            "the engine raises only at the instant the bug fires.",
        ),
        RuleMeta(
            "A505",
            "unitless-literal-at-time-site",
            "warning",
            "unitsflow",
            "A bare numeric literal of run-length scale (>= 0.1 "
            "simulated seconds) sits directly at a time-typed call "
            "site or parameter default.  Big raw literals are where "
            "dropped *US_PER_S conversions hide; name the constant "
            "via repro.sim.units so the unit is visible and checkable.",
        ),
        RuleMeta(
            "A601",
            "unpicklable-spawn-payload",
            "error",
            "forksafety",
            "A lambda or nested function is shipped as a worker target "
            "or buried in a spawn args payload.  Closures pickle under "
            "the fork start method by accident and fail under spawn — "
            "the sweep works on Linux and crashes on macOS/Windows CI. "
            "Worker entry points must be module top-level functions "
            "taking plain documents.",
        ),
        RuleMeta(
            "A602",
            "worker-reads-mutable-module-state",
            "warning",
            "forksafety",
            "Code reachable from a pool-worker entry point reads a "
            "module-level dict/list/set that is mutated at runtime. "
            "Spawned workers never see the parent's mutations and "
            "fork-inherited copies go stale; pass the state through "
            "the cell document, or make the table import-time-only. "
            "Import-time registration patterns are exempt — every "
            "process rebuilds those identically.",
        ),
        RuleMeta(
            "A603",
            "unprefixed-stream-in-fork-package",
            "error",
            "forksafety",
            "An RNG stream is acquired inside a fork-sensitive package "
            "(rack/sweep/faults) without its owning dotted prefix. "
            "Cross-process determinism audits trace draws by stream "
            "name; an unprefixed stream created on the worker side is "
            "invisible to the ownership checks that keep one "
            "subsystem's draws from perturbing another's.  The one "
            "sanctioned pattern — handing a workload-shared stream "
            "directly into a foreign constructor — is exempt.",
        ),
        RuleMeta(
            "A604",
            "checkpoint-write-outside-store",
            "error",
            "forksafety",
            "A raw open(..., 'w')/os.replace write occurs in the sweep "
            "package outside checkpoint.py, or a checkpoint-store path "
            "(plan_path/manifest_path/merged_path/cells_dir) is "
            "written anywhere outside the single-writer store.  Every "
            "resumable byte must go through write_json_atomic so a "
            "crash mid-write cannot corrupt a sweep.",
        ),
    )
}


class AnalysisFinding(NamedTuple):
    """One whole-program finding, after suppression filtering."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    #: Dotted program entity the finding is about (stable across moves).
    symbol: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.severity}] {self.message}"
        )

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule_id, self.path, self.symbol, self.message)


_WS = re.compile(r"\s+")


def _anchor_path(path: str) -> str:
    """Normalize a path for fingerprinting: forward slashes, anchored at
    the last ``repro`` component when present, so the same finding hashes
    identically whether the tree was scanned as ``src/repro`` or by an
    absolute installed-package path (``repro-analyze selfcheck``)."""
    normalized = path.replace("\\", "/")
    parts = normalized.split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return normalized


def fingerprint(rule_id: str, path: str, symbol: str, message: str) -> str:
    """Line-independent identity of a finding, for baseline ratcheting.

    When the finding names a symbol, the symbol *is* the identity —
    messages embed "scheduled at file:line" context that would churn the
    baseline on every unrelated edit above the site.  Symbol-less
    findings fall back to the whitespace-normalized message.
    """
    tail = symbol if symbol else _WS.sub(" ", message).strip()
    payload = "\x1f".join((rule_id, _anchor_path(path), symbol, tail))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def make_finding(
    rule_id: str, path: str, line: int, col: int, message: str, symbol: str = ""
) -> AnalysisFinding:
    """Construct a finding with the catalogue's severity for ``rule_id``."""
    meta = ANALYSIS_RULES[rule_id]
    return AnalysisFinding(path, line, col, rule_id, meta.severity, message, symbol)
