"""Finding model for the whole-program analyzer.

``repro-analyze`` findings mirror ``repro-lint``'s shape (path, line,
rule id, severity, message) and add two things the whole-program setting
needs:

* a **symbol** — the dotted program entity the finding is about (a
  handler pair, a stream name, a class) — so a finding survives the file
  being reformatted;
* a **fingerprint** — a stable hash of (rule, path, symbol, message)
  *excluding line numbers*, which is what the baseline ratchet keys on:
  moving code around does not churn ``analyze-baseline.json``; changing
  behaviour does.

This module is deliberately standalone (no imports from the rest of
``repro``) so ``repro.lint`` can import the rule registry without
creating an import cycle.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, NamedTuple


class RuleMeta(NamedTuple):
    """Catalogue entry for one finding id."""

    id: str
    name: str
    severity: str  # "error" | "warning"
    analysis: str  # which analysis emits it
    description: str


#: The finding-id catalogue.  A0xx — analyzer hygiene; A1xx — RNG-stream
#: flow; A2xx — policy/system/balancer contracts; A3xx — observer
#: purity; A4xx — hot-path performance; A001/A002 — event-flow.
ANALYSIS_RULES: Dict[str, RuleMeta] = {
    meta.id: meta
    for meta in (
        RuleMeta(
            "A000",
            "suppression-hygiene",
            "warning",
            "runner",
            "A repro-analyze pragma is unknown, misplaced, or stale — it "
            "names a finding that no longer fires on that line.  Stale "
            "suppressions silently mask the next real regression.",
        ),
        RuleMeta(
            "A001",
            "same-time-race",
            "warning",
            "eventflow",
            "Two schedule sites book events with equal constant delays "
            "(typically both immediate), and their handlers read/write "
            "overlapping state.  When both fire at the same simulated "
            "timestamp, only heap insertion order decides the outcome — "
            "a tie-break the code never states.  Make the ordering "
            "explicit (distinct delays, one combined handler, or a "
            "documented commutation) or suppress with justification.",
        ),
        RuleMeta(
            "A002",
            "absolute-time-race",
            "warning",
            "eventflow",
            "An absolute-time schedule site (call_at with an externally "
            "supplied time, e.g. a fault-plan timestamp) can land on the "
            "same instant as another handler that touches the same "
            "state.  Crash-vs-dispatch and recover-vs-complete ties are "
            "the canonical instances: behaviour is deterministic only by "
            "insertion order, which external data controls.",
        ),
        RuleMeta(
            "A101",
            "stream-foreign-prefix",
            "error",
            "rngflow",
            "A dotted RNG stream name ('faults.net') declares its owning "
            "subsystem in its prefix, but the stream is created in a "
            "different package.  The prefix convention is what keeps one "
            "subsystem's draws from perturbing another's; a mismatched "
            "creation site breaks the audit trail.",
        ),
        RuleMeta(
            "A102",
            "stream-escape",
            "error",
            "rngflow",
            "A subsystem-scoped RNG stream (dotted name) is passed into "
            "a function or constructor belonging to a different "
            "subsystem.  The receiving code's draw pattern now silently "
            "couples to the owning subsystem's seed schedule: adding one "
            "draw on either side perturbs both.",
        ),
        RuleMeta(
            "A103",
            "dynamic-stream-name",
            "warning",
            "rngflow",
            "An RNG stream is requested with a non-literal name, which "
            "defeats static stream-ownership tracking (and makes the "
            "stream registry's contents depend on runtime values).  Use "
            "a string literal, or a literal prefix plus a deterministic "
            "suffix built at one audited site.",
        ),
        RuleMeta(
            "A201",
            "missing-override",
            "error",
            "contracts",
            "A concrete Policy/System/Balancer subclass does not provide "
            "a required member of its contract (e.g. a Scheduler without "
            "on_request/on_worker_free or traits).  The gap surfaces at "
            "runtime as an abstract-instantiation error at best, or as "
            "silently inherited wrong behaviour at worst.",
        ),
        RuleMeta(
            "A202",
            "broken-super-chain",
            "error",
            "contracts",
            "An override of a chained contract method (__init__, "
            "on_worker_crash, on_worker_recover, attach_tracer) never "
            "calls super().  The base class maintains engine-side state "
            "in these methods (service-event registry, capacity "
            "bookkeeping, tracer forwarding); skipping the chain strands "
            "that state.",
        ),
        RuleMeta(
            "A203",
            "reserved-field-write",
            "error",
            "contracts",
            "Code outside the owning module writes an engine-owned field "
            "(EventLoop internals, Worker.current/failed/speed_factor, "
            "Scheduler wiring).  These fields have single designated "
            "writers; outside writes bypass the invariants the "
            "sanitizer checks and the accounting the recorder trusts.",
        ),
        RuleMeta(
            "A301",
            "observer-impurity",
            "error",
            "purity",
            "An observer module (repro/trace/, repro/telemetry/) calls a "
            "wall clock, host-entropy source, direct RNG constructor, or "
            "tracemalloc heap-tracking function.  Observers promise that "
            "attaching them cannot change a run and that their output is "
            "a pure function of simulated events; the self-profiler is "
            "the one sanctioned exception and must pragma-tag every such "
            "line so each impurity stays individually justified.",
        ),
        RuleMeta(
            "A401",
            "allocation-in-hot-loop",
            "warning",
            "hotpath",
            "A comprehension, sorted() call, collection literal, slice, "
            "or allocating builtin sits on the event-dispatch hot path "
            "(inside a loop of a reachable handler, or anywhere in one "
            "for comprehensions).  Each event pays an allocation and a "
            "garbage-collection debt; build the structure once outside "
            "the hot path or maintain it incrementally.",
        ),
        RuleMeta(
            "A402",
            "missing-slots-on-hot-path",
            "warning",
            "hotpath",
            "A class instantiated by hot-path code declares no __slots__ "
            "anywhere in its ancestry.  Every instance then carries a "
            "__dict__ (56+ bytes) and every attribute read is a hash "
            "probe instead of an index; at thousands of instances per "
            "simulated second this dominates allocator time.",
        ),
        RuleMeta(
            "A403",
            "repeated-attribute-lookup",
            "warning",
            "hotpath",
            "A depth->=2 attribute chain (self.x.y) is loaded repeatedly "
            "in one hot-path function with no intervening store.  Each "
            "load re-walks the chain through two dict probes; hoist the "
            "value to a local, or cache it at construction when the "
            "middle object never changes.",
        ),
        RuleMeta(
            "A404",
            "string-formatting-on-hot-path",
            "warning",
            "hotpath",
            "An f-string, str.format/%-formatting, print, or logging "
            "call executes per event on the hot path.  String building "
            "costs even when the output is discarded (and logging "
            "formats before the level check); error paths (raise/assert) "
            "are exempt.",
        ),
        RuleMeta(
            "A405",
            "exception-driven-control-flow",
            "warning",
            "hotpath",
            "A try/except around a single lookup catches only "
            "KeyError/IndexError/AttributeError/StopIteration on the hot "
            "path.  Setting up the handler is cheap but each *miss* "
            "costs an exception instance plus a traceback; dict.get or a "
            "membership precheck is both faster and clearer.",
        ),
        RuleMeta(
            "A406",
            "trivial-delegation-on-hot-path",
            "warning",
            "hotpath",
            "A hot-path function's entire body is `return other(args)` "
            "with pass-through arguments.  The indirection costs one "
            "Python call frame per event and buys nothing; inline the "
            "callee or bind the target directly where it is called.",
        ),
    )
}


class AnalysisFinding(NamedTuple):
    """One whole-program finding, after suppression filtering."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    #: Dotted program entity the finding is about (stable across moves).
    symbol: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} "
            f"[{self.severity}] {self.message}"
        )

    @property
    def fingerprint(self) -> str:
        return fingerprint(self.rule_id, self.path, self.symbol, self.message)


_WS = re.compile(r"\s+")


def _anchor_path(path: str) -> str:
    """Normalize a path for fingerprinting: forward slashes, anchored at
    the last ``repro`` component when present, so the same finding hashes
    identically whether the tree was scanned as ``src/repro`` or by an
    absolute installed-package path (``repro-analyze selfcheck``)."""
    normalized = path.replace("\\", "/")
    parts = normalized.split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[idx:])
    return normalized


def fingerprint(rule_id: str, path: str, symbol: str, message: str) -> str:
    """Line-independent identity of a finding, for baseline ratcheting.

    When the finding names a symbol, the symbol *is* the identity —
    messages embed "scheduled at file:line" context that would churn the
    baseline on every unrelated edit above the site.  Symbol-less
    findings fall back to the whitespace-normalized message.
    """
    tail = symbol if symbol else _WS.sub(" ", message).strip()
    payload = "\x1f".join((rule_id, _anchor_path(path), symbol, tail))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


def make_finding(
    rule_id: str, path: str, line: int, col: int, message: str, symbol: str = ""
) -> AnalysisFinding:
    """Construct a finding with the catalogue's severity for ``rule_id``."""
    meta = ANALYSIS_RULES[rule_id]
    return AnalysisFinding(path, line, col, rule_id, meta.severity, message, symbol)
