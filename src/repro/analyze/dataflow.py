"""Unit/taint dataflow engine: abstract values, transfer functions, summaries.

The entire reproduction rests on one implicit convention — simulated
time is a ``float`` in **microseconds** — and on a handful of sibling
conventions (rates are requests *per* microsecond, utilizations are
fractions of 1.0, byte counts are bytes).  None of them is visible to
the type system: a ``* 1e6`` dropped from a phase schedule, a rate
passed where a delay was expected, or an ``85`` handed to a utilization
knob produces *plausible* numbers, not crashes — and in a simulator
whose findings are µs-scale tail latencies, plausible-but-wrong numbers
are indistinguishable from results.

This module gives the analyzer a small abstract domain to check those
conventions mechanically:

* an **abstract value lattice** (:class:`AbstractValue`) of
  ``Duration_us | Timestamp_us | Rate_per_us | Fraction | Bytes``
  plus ``Scalar`` (dimensionless), ``Top`` (unknown) and
  ``Tainted(source)`` — the result of an ill-typed operation, carrying
  a human-readable description of where it went wrong;
* **transfer functions** (:func:`transfer_binop`) encoding the unit
  algebra: ``Timestamp - Timestamp = Duration``,
  ``Fraction * Rate = Rate``, ``Scalar / Rate = Duration``,
  ``Timestamp + Timestamp = Tainted``, ...  A ``Duration`` silently
  coerces *to* a ``Timestamp`` (simulations start at t=0, so
  "time since start" is a legitimate absolute time) but never the other
  way around — scheduling a delay of ``loop.now`` magnitude is the
  classic unit bug;
* a declarative **annotation map** (:data:`ANNOTATIONS`) seeding the
  units of known engine APIs (``EventLoop.call_at/call_after``,
  ``schedule_service_event``, arrival processes, phase builders,
  ``QueueViews`` staleness, telemetry bucket bounds, fault-plan
  times), extended by **name heuristics** (:func:`unit_for_name`) for
  the ``*_us`` / ``utilization`` / ``rate`` naming conventions the
  code base already follows;
* an **intraprocedural analysis** (:class:`FunctionAnalysis`)
  computing def-use unit environments per function (iterated to a
  small fixpoint so loop-carried assignments converge), and
* **interprocedural function summaries** (:func:`compute_summaries`):
  parameter units from annotations + names, return units propagated
  through the call graph to convergence — recursion and cycles join
  toward ``Top`` rather than diverging, since the lattice has finite
  height and joins are monotone.

The engine itself emits no findings; :mod:`repro.analyze.unitsflow`
(A501–A505) and :mod:`repro.analyze.forksafety` (A601–A604) consume the
environments and summaries it computes.  It is deliberately
conservative: anything it cannot prove a unit for is ``Top``, and
``Top`` never participates in a finding — the analyzer under-reports
instead of guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from .model import FunctionInfo, Program

# ----------------------------------------------------------------------
# the lattice
# ----------------------------------------------------------------------
DURATION = "Duration_us"
TIMESTAMP = "Timestamp_us"
RATE = "Rate_per_us"
FRACTION = "Fraction"
BYTES = "Bytes"
SCALAR = "Scalar"
TAINTED = "Tainted"
TOP = "Top"

#: The concrete (unit-bearing) kinds — everything a sink can expect.
UNIT_KINDS = (DURATION, TIMESTAMP, RATE, FRACTION, BYTES)

#: Kinds a time-typed sink accepts (`Duration` coerces to `Timestamp`).
TIME_KINDS = (DURATION, TIMESTAMP)


class AbstractValue(NamedTuple):
    """One point in the unit lattice.

    ``taint`` is set only when ``kind == TAINTED`` and describes the
    originating ill-typed operation; ``literal`` carries the numeric
    value of constant expressions (for the fraction/percent and
    magnitude checks) and survives scalar arithmetic only trivially —
    it is bookkeeping, not an interval analysis.  ``from_sub`` marks
    values derived from a time-typed subtraction that has not passed
    through a clamping ``max(...)``; the negative-delay rule keys on it.
    """

    kind: str
    taint: str = ""
    literal: Optional[float] = None
    from_sub: bool = False

    def widen(self) -> "AbstractValue":
        """Drop bookkeeping that must not survive a join."""
        return AbstractValue(self.kind, self.taint)


VAL_TOP = AbstractValue(TOP)
VAL_SCALAR = AbstractValue(SCALAR)


def make_tainted(source: str) -> AbstractValue:
    return AbstractValue(TAINTED, taint=source)


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound.  Taint is sticky; differing units go to Top
    (conservative: a branch-dependent unit is not a finding)."""
    if a.kind == TAINTED:
        return a.widen()
    if b.kind == TAINTED:
        return b.widen()
    if a.kind == b.kind:
        literal = a.literal if a.literal == b.literal else None
        return AbstractValue(a.kind, "", literal, a.from_sub or b.from_sub)
    if a.kind == SCALAR:
        return AbstractValue(b.kind, "", None, a.from_sub or b.from_sub)
    if b.kind == SCALAR:
        return AbstractValue(a.kind, "", None, a.from_sub or b.from_sub)
    # Duration/Timestamp join to Timestamp (the coercion direction).
    if {a.kind, b.kind} == {DURATION, TIMESTAMP}:
        return AbstractValue(TIMESTAMP, "", None, a.from_sub or b.from_sub)
    return VAL_TOP


def join_all(values: Sequence[AbstractValue]) -> AbstractValue:
    out = VAL_TOP if not values else values[0]
    for value in values[1:]:
        out = join(out, value)
    return out


# ----------------------------------------------------------------------
# transfer functions
# ----------------------------------------------------------------------
#: (left kind, right kind) -> result kind for ``+``; None means tainted.
#: The table is consulted symmetrically except where order matters.
_ADD: Dict[Tuple[str, str], Optional[str]] = {
    (DURATION, DURATION): DURATION,
    (TIMESTAMP, DURATION): TIMESTAMP,
    (DURATION, TIMESTAMP): TIMESTAMP,
    (TIMESTAMP, TIMESTAMP): None,  # adding two absolute times is always wrong
    (RATE, RATE): RATE,
    (FRACTION, FRACTION): FRACTION,
    (BYTES, BYTES): BYTES,
}

_SUB: Dict[Tuple[str, str], Optional[str]] = {
    (DURATION, DURATION): DURATION,
    (TIMESTAMP, TIMESTAMP): DURATION,  # elapsed time — the key identity
    (TIMESTAMP, DURATION): TIMESTAMP,
    (DURATION, TIMESTAMP): None,  # a duration minus an absolute time
    (RATE, RATE): RATE,
    (FRACTION, FRACTION): FRACTION,
    (BYTES, BYTES): BYTES,
}

_MUL: Dict[Tuple[str, str], str] = {
    (RATE, DURATION): SCALAR,  # rate x time = a count
    (DURATION, RATE): SCALAR,
}

_DIV: Dict[Tuple[str, str], str] = {
    (DURATION, DURATION): FRACTION,
    (BYTES, BYTES): FRACTION,
    (RATE, RATE): FRACTION,
    (SCALAR, RATE): DURATION,  # n_requests / rate = expected duration
    (SCALAR, DURATION): RATE,  # n per elapsed = a rate
    (BYTES, DURATION): TOP,  # throughput; no kind for it, stay silent
}


def _describe(op: str, left: AbstractValue, right: AbstractValue) -> str:
    return f"{left.kind} {op} {right.kind}"


def transfer_binop(
    op: ast.operator, left: AbstractValue, right: AbstractValue
) -> AbstractValue:
    """The unit algebra for one binary operation."""
    if left.kind == TAINTED:
        return left.widen()
    if right.kind == TAINTED:
        return right.widen()
    if left.kind == TOP or right.kind == TOP:
        return VAL_TOP
    lk, rk = left.kind, right.kind
    if isinstance(op, (ast.Add, ast.Sub)):
        table = _ADD if isinstance(op, ast.Add) else _SUB
        symbol = "+" if isinstance(op, ast.Add) else "-"
        if lk == SCALAR and rk == SCALAR:
            return VAL_SCALAR
        # A unit-less addend adopts the other side's unit ("+ 5" means
        # five of whatever the other operand is).
        if lk == SCALAR:
            return AbstractValue(rk)
        if rk == SCALAR:
            return AbstractValue(lk)
        result = table.get((lk, rk), "missing")
        if result == "missing":
            return make_tainted(_describe(symbol, left, right))
        if result is None:
            return make_tainted(_describe(symbol, left, right))
        from_sub = isinstance(op, ast.Sub) and result in TIME_KINDS
        return AbstractValue(result, "", None, from_sub)
    if isinstance(op, ast.Mult):
        for a, b in ((lk, rk), (rk, lk)):
            if (a, b) in _MUL:
                return AbstractValue(_MUL[(a, b)])
        if lk == SCALAR:
            return AbstractValue(rk, "", None, right.from_sub)
        if rk == SCALAR:
            return AbstractValue(lk, "", None, left.from_sub)
        if FRACTION in (lk, rk):
            other = rk if lk == FRACTION else lk
            return AbstractValue(other)
        # Squared durations etc. appear in legitimate queueing math
        # (E[S^2]); unknown products are Top, not findings.
        return VAL_TOP
    if isinstance(op, ast.Div):
        result = _DIV.get((lk, rk))
        if result is not None:
            return AbstractValue(result)
        if rk == SCALAR or rk == FRACTION:
            return AbstractValue(lk, "", None, left.from_sub)
        return VAL_TOP
    if isinstance(op, (ast.FloorDiv, ast.Mod, ast.Pow)):
        return VAL_TOP
    return VAL_TOP


# ----------------------------------------------------------------------
# the annotation map
# ----------------------------------------------------------------------
class Annotation(NamedTuple):
    """Declared units of one known callable.

    ``params`` maps parameter *names* to unit kinds; ``positional``
    maps 0-based positions (not counting an implicit ``self``) for call
    sites that pass positionally to callees we cannot resolve a
    signature for.  ``returns`` is the call's result unit.  ``sink``
    marks scheduling entry points for the negative-delay rule.
    """

    params: Mapping[str, str] = {}
    positional: Mapping[int, str] = {}
    returns: str = TOP
    sink: bool = False


#: Known engine APIs, keyed by terminal callable name.  Matching by
#: terminal name (``loop.call_after`` -> ``call_after``) is deliberate:
#: these names are distinctive, and receivers are usually attributes the
#: static model cannot type.  An entry applies to *every* call site with
#: that terminal name, so only unambiguous names belong here.
ANNOTATIONS: Dict[str, Annotation] = {
    # -- the event loop -------------------------------------------------
    "call_at": Annotation(
        params={"time": TIMESTAMP}, positional={0: TIMESTAMP}, sink=True
    ),
    "call_after": Annotation(
        params={"delay": DURATION}, positional={0: DURATION}, sink=True
    ),
    "schedule_service_event": Annotation(
        params={"delay": DURATION}, positional={1: DURATION}, sink=True
    ),
    # -- workload: arrival processes and generators --------------------
    "PoissonArrivals": Annotation(params={"rate": RATE}, positional={0: RATE}),
    "DeterministicArrivals": Annotation(params={"rate": RATE}, positional={0: RATE}),
    "MarkovBurstArrivals": Annotation(params={"rate": RATE}, positional={0: RATE}),
    "set_rate": Annotation(params={"rate": RATE}, positional={0: RATE}),
    "peak_load": Annotation(returns=RATE),
    "offered_rate": Annotation(returns=RATE),
    # -- phased load ----------------------------------------------------
    "Phase": Annotation(
        params={"duration_us": DURATION, "utilization": FRACTION},
        positional={1: DURATION, 2: FRACTION},
    ),
    "diurnal_phases": Annotation(
        params={
            "base_utilization": FRACTION,
            "peak_utilization": FRACTION,
            "total_duration_us": DURATION,
        }
    ),
    "flash_crowd_phases": Annotation(
        params={
            "base_utilization": FRACTION,
            "spike_utilization": FRACTION,
            "base_duration_us": DURATION,
            "spike_duration_us": DURATION,
        }
    ),
    # -- rack views / fault plans --------------------------------------
    "QueueViews": Annotation(params={"staleness_us": DURATION}),
    "crash_recover": Annotation(
        params={"crash_at": TIMESTAMP, "recover_at": TIMESTAMP}
    ),
    "WorkerCrash": Annotation(params={"at": TIMESTAMP}, positional={0: TIMESTAMP}),
    "WorkerRecover": Annotation(params={"at": TIMESTAMP}, positional={0: TIMESTAMP}),
    "WorkerSlowdown": Annotation(
        params={"at": TIMESTAMP, "until": TIMESTAMP}, positional={0: TIMESTAMP}
    ),
    "PacketDrop": Annotation(
        params={"at": TIMESTAMP, "until": TIMESTAMP, "probability": FRACTION},
        positional={0: TIMESTAMP, 1: TIMESTAMP},
    ),
    "PacketDup": Annotation(
        params={"at": TIMESTAMP, "until": TIMESTAMP, "probability": FRACTION},
        positional={0: TIMESTAMP, 1: TIMESTAMP},
    ),
    # -- telemetry ------------------------------------------------------
    "log_spaced_bounds": Annotation(
        params={"lo_exp": SCALAR, "hi_exp": SCALAR, "per_decade": SCALAR}
    ),
    "WindowedStats": Annotation(params={"window_us": DURATION}, positional={0: DURATION}),
    # -- unit helpers (repro.sim.units): conversions return durations --
    "seconds": Annotation(returns=DURATION),
    "milliseconds": Annotation(returns=DURATION),
    "nanoseconds": Annotation(returns=DURATION),
    "cycles_to_us": Annotation(returns=DURATION),
    "mrps_to_per_us": Annotation(returns=RATE),
    "krps_to_per_us": Annotation(returns=RATE),
}

#: Attribute loads whose terminal name alone implies a unit.  ``.now``
#: is the event loop's clock; the ``*_us`` attributes mirror the
#: parameter naming convention.
_TIMESTAMP_NAMES = frozenset(
    {
        "now",
        "at",
        "until",
        "deadline",
        "crash_at",
        "recover_at",
        "sched_at",
        "dispatch_time",
        "arrival_time",
        "start_time",
    }
)
_FRACTION_NAMES = frozenset(
    {
        "utilization",
        "probability",
        "fraction",
        "ratio",
        "share",
        "base_utilization",
        "peak_utilization",
        "spike_utilization",
        "jitter_frac",
        "warmup_frac",
        "speed_factor",
    }
)
_RATE_NAMES = frozenset({"rate", "arrival_rate", "offered_rate", "peak_rate"})
_TIMESTAMP_US_HEADS = ("at_", "time_", "t_", "deadline_", "start_", "end_", "now_")


def unit_for_name(name: str) -> str:
    """The unit the code base's naming convention implies, or Top.

    ``*_us`` names are durations (``staleness_us``, ``window_us``)
    unless the head names a point in time (``at_us``, ``start_us``);
    the exact-name tables cover the time/fraction/rate vocabulary.
    """
    if name in _TIMESTAMP_NAMES:
        return TIMESTAMP
    if name in _FRACTION_NAMES:
        return FRACTION
    if name in _RATE_NAMES:
        return RATE
    if name.endswith("_bytes") or name == "bytes":
        return BYTES
    if name.endswith("_us"):
        head = name[: -len("us")]
        if any(head.startswith(h) or head == h.rstrip("_") + "_" for h in _TIMESTAMP_US_HEADS):
            return TIMESTAMP
        return DURATION
    return TOP


# ----------------------------------------------------------------------
# function summaries
# ----------------------------------------------------------------------
class FunctionSummary(NamedTuple):
    """Interprocedural interface of one function: what units its
    parameters expect and what unit it returns."""

    key: str
    #: parameter name -> unit kind (Top entries omitted).
    param_units: Mapping[str, str]
    #: 0-based positional index (self excluded) -> unit kind.
    positional_units: Mapping[int, str]
    return_unit: str

    def expected_for(
        self, index: Optional[int], keyword: Optional[str]
    ) -> Optional[str]:
        """The expected unit of one argument, or None when unconstrained."""
        if keyword is not None:
            unit = self.param_units.get(keyword)
        elif index is not None:
            unit = self.positional_units.get(index)
        else:  # pragma: no cover - callers always pass one of the two
            unit = None
        if unit in (None, TOP, SCALAR):
            return None
        return unit


def _param_names(fn: FunctionInfo) -> List[str]:
    """Positional parameter names, ``self``/``cls`` excluded."""
    args = fn.node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if fn.class_key is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


def summary_from_signature(fn: FunctionInfo) -> FunctionSummary:
    """The name-heuristic summary (before return-unit propagation)."""
    params: Dict[str, str] = {}
    positional: Dict[int, str] = {}
    names = _param_names(fn)
    kwonly = [a.arg for a in fn.node.args.kwonlyargs]
    for index, name in enumerate(names):
        unit = unit_for_name(name)
        if unit != TOP:
            params[name] = unit
            positional[index] = unit
    for name in kwonly:
        unit = unit_for_name(name)
        if unit != TOP:
            params[name] = unit
    return FunctionSummary(fn.key, params, positional, TOP)


class DataflowResult(NamedTuple):
    """The engine's full output over one program."""

    summaries: Dict[str, FunctionSummary]
    #: How many propagation passes return units took to converge.
    passes: int


def resolve_annotation(
    program: Program, fn: FunctionInfo, call: ast.Call
) -> Optional[Annotation]:
    """The declared units of ``call``'s callee: the annotation map by
    terminal name first, else the callee's name-heuristic summary."""
    func = call.func
    terminal: Optional[str] = None
    if isinstance(func, ast.Attribute):
        terminal = func.attr
    elif isinstance(func, ast.Name):
        terminal = func.id
    if terminal is not None and terminal in ANNOTATIONS:
        return ANNOTATIONS[terminal]
    return None


def resolve_summary(
    program: Program,
    summaries: Mapping[str, FunctionSummary],
    fn: FunctionInfo,
    call: ast.Call,
) -> Optional[FunctionSummary]:
    resolved = program.resolve_call(fn, call)
    if resolved is None:
        # A constructor whose class we know but whose __init__ is
        # inherited/implicit has no FunctionInfo; nothing to say.
        return None
    return summaries.get(resolved.key)


# ----------------------------------------------------------------------
# intraprocedural analysis
# ----------------------------------------------------------------------
#: Builtins that pass their argument's unit through unchanged.
_PASSTHROUGH_CALLS = frozenset({"float", "int", "abs", "round"})
#: Builtins whose result is the join of their arguments' units — and
#: which clamp, clearing the subtraction-derived flag.
_CLAMP_CALLS = frozenset({"max", "min"})

_ITERATIONS = 3  # loop-carried unit assignments converge fast; 3 is a bound


class FunctionAnalysis:
    """One function's def-use unit environment.

    The analysis is a small abstract interpretation over the statement
    list, iterated :data:`_ITERATIONS` times so units assigned late in a
    loop body reach uses earlier in it.  Branches are not split —
    assignments from all paths join — which is exactly the conservatism
    the finding rules want.
    """

    def __init__(
        self,
        program: Program,
        fn: FunctionInfo,
        summaries: Mapping[str, FunctionSummary],
    ):
        self.program = program
        self.fn = fn
        self.summaries = summaries
        self.env: Dict[str, AbstractValue] = {}
        #: id(BinOp node) -> taint description, for sites that mixed units.
        self.taint_sites: Dict[int, str] = {}
        self._seed_params()
        for _ in range(_ITERATIONS):
            changed = self._pass()
            if not changed:
                break

    # -- environment construction --------------------------------------
    def _seed_params(self) -> None:
        summary = self.summaries.get(self.fn.key)
        args = self.fn.node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in all_args:
            unit = TOP
            if summary is not None:
                unit = summary.param_units.get(arg.arg, TOP)
            if unit == TOP:
                unit = unit_for_name(arg.arg)
            if unit != TOP:
                self.env[arg.arg] = AbstractValue(unit)

    def _pass(self) -> bool:
        changed = False
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    changed |= self._bind(target.id, self.eval(node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    changed |= self._bind(node.target.id, self.eval(node.value))
            elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
                current = self.env.get(node.target.id, VAL_TOP)
                result = transfer_binop(node.op, current, self.eval(node.value))
                if result.kind == TAINTED and id(node) not in self.taint_sites:
                    self.taint_sites[id(node)] = result.taint
                changed |= self._bind(node.target.id, result)
        return changed

    def _bind(self, name: str, value: AbstractValue) -> bool:
        current = self.env.get(name)
        if current is None:
            if value.kind == TOP:
                return False
            self.env[name] = value
            return True
        merged = join(current, value)
        # Preserve site bookkeeping when the kind is stable.
        if merged.kind == value.kind:
            merged = value
        if merged != current:
            self.env[name] = merged
            return True
        return False

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.AST) -> AbstractValue:
        """The abstract value of one expression under the current env."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return VAL_TOP
            return AbstractValue(SCALAR, literal=float(node.value))
        if isinstance(node, ast.Name):
            value = self.env.get(node.id)
            if value is not None:
                return value
            unit = unit_for_name(node.id)
            return AbstractValue(unit) if unit != TOP else VAL_TOP
        if isinstance(node, ast.Attribute):
            attr = node.attr
            unit = unit_for_name(attr)
            if unit != TOP:
                return AbstractValue(unit)
            return VAL_TOP
        if isinstance(node, ast.BinOp):
            result = transfer_binop(
                node.op, self.eval(node.left), self.eval(node.right)
            )
            if result.kind == TAINTED and id(node) not in self.taint_sites:
                self.taint_sites[id(node)] = result.taint
            return result
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Starred):
            return VAL_TOP
        return VAL_TOP

    def _eval_call(self, node: ast.Call) -> AbstractValue:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _PASSTHROUGH_CALLS and node.args:
                inner = self.eval(node.args[0])
                # int()/float() of a literal keeps the literal.
                return inner
            if name in _CLAMP_CALLS and node.args:
                joined = join_all([self.eval(arg) for arg in node.args])
                # max(0.0, x - y) is the sanctioned clamp: the result
                # can no longer be negative, so drop the marker.
                return AbstractValue(joined.kind, joined.taint)
        annotation = resolve_annotation(self.program, self.fn, node)
        if annotation is not None and annotation.returns != TOP:
            return AbstractValue(annotation.returns)
        summary = resolve_summary(self.program, self.summaries, self.fn, node)
        if summary is not None and summary.return_unit not in (TOP, SCALAR):
            return AbstractValue(summary.return_unit)
        return VAL_TOP

    def return_unit(self) -> str:
        """Join of every ``return`` expression's kind (Top when none)."""
        values: List[AbstractValue] = []
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                values.append(self.eval(node.value))
        if not values:
            return TOP
        joined = join_all(values)
        if joined.kind in (TAINTED,):
            return TOP
        return joined.kind


# ----------------------------------------------------------------------
# interprocedural fixpoint
# ----------------------------------------------------------------------
_MAX_PASSES = 8


def compute_summaries(program: Program) -> DataflowResult:
    """Build every function's summary, propagating return units through
    the call graph until nothing changes.

    Convergence is guaranteed: each pass can only move a function's
    return unit between members of a finite lattice via a monotone join
    through :class:`FunctionAnalysis`, and the pass count is bounded by
    :data:`_MAX_PASSES` as a belt-and-braces guard (recursive cycles
    stabilize at Top or at a consistent unit within two passes).
    """
    summaries: Dict[str, FunctionSummary] = {}
    for fn in program.iter_functions():
        summaries[fn.key] = summary_from_signature(fn)
    passes = 0
    for _ in range(_MAX_PASSES):
        passes += 1
        changed = False
        for fn in program.iter_functions():
            analysis = FunctionAnalysis(program, fn, summaries)
            new_return = analysis.return_unit()
            current = summaries[fn.key]
            if new_return != current.return_unit and new_return != TOP:
                summaries[fn.key] = current._replace(return_unit=new_return)
                changed = True
        if not changed:
            break
    return DataflowResult(summaries=summaries, passes=passes)


def analyze_function(
    program: Program,
    fn: FunctionInfo,
    summaries: Mapping[str, FunctionSummary],
) -> FunctionAnalysis:
    """One function's converged intraprocedural analysis (public entry
    point for the rule modules)."""
    return FunctionAnalysis(program, fn, summaries)
