"""Analysis driver: build the program, run analyses, honour pragmas.

Mirrors :mod:`repro.lint.runner` one level up: where the linter loops
*rules over one file*, this runner loops *whole-program analyses over
one file set*.  Suppression comments use the shared pragma grammar with
the ``repro-analyze`` token; unknown-id and misplaced pragmas are not
fatal here (the tree under analysis may be broken in exactly the ways
we are reporting) — they surface as A000 findings instead, as do stale
pragmas that absorb no finding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import AnalysisError
from ..lint.pragmas import PragmaSuppressions
from ..lint.runner import iter_python_files
from .contracts import analyze_contracts
from .eventflow import analyze_eventflow
from .findings import ANALYSIS_RULES, AnalysisFinding, make_finding
from .forksafety import analyze_forksafety
from .hotpath import analyze_hotpath
from .model import Program, build_program
from .purity import analyze_purity
from .rngflow import analyze_rngflow
from .unitsflow import analyze_unitsflow

#: analysis name -> callable; ``--select`` filters on rule ids, not on
#: these names, but running only the analyses that can produce selected
#: ids keeps big scans cheap.
ANALYSES = {
    "eventflow": analyze_eventflow,
    "rngflow": analyze_rngflow,
    "contracts": analyze_contracts,
    "purity": analyze_purity,
    "hotpath": analyze_hotpath,
    "unitsflow": analyze_unitsflow,
    "forksafety": analyze_forksafety,
}


def _selected_rule_ids(select: Optional[Sequence[str]]) -> List[str]:
    if select is None:
        return list(ANALYSIS_RULES)
    out: List[str] = []
    for rule_id in select:
        rid = rule_id.upper()
        if rid not in ANALYSIS_RULES:
            raise AnalysisError(f"unknown analysis rule id {rule_id!r}")
        out.append(rid)
    return out


def analyze_program(
    program: Program, select: Optional[Sequence[str]] = None
) -> List[AnalysisFinding]:
    """Run every (selected) analysis over an already-built program.

    Pragma suppression happens here so in-memory callers (tests) get the
    same semantics as the CLI.
    """
    selected = set(_selected_rule_ids(select))
    raw: List[AnalysisFinding] = []
    for name, analysis in ANALYSES.items():
        produces = {
            rid for rid, meta in ANALYSIS_RULES.items() if meta.analysis == name
        }
        if produces & selected:
            raw.extend(f for f in analysis(program) if f.rule_id in selected)

    # Per-file pragma pass: absorb suppressed findings, then report
    # pragma problems (unknown ids, misplaced disable-file, staleness)
    # as A000 on the file they live in.
    by_path: Dict[str, List[AnalysisFinding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)

    known_ids = list(ANALYSIS_RULES)
    kept: List[AnalysisFinding] = []
    for module in program.modules.values():
        path = module.path
        pragmas = PragmaSuppressions(
            module.source, "repro-analyze", known_ids, on_unknown="collect"
        )
        for finding in by_path.pop(path, []):
            if not pragmas.is_suppressed(finding.line, finding.rule_id):
                kept.append(finding)
        if "A000" not in selected:
            continue
        for error in pragmas.errors:
            kept.append(
                make_finding(
                    "A000",
                    path,
                    error.line,
                    0,
                    error.message,
                    symbol=f"{module.name}:pragma",
                )
            )
        for line, rule_id in pragmas.unused(sorted(selected)):
            if rule_id == "A000":
                continue  # suppressing the hygiene checker is self-justifying
            anchor = 1 if line == 0 else line
            if pragmas.is_suppressed(anchor, "A000"):
                continue
            where = "file-wide pragma" if line == 0 else "pragma"
            kept.append(
                make_finding(
                    "A000",
                    path,
                    anchor,
                    0,
                    f"stale suppression: {where} disables "
                    f"{'every rule' if rule_id == 'ALL' else rule_id} but no "
                    "such finding fires; remove it",
                    symbol=f"{module.name}:stale:{rule_id}",
                )
            )
    # Findings on paths not in the program (cannot happen unless an
    # analysis mislabels a path) are kept rather than dropped.
    for leftovers in by_path.values():
        kept.extend(leftovers)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return kept


def analyze_paths(
    paths: Iterable[str],
    select: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
) -> List[AnalysisFinding]:
    """Build a program from files/directories and analyze it."""
    files = iter_python_files(paths)
    if not files:
        raise AnalysisError("no Python files to analyze")
    program = build_program(files, root=root)
    return analyze_program(program, select=select)


def has_errors(findings: Sequence[AnalysisFinding], strict: bool = False) -> bool:
    """True when the findings should fail the run (errors always;
    warnings only under ``strict``)."""
    if strict:
        return bool(findings)
    return any(f.severity == "error" for f in findings)
