"""Units-flow analysis (findings A501–A505).

Consumes the abstract-value environments and function summaries from
:mod:`repro.analyze.dataflow` and checks every call site (and parameter
default) against the units its callee declares — via the engine-API
annotation map for known entry points, and via name-heuristic summaries
for in-program callees.

Five findings:

* **A501** — a value of the wrong unit (or one tainted by an ill-typed
  arithmetic mix) reaches a time-typed parameter.  ``Duration`` and
  ``Timestamp`` are mutually accepted at sinks: simulations anchor at
  t=0, so "time since start" is both an absolute time and the run's
  elapsed duration (``RunSummary(duration_us=loop.now)`` is the
  pervasive sound idiom).  The *arithmetic* rules stay asymmetric —
  ``duration - timestamp`` and ``timestamp + timestamp`` still taint.
* **A502** — a rate flows where a duration/timestamp is expected, or
  vice versa.  The classic instance: passing ``rate`` where the
  inter-arrival ``gap`` (its reciprocal) belongs.
* **A503** — a percent-scale constant (``85``) or unit-bearing value
  reaches a fraction parameter (utilization, probability).  The cutoff
  is 1.5, matching ``Phase``'s own validation cap, so deliberate
  overload fractions like 1.2 stay legal.
* **A504** — a subtraction-derived time value reaches a scheduling
  sink without passing through a clamping ``max(...)``.  ``a - b`` of
  two timestamps can be negative whenever event order is not what the
  author assumed, and ``call_after`` raises on negative delays only at
  the instant the bug fires.
* **A505** — a bare numeric literal of at least :data:`LITERAL_FLOOR`
  microseconds (0.1 simulated seconds) sits directly at a time-typed
  call site or parameter default.  Big raw literals are where dropped
  ``* US_PER_S`` conversions hide; name the constant
  (:mod:`repro.sim.units`) and the intent becomes checkable.

All five are conservative by construction: ``Top`` (unknown unit) never
fires anything, so the pass under-reports rather than guessing.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .dataflow import (
    BYTES,
    DURATION,
    FRACTION,
    RATE,
    SCALAR,
    TAINTED,
    TIMESTAMP,
    TIME_KINDS,
    TOP,
    FunctionAnalysis,
    analyze_function,
    compute_summaries,
    resolve_annotation,
    resolve_summary,
)
from .findings import AnalysisFinding, make_finding
from .model import FunctionInfo, Program

#: Smallest bare literal (µs) that triggers A505 — 0.1 simulated
#: seconds.  Small delays (poll intervals, service times) are idiomatic
#: as literals; run-length-scale numbers are where a missing
#: ``US_PER_S`` hides.
LITERAL_FLOOR = 100_000.0

#: Modules that define the unit vocabulary itself and legitimately
#: traffic in raw conversion constants.
_EXEMPT_MODULES = ("repro.sim.units",)


def _call_terminal(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_big_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and abs(float(node.value)) >= LITERAL_FLOOR
    )


def _kind_label(kind: str) -> str:
    return {
        DURATION: "a duration (µs)",
        TIMESTAMP: "an absolute time (µs)",
        RATE: "a rate (req/µs)",
        FRACTION: "a fraction",
        BYTES: "a byte count",
    }.get(kind, kind)


class _SiteChecker:
    """Applies the A501–A505 decision table to one function's calls."""

    def __init__(self, program: Program, fn: FunctionInfo, analysis: FunctionAnalysis):
        self.program = program
        self.fn = fn
        self.analysis = analysis
        self.findings: List[AnalysisFinding] = []
        #: (rule, symbol) already reported — one finding per site even
        #: when the fixpoint visits an expression more than once.
        self._seen: Set[Tuple[str, str]] = set()

    def _emit(
        self, rule_id: str, node: ast.AST, message: str, symbol: str
    ) -> None:
        key = (rule_id, symbol)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            make_finding(
                rule_id,
                self.fn.module.path,
                getattr(node, "lineno", self.fn.lineno),
                getattr(node, "col_offset", 0),
                message,
                symbol=symbol,
            )
        )

    def check_argument(
        self,
        call: ast.Call,
        arg: ast.AST,
        expected: str,
        param: str,
        is_sink: bool,
    ) -> None:
        terminal = _call_terminal(call) or "<call>"
        symbol = f"{self.fn.key}:{terminal}:{param}"
        where = f"{terminal}({param}=...)" if param else f"{terminal}(...)"
        value = self.analysis.eval(arg)
        if expected in TIME_KINDS:
            if value.kind == RATE:
                self._emit(
                    "A502",
                    arg,
                    f"{self.fn.qualname}() passes a rate (req/µs) to "
                    f"{where}, which expects {_kind_label(expected)}; a "
                    "rate's reciprocal is the matching duration",
                    symbol,
                )
            elif value.kind == TAINTED:
                self._emit(
                    "A501",
                    arg,
                    f"{self.fn.qualname}() passes a value from the "
                    f"unit-mixing operation [{value.taint}] to {where}, "
                    f"which expects {_kind_label(expected)}",
                    symbol,
                )
            elif value.kind in (FRACTION, BYTES):
                self._emit(
                    "A501",
                    arg,
                    f"{self.fn.qualname}() passes {_kind_label(value.kind)} "
                    f"to {where}, which expects {_kind_label(expected)}",
                    symbol,
                )
            elif is_sink and value.from_sub:
                self._emit(
                    "A504",
                    arg,
                    f"{self.fn.qualname}() schedules {where} with a "
                    "subtraction-derived time that is never clamped; if "
                    "the operands can cross, the delay goes negative (or "
                    "the absolute time lands in the past) — wrap the "
                    "subtraction in max(0.0, ...) or justify why it "
                    "cannot",
                    symbol,
                )
            elif _is_big_literal(arg):
                self._emit(
                    "A505",
                    arg,
                    f"{self.fn.qualname}() passes the bare literal "
                    f"{ast.unparse(arg)} to {where}; run-length-scale "
                    "times should name their unit via repro.sim.units "
                    "(US_PER_S / US_PER_MS / seconds())",
                    symbol,
                )
        elif expected == RATE:
            if value.kind in TIME_KINDS:
                self._emit(
                    "A502",
                    arg,
                    f"{self.fn.qualname}() passes {_kind_label(value.kind)} "
                    f"to {where}, which expects a rate (req/µs); a "
                    "duration's reciprocal is the matching rate",
                    symbol,
                )
        elif expected == FRACTION:
            if value.literal is not None and value.literal > 1.5:
                self._emit(
                    "A503",
                    arg,
                    f"{self.fn.qualname}() passes {value.literal:g} to "
                    f"{where}, which expects a fraction of 1.0; "
                    f"{value.literal:g} looks percent-scaled — divide by "
                    "100",
                    symbol,
                )
            elif value.kind in (DURATION, TIMESTAMP, RATE, BYTES):
                self._emit(
                    "A503",
                    arg,
                    f"{self.fn.qualname}() passes {_kind_label(value.kind)} "
                    f"to {where}, which expects a dimensionless fraction",
                    symbol,
                )


def analyze_unitsflow(program: Program) -> List[AnalysisFinding]:
    """Run the units-flow checks over every function in ``program``."""
    result = compute_summaries(program)
    findings: List[AnalysisFinding] = []
    for fn in program.iter_functions():
        if fn.module.name in _EXEMPT_MODULES:
            continue
        analysis = analyze_function(program, fn, result.summaries)
        checker = _SiteChecker(program, fn, analysis)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                _check_call(program, fn, result.summaries, checker, node)
        _check_defaults(fn, result.summaries, checker)
        findings.extend(checker.findings)
    return findings


def _check_call(
    program: Program,
    fn: FunctionInfo,
    summaries,
    checker: _SiteChecker,
    call: ast.Call,
) -> None:
    annotation = resolve_annotation(program, fn, call)
    if annotation is not None:
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            expected = annotation.positional.get(index)
            if expected in (None, TOP, SCALAR):
                continue
            param = _positional_param_name(annotation, index)
            checker.check_argument(call, arg, expected, param, annotation.sink)
        for kw in call.keywords:
            if kw.arg is None:
                continue
            expected = annotation.params.get(kw.arg)
            if expected in (None, TOP, SCALAR):
                continue
            checker.check_argument(call, kw.value, expected, kw.arg, annotation.sink)
        return
    summary = resolve_summary(program, summaries, fn, call)
    if summary is None:
        return
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        expected = summary.expected_for(index, None)
        if expected is None:
            continue
        param = _summary_param_name(summary, index) or f"arg{index}"
        checker.check_argument(call, arg, expected, param, False)
    for kw in call.keywords:
        if kw.arg is None:
            continue
        expected = summary.expected_for(None, kw.arg)
        if expected is None:
            continue
        checker.check_argument(call, kw.value, expected, kw.arg, False)


def _positional_param_name(annotation, index: int) -> str:
    """Best-effort display name for a positional slot: the unique param
    with that unit when unambiguous, else the index."""
    unit = annotation.positional.get(index)
    names = [name for name, u in annotation.params.items() if u == unit]
    if len(names) == 1:
        return names[0]
    return f"arg{index}"


def _summary_param_name(summary, index: int) -> Optional[str]:
    unit = summary.positional_units.get(index)
    names = [name for name, u in summary.param_units.items() if u == unit]
    if len(names) == 1:
        return names[0]
    return None


def _check_defaults(fn: FunctionInfo, summaries, checker: _SiteChecker) -> None:
    """A505 on parameter defaults: a raw run-length-scale literal as the
    default of a time-typed parameter."""
    summary = summaries.get(fn.key)
    if summary is None:
        return
    args = fn.node.args
    positional = list(args.posonlyargs) + list(args.args)
    pairs: List[Tuple[str, ast.AST]] = []
    for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        pairs.append((arg.arg, default))
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            pairs.append((arg.arg, default))
    for name, default in pairs:
        expected = summary.param_units.get(name)
        if expected not in TIME_KINDS:
            continue
        if _is_big_literal(default):
            checker._emit(
                "A505",
                default,
                f"{fn.qualname}() defaults {name}= to the bare literal "
                f"{ast.unparse(default)}; run-length-scale times should "
                "name their unit via repro.sim.units (US_PER_S / "
                "US_PER_MS / seconds())",
                f"{fn.key}:{name}:default",
            )
