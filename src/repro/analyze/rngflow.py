"""RNG-stream escape analysis (findings A101/A102/A103).

:class:`repro.sim.randomness.RngRegistry` gives every stochastic
component its own named stream so one component's draws never perturb
another's.  The convention that makes this auditable is the *dotted
prefix*: a stream named ``faults.net`` belongs to the ``faults``
subsystem.  That convention is only worth anything if it is machine
checked — a ``faults.*`` stream quietly handed to a policy couples the
policy's decisions to the fault plan's draw schedule, and the resulting
seed-determinism break is invisible until two runs diverge.

Three findings:

* **A101** — a dotted stream is *created* outside the package its
  prefix names.
* **A102** — a dotted stream *escapes*: it is passed (directly, through
  a local variable, or inside a conditional expression) into a callee
  that resolves to a different package than the prefix.
* **A103** — a stream is requested with a non-literal name, which
  defeats this analysis entirely.

Receiver heuristic: a ``.stream(...)`` call counts as a registry draw
when its receiver expression mentions ``rng`` or ``registry`` (this
matches ``rngs.stream``, ``self.rngs.stream``,
``RngRegistry(seed).stream`` and leaves unrelated ``.stream`` methods
alone).  Undotted names (``"arrivals"``) are workload-shared by
convention and are not ownership-checked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .findings import AnalysisFinding, make_finding
from .model import FunctionInfo, Program


def _is_registry_receiver(expr: ast.AST) -> bool:
    try:
        text = ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return False
    lowered = text.lower()
    return "rng" in lowered or "registry" in lowered


def _stream_calls(fn: FunctionInfo) -> List[Tuple[ast.Call, Optional[str]]]:
    """Every registry ``.stream(...)`` call in ``fn``: (node, literal or
    None when the name is dynamic)."""
    out: List[Tuple[ast.Call, Optional[str]]] = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream"
            and node.args
            and _is_registry_receiver(node.func.value)
        ):
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                out.append((node, first.value))
            else:
                out.append((node, None))
    return out


def analyze_rngflow(program: Program) -> List[AnalysisFinding]:
    """Run the stream-ownership and escape analysis over ``program``."""
    findings: List[AnalysisFinding] = []
    for fn in program.iter_functions():
        calls = _stream_calls(fn)
        if not calls:
            continue
        module = fn.module
        pkg = module.package
        stream_nodes: Dict[int, str] = {}  # id(node) -> stream name
        for node, name in calls:
            if name is None:
                findings.append(
                    make_finding(
                        "A103",
                        module.path,
                        node.lineno,
                        node.col_offset,
                        f"{fn.qualname}() requests an RNG stream with a "
                        "non-literal name; static stream-ownership tracking "
                        "cannot follow it — use a string literal",
                        symbol=f"{fn.key}.stream",
                    )
                )
                continue
            stream_nodes[id(node)] = name
            if "." in name:
                prefix = name.split(".", 1)[0]
                if prefix in program.packages and pkg is not None and pkg != prefix:
                    findings.append(
                        make_finding(
                            "A101",
                            module.path,
                            node.lineno,
                            node.col_offset,
                            f"stream '{name}' is created in package "
                            f"'{pkg}' but its prefix names subsystem "
                            f"'{prefix}'; create it in the owning package "
                            "(or rename it to match its owner)",
                            symbol=name,
                        )
                    )
        # Locals bound to a stream: x = <registry>.stream("...")
        local_streams: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and id(node.value) in stream_nodes
            ):
                local_streams[node.targets[0].id] = stream_nodes[id(node.value)]
        # Escapes: a dotted stream as an argument to a foreign callee.
        reported: Set[Tuple[str, int]] = set()
        for call in ast.walk(fn.node):
            if not isinstance(call, ast.Call):
                continue
            passed: List[str] = []
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and id(sub) in stream_nodes:
                        passed.append(stream_nodes[id(sub)])
                    elif isinstance(sub, ast.Name) and sub.id in local_streams:
                        passed.append(local_streams[sub.id])
            dotted = [name for name in passed if "." in name]
            if not dotted:
                continue
            callee_pkg = program.resolve_callable_owner(fn, call)
            if callee_pkg is None:
                continue
            for name in dotted:
                prefix = name.split(".", 1)[0]
                if prefix not in program.packages or callee_pkg == prefix:
                    continue
                key = (name, call.lineno)
                if key in reported:
                    continue
                reported.add(key)
                callee = ""
                try:
                    callee = ast.unparse(call.func)
                except Exception:  # pragma: no cover
                    pass
                findings.append(
                    make_finding(
                        "A102",
                        module.path,
                        call.lineno,
                        call.col_offset,
                        f"stream '{name}' (owned by subsystem '{prefix}') "
                        f"escapes into '{callee_pkg}' code via {callee}(); "
                        "the receiver's draw pattern now couples to "
                        f"'{prefix}' seeding — give the receiver its own "
                        "stream or move the draw to the owner",
                        symbol=f"{name}->{callee_pkg}",
                    )
                )
    return findings
