"""Whole-program model: symbol table, class hierarchy, and call graph.

The single-file linter (:mod:`repro.lint`) sees one module at a time;
everything in this package needs the *cross-module* picture: which class
extends which, which handler calls which helper, which constructor a
stream object is passed into.  :func:`build_program` parses a file set
once into a :class:`Program` that the three analyses share.

Resolution is deliberately best-effort and *static*: attribute chains
rooted at ``self`` resolve through the class hierarchy, bare names
resolve through each module's import table (including relative
imports), and everything else is left unresolved rather than guessed.
Unresolved calls simply fall out of the analyses' reach — the analyzer
under-reports instead of inventing edges.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError


def _module_name_for(path: str, root: Optional[str]) -> Tuple[str, bool]:
    """Dotted module name for ``path`` and whether it is a package.

    Files under a ``repro`` directory are named from that anchor
    (``.../src/repro/sim/engine.py`` -> ``repro.sim.engine``); other
    trees (test fixtures) are named relative to ``root``.
    """
    norm = path.replace("\\", "/")
    parts = norm.split("/")
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        rel_parts = parts[idx:]
    elif root is not None:
        rel = os.path.relpath(path, root).replace("\\", "/")
        rel_parts = [p for p in rel.split("/") if p not in (".", "")]
    else:
        rel_parts = [parts[-1]]
    is_package = rel_parts[-1] == "__init__.py"
    if is_package:
        rel_parts = rel_parts[:-1]
    else:
        rel_parts = rel_parts[:-1] + [rel_parts[-1].rsplit(".py", 1)[0]]
    return ".".join(rel_parts), is_package


class ModuleInfo:
    """One parsed module plus its import table."""

    def __init__(self, name: str, path: str, source: str, tree: ast.Module, is_package: bool):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = is_package
        #: First dotted component below ``repro`` (or below the scan
        #: root), e.g. ``"policies"`` — the subsystem granularity the
        #: RNG-escape and contract analyses reason at.
        parts = name.split(".")
        self.package: Optional[str] = None
        if parts and parts[0] == "repro":
            self.package = parts[1] if len(parts) > 1 else None
        elif parts:
            if len(parts) > 1:
                self.package = parts[0]
            elif is_package:
                # A top-level package's own __init__ module.
                self.package = parts[0]
        #: local alias -> fully dotted target, relative imports resolved.
        self.aliases: Dict[str, str] = {}
        self._build_aliases()

    def _resolve_relative(self, level: int, module: Optional[str]) -> str:
        base = self.name.split(".")
        if not self.is_package:
            base = base[:-1]
        if level > 1:
            base = base[: len(base) - (level - 1)]
        if module:
            base = base + module.split(".")
        return ".".join(base)

    def _build_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level > 0:
                    target = self._resolve_relative(node.level, node.module)
                elif node.module:
                    target = node.module
                else:  # pragma: no cover - "from import" is a syntax error
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = f"{target}.{alias.name}"

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute chain to a dotted name with the root
        expanded through the import table; None for non-name roots."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(chain))


class FunctionInfo:
    """A function or method definition."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.FunctionDef,
        class_key: Optional[str],
    ):
        self.module = module
        self.node = node
        self.name = node.name
        self.class_key = class_key
        if class_key is not None:
            self.qualname = f"{class_key.rsplit('.', 1)[-1]}.{node.name}"
        else:
            self.qualname = node.name
        self.key = f"{module.name}.{self.qualname}"
        self.lineno = node.lineno


class ClassInfo:
    """A class definition with resolved base names."""

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef):
        self.module = module
        self.node = node
        self.name = node.name
        self.key = f"{module.name}.{node.name}"
        self.lineno = node.lineno
        #: Base classes as dotted names (resolved through the module's
        #: import table); may point outside the program (e.g. ``abc.ABC``).
        #: A bare name with no import backing is assumed module-local.
        self.base_names: List[str] = []
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id not in module.aliases:
                self.base_names.append(f"{module.name}.{base.id}")
                continue
            dotted = module.dotted_name(base)
            if dotted is not None:
                self.base_names.append(dotted)
        self.methods: Dict[str, FunctionInfo] = {}
        #: Names bound at class level (class attributes, annotations).
        self.class_attrs: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.class_attrs.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    self.class_attrs.add(stmt.target.id)

    @property
    def is_abstract_decorated(self) -> bool:
        """True when the class declares itself abstract: any own method
        carries an ``abstractmethod`` decorator, ``ABC`` appears among
        its bases, or it sets ``metaclass=ABCMeta``."""
        for base in self.node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
            if name == "ABC":
                return True
        for kw in self.node.keywords:
            if kw.arg == "metaclass":
                value = kw.value
                name = value.attr if isinstance(value, ast.Attribute) else getattr(value, "id", "")
                if name == "ABCMeta":
                    return True
        for method in self.methods.values():
            for deco in method.node.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
                if name == "abstractmethod":
                    return True
        return False


class Program:
    """The parsed file set with cross-module lookups."""

    def __init__(self, root: Optional[str] = None):
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Subsystem packages present in the program (``policies``,
        #: ``faults``, ...), used by the RNG prefix convention.
        self.packages: Set[str] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, path: str, source: str) -> ModuleInfo:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
        name, is_package = _module_name_for(path, self.root)
        info = ModuleInfo(name, path, source, tree, is_package)
        self.modules[name] = info
        if info.package:
            self.packages.add(info.package)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(info, node, None)
                self.functions[fn.key] = fn
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(info, node)
                self.classes[cls.key] = cls
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionInfo(info, stmt, cls.key)
                        cls.methods[stmt.name] = fn
                        self.functions[fn.key] = fn
        return info

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    def bases_of(self, cls: ClassInfo) -> List[ClassInfo]:
        """In-program base classes, in declaration order."""
        found = []
        for base in cls.base_names:
            info = self.classes.get(base)
            if info is not None:
                found.append(info)
        return found

    def ancestry(self, cls: ClassInfo) -> List[ClassInfo]:
        """``cls`` plus every in-program ancestor, depth-first, deduped."""
        seen: Dict[str, ClassInfo] = {}
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.key in seen:
                continue
            seen[current.key] = current
            stack.extend(self.bases_of(current))
        return list(seen.values())

    def is_subclass_of(self, cls: ClassInfo, base_key: str) -> bool:
        """True when ``base_key`` (dotted) is in ``cls``'s ancestry —
        including bases declared but defined outside the program."""
        for ancestor in self.ancestry(cls):
            if ancestor.key == base_key:
                return True
            if base_key in ancestor.base_names:
                return True
        return False

    def subclasses_of(self, base_key: str) -> List[ClassInfo]:
        """Every in-program strict subclass of ``base_key``, sorted."""
        out = [
            cls
            for cls in self.classes.values()
            if cls.key != base_key and self.is_subclass_of(cls, base_key)
        ]
        return sorted(out, key=lambda c: (c.module.path, c.lineno))

    def resolve_method(self, cls: ClassInfo, method: str) -> Optional[FunctionInfo]:
        """Look ``method`` up through the in-program ancestry."""
        for ancestor in self.ancestry(cls):
            fn = ancestor.methods.get(method)
            if fn is not None:
                return fn
        return None

    @staticmethod
    def _ancestor_defines_attr(ancestor: ClassInfo, attr: str) -> bool:
        if attr in ancestor.class_attrs:
            return True
        for fn in ancestor.methods.values():
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr == attr
                        ):
                            return True
        return False

    def resolve_class_attr(self, cls: ClassInfo, attr: str) -> bool:
        """True when ``attr`` is bound at class level anywhere in the
        ancestry (or set as ``self.attr`` inside any ancestor method)."""
        return any(
            self._ancestor_defines_attr(ancestor, attr)
            for ancestor in self.ancestry(cls)
        )

    def resolve_class_attr_excluding(
        self, cls: ClassInfo, attr: str, exclude_key: str
    ) -> bool:
        """Like :meth:`resolve_class_attr` but skipping the ancestor whose
        key is ``exclude_key`` — used to ignore a contract base's own
        placeholder default when checking required attributes."""
        return any(
            self._ancestor_defines_attr(ancestor, attr)
            for ancestor in self.ancestry(cls)
            if ancestor.key != exclude_key
        )

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort static resolution of ``call`` made inside ``fn``.

        Handles: bare names (same module first, then imports), dotted
        module functions, classes (resolving to ``__init__``), and
        ``self.method`` through the hierarchy.  Returns None when the
        receiver's type is unknown.
        """
        func = call.func
        module = fn.module
        if isinstance(func, ast.Name):
            name = func.id
            if name not in module.aliases:
                local = self.functions.get(f"{module.name}.{name}")
                if local is not None and local.class_key is None:
                    return local
                local_cls = self.classes.get(f"{module.name}.{name}")
                if local_cls is not None:
                    return self.resolve_method(local_cls, "__init__")
            dotted = module.aliases.get(name)
            if dotted is not None:
                return self._resolve_dotted_callable(dotted)
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if fn.class_key is not None:
                    cls = self.classes.get(fn.class_key)
                    if cls is not None:
                        return self.resolve_method(cls, func.attr)
                return None
            dotted = module.dotted_name(func)
            if dotted is not None:
                return self._resolve_dotted_callable(dotted)
        return None

    def _resolve_dotted_callable(self, dotted: str) -> Optional[FunctionInfo]:
        fn = self.functions.get(dotted)
        if fn is not None:
            return fn
        cls = self.classes.get(dotted)
        if cls is not None:
            return self.resolve_method(cls, "__init__")
        return None

    def resolve_callable_owner(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Package owning the callee of ``call``, or None when unknown.

        Unlike :meth:`resolve_call` this also answers for classes whose
        ``__init__`` is inherited or implicit: the *class's* package is
        what ownership questions care about.
        """
        func = call.func
        module = fn.module
        dotted: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
            if name not in module.aliases and f"{module.name}.{name}" in self.classes:
                dotted = f"{module.name}.{name}"
            elif name not in module.aliases and f"{module.name}.{name}" in self.functions:
                dotted = f"{module.name}.{name}"
            else:
                dotted = module.aliases.get(name)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                resolved = self.resolve_call(fn, call)
                if resolved is not None:
                    return resolved.module.package
                return None
            dotted = module.dotted_name(func)
        if dotted is None:
            return None
        target = self.classes.get(dotted) or self.functions.get(dotted)
        if target is not None:
            return target.module.package
        owner = self.modules.get(dotted.rsplit(".", 1)[0]) if "." in dotted else None
        if owner is not None:
            return owner.package
        return None

    # ------------------------------------------------------------------
    # iteration helpers
    # ------------------------------------------------------------------
    def iter_functions(self) -> Iterator[FunctionInfo]:
        for key in sorted(self.functions):
            yield self.functions[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Program(modules={len(self.modules)}, classes={len(self.classes)}, "
            f"functions={len(self.functions)})"
        )


def build_program(paths: Sequence[str], root: Optional[str] = None) -> Program:
    """Parse every file into one :class:`Program`."""
    program = Program(root=root)
    for path in paths:
        with open(path, "r", encoding="utf-8") as fp:
            program.add_module(path, fp.read())
    return program
