"""Observer-purity analysis (finding A301).

The trace, telemetry, and sweep packages are *observers*: attaching
them must not change a run, and their output must be a pure function of
simulated events.  :class:`repro.lint.rules.TracePurityRule` (R009)
enforces the per-file half of that contract; this analysis is the
whole-program twin that also covers heap-tracking calls and resolves
names through each module's import table, so ``from time import
perf_counter as clock`` does not slip past a textual check.

One finding:

* **A301** — an observer module (``repro/trace/``, ``repro/telemetry/``,
  ``repro/sweep/``, ``repro/rack/``, ``repro/forensics/``) calls a wall
  clock, a host-entropy source, a direct RNG constructor, or a
  ``tracemalloc`` heap-tracking function.

The self-profiler (:mod:`repro.telemetry.profiler`) is one sanctioned
exception — it deliberately measures the simulator's own wall time and
heap; the sweep executor's worker-management lines (pool timeouts, the
latency selftest's sleep) are the other, since they steer worker
processes without touching any recorded result.  Each such line carries
an explicit ``# repro-analyze: disable=A301`` pragma, so every
allowlisted impurity stays visible and individually justified.
``tracemalloc.is_tracing()`` is not flagged: it is a pure query used to
guard start/stop, not a measurement.

The forbidden-name sets are imported from the lint rules rather than
duplicated, so the two layers can never drift apart.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Sequence, Tuple

from ..lint.rules import NondeterministicSourceRule, TracePurityRule, WallClockRule
from .findings import AnalysisFinding, make_finding
from .model import ModuleInfo, Program

_WALL_CLOCK = WallClockRule._FORBIDDEN
_ENTROPY = NondeterministicSourceRule._FORBIDDEN
_ENTROPY_PREFIXES = NondeterministicSourceRule._FORBIDDEN_PREFIXES
_RNG_PREFIXES = TracePurityRule._RNG_PREFIXES
_OBSERVER_PACKAGES = TracePurityRule._OBSERVER_PACKAGES

#: ``tracemalloc`` calls that start, stop, or read a heap measurement.
#: ``is_tracing`` is deliberately absent (pure guard query).
_HEAP_TRACKING = frozenset(
    {
        "tracemalloc.start",
        "tracemalloc.stop",
        "tracemalloc.get_traced_memory",
        "tracemalloc.take_snapshot",
        "tracemalloc.reset_peak",
        "tracemalloc.clear_traces",
    }
)


def _observer_package(module: ModuleInfo) -> str:
    """The observer package ``module`` belongs to, or ``""``."""
    posix = module.path.replace("\\", "/")
    for package in _OBSERVER_PACKAGES:
        if module.package == package or f"/{package}/" in posix:
            return package
    return ""


def _classify(dotted: str) -> str:
    """Impurity kind for a resolved dotted callee name, or ``""``."""
    if dotted in _WALL_CLOCK:
        return "wall-clock read"
    if dotted in _ENTROPY or dotted.startswith(_ENTROPY_PREFIXES):
        return "host-entropy source"
    if dotted.startswith(_RNG_PREFIXES):
        return "direct RNG draw"
    if dotted in _HEAP_TRACKING:
        return "heap-tracking call"
    return ""


def _scoped_calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, str]]:
    """Every call in ``tree`` with its enclosing scope's dotted name."""

    def visit(node: ast.AST, scope: Tuple[str, ...]) -> Iterator[Tuple[ast.Call, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from visit(child, scope + (child.name,))
            else:
                if isinstance(child, ast.Call):
                    yield child, ".".join(scope) or "<module>"
                yield from visit(child, scope)

    yield from visit(tree, ())


def analyze_purity(program: Program) -> List[AnalysisFinding]:
    """Flag impure calls in observer (trace/telemetry) modules."""
    findings: List[AnalysisFinding] = []
    for module in program.modules.values():
        package = _observer_package(module)
        if not package:
            continue
        for call, scope in _scoped_calls(module.tree):
            dotted = module.dotted_name(call.func)
            if dotted is None:
                continue
            kind = _classify(dotted)
            if not kind:
                continue
            findings.append(
                make_finding(
                    "A301",
                    module.path,
                    call.lineno,
                    call.col_offset,
                    f"{kind} {dotted}() in observer package "
                    f"'repro/{package}/'; observers must be pure functions "
                    "of simulated time — every sanctioned exception (the "
                    "self-profiler) must carry its own A301 pragma",
                    symbol=f"{module.name}.{scope}:{dotted}",
                )
            )
    return findings


#: (pragma tool token, purity rule id) pairs the audit looks for.
_PURITY_PRAGMAS = (("repro-lint", "R009"), ("repro-analyze", "A301"))


def purity_pragma_ledger(paths: Sequence[str]) -> List[Dict[str, object]]:
    """Every sanctioned observer impurity, as an auditable ledger.

    Walks the given trees for ``R009`` (lint) and ``A301`` (analyzer)
    suppression pragmas — each one a line where an observer module is
    *allowed* to touch the wall clock or host entropy — and returns
    ``{path, line, tool, rule, code}`` entries sorted by location.  The
    point is visibility: the purity contract is only as strong as its
    exception list, so ``repro-analyze scan --purity-audit`` prints the
    full list instead of letting exceptions hide in comments.
    """
    from ..lint.pragmas import _pragma_re, iter_comments
    from ..lint.runner import iter_python_files

    patterns = [(tool, rule, _pragma_re(tool)) for tool, rule in _PURITY_PRAGMAS]
    entries: List[Dict[str, object]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fp:
            source = fp.read()
        lines = source.splitlines()
        for lineno, comment in iter_comments(source):
            for tool, rule, pattern in patterns:
                match = pattern.search(comment)
                if match is None:
                    continue
                ids = {
                    part.strip().upper()
                    for part in match.group("ids").split(",")
                    if part.strip()
                }
                if rule not in ids:
                    continue
                code = ""
                if 1 <= lineno <= len(lines):
                    code = lines[lineno - 1].split("#", 1)[0].strip()
                entries.append(
                    {
                        "path": path,
                        "line": lineno,
                        "tool": tool,
                        "rule": rule,
                        "code": code,
                    }
                )
    entries.sort(key=lambda e: (e["path"], e["line"], e["tool"]))
    return entries
