"""Profile-guided hot-path performance analysis (A401–A406).

The engine executes tens of thousands of events per simulated second;
every Python-level slow idiom on the dispatch path — an allocation per
event, a ``__dict__`` lookup chain, an f-string that is never read —
multiplies by the event count.  This pass computes the set of functions
*transitively reachable from the event loop's dispatch* and reports the
slow idioms inside that set:

* **A401 allocation-in-hot-loop** — comprehensions/``sorted`` anywhere
  in a hot function; collection literals, allocating builtins, slices,
  and set-operator methods inside an explicit loop of a hot function.
* **A402 missing-``__slots__``** — an in-program class constructed on
  the hot path whose ancestry never declares ``__slots__``: every
  instance pays a ``__dict__`` and every attribute access a hash probe.
* **A403 repeated-attribute-lookup** — a depth-≥2 attribute chain
  (``self.x.y``) loaded two or more times in one hot function with no
  intervening store: each load re-walks the chain; hoist it to a local.
* **A404 string-formatting-on-hot-path** — f-strings, ``str.format``,
  ``%``-formatting, ``print``/``logging``/``warnings`` in hot functions
  (``raise``/``assert`` payloads and ``__repr__``/``__str__`` exempt).
* **A405 exception-driven-control-flow** — a ``try`` whose handlers
  catch only lookup errors around a single simple statement: CPython
  zero-cost ``try`` still pays on the *miss*, and a precheck reads
  clearer.
* **A406 trivial-delegation** — a hot function whose entire body is
  ``return other(args...)`` with pass-through arguments: one Python
  call frame per event spent on indirection.

**Hot roots** are found structurally, not by hard-coded module paths, so
the pass works on fixture trees as well as the shipped package: the
event loop's ``run``/``Server.ingress`` by qualname, every scheduler
contract method (classes providing both ``on_request`` and
``on_worker_free``), classifier ``classify``/``_classify`` pairs, and —
most importantly — **every callback passed to a scheduling call**
(``call_at``/``call_after``/``schedule_service_event``) anywhere in the
program: anything booked on the loop runs on the loop.  Reachability
closes over :meth:`Program.resolve_call` and widens dynamically
dispatched methods to their subclass overrides.

When a ``BENCH_profile.json`` (the :class:`repro.telemetry.SelfProfiler`
report) is supplied, findings rank by the measured wall-time of the
handlers that reach them — the triage order is then *measured*, not
guessed.  Profile data never changes which findings fire or their
fingerprints; it only orders the report.
"""

from __future__ import annotations

import ast
import json
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import AnalysisError
from .findings import AnalysisFinding, make_finding
from .model import ClassInfo, FunctionInfo, Program

#: Scheduling entry points: a callable argument at any call site whose
#: callee bears one of these names will execute on the event loop.
SCHEDULE_METHODS = {"call_at", "call_after", "schedule_service_event"}

#: Methods treated as hot on every scheduler-shaped class (a class whose
#: ancestry provides both ``on_request`` and ``on_worker_free``).
SCHEDULER_HOT_METHODS = (
    "on_request",
    "on_worker_free",
    "begin_service",
    "_complete",
    "completion_hook",
    "drop",
)

#: Qualnames that are hot by construction.
ROOT_QUALNAMES = {"EventLoop.run", "Server.ingress"}

_ALLOC_BUILTINS = {"list", "dict", "set", "frozenset", "tuple"}
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}
_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
_NARROW_EXCEPTIONS = {"KeyError", "IndexError", "AttributeError", "StopIteration"}
_LOG_ROOTS = {"logging", "warnings"}


# ----------------------------------------------------------------------
# root detection + reachability
# ----------------------------------------------------------------------
def _callback_target(
    program: Program, fn: FunctionInfo, arg: ast.AST
) -> Optional[FunctionInfo]:
    """Resolve a callback argument (``self._emit``, bare name) to the
    function it will invoke when the event fires."""
    module = fn.module
    if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name):
        if arg.value.id == "self" and fn.class_key is not None:
            cls = program.classes.get(fn.class_key)
            if cls is not None:
                return program.resolve_method(cls, arg.attr)
        dotted = module.dotted_name(arg)
        if dotted is not None:
            return program.functions.get(dotted)
        return None
    if isinstance(arg, ast.Name):
        name = arg.id
        if name not in module.aliases:
            local = program.functions.get(f"{module.name}.{name}")
            if local is not None and local.class_key is None:
                return local
        dotted = module.aliases.get(name)
        if dotted is not None:
            return program.functions.get(dotted)
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a call's callee (``loop.call_after`` -> ``call_after``)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _scheduled_callbacks(program: Program) -> List[FunctionInfo]:
    """Every function passed as a callback to a scheduling call, program
    wide — scheduled work runs on the loop regardless of who booked it."""
    found: Dict[str, FunctionInfo] = {}
    for fn in program.iter_functions():
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in SCHEDULE_METHODS:
                continue
            for arg in node.args:
                target = _callback_target(program, fn, arg)
                if target is not None:
                    found[target.key] = target
    return list(found.values())


def _structural_roots(program: Program) -> List[FunctionInfo]:
    roots: Dict[str, FunctionInfo] = {}
    for fn in program.iter_functions():
        if fn.qualname in ROOT_QUALNAMES:
            roots[fn.key] = fn
    for cls in program.classes.values():
        on_request = program.resolve_method(cls, "on_request")
        on_free = program.resolve_method(cls, "on_worker_free")
        if on_request is not None and on_free is not None:
            for name in SCHEDULER_HOT_METHODS:
                method = program.resolve_method(cls, name)
                if method is not None:
                    roots[method.key] = method
        classify = program.resolve_method(cls, "classify")
        classify_hook = program.resolve_method(cls, "_classify")
        if classify is not None and classify_hook is not None:
            roots[classify.key] = classify
            roots[classify_hook.key] = classify_hook
    return list(roots.values())


def hot_roots(program: Program) -> List[FunctionInfo]:
    """The dispatch entry points reachability starts from."""
    roots: Dict[str, FunctionInfo] = {}
    for fn in _structural_roots(program):
        roots[fn.key] = fn
    for fn in _scheduled_callbacks(program):
        roots[fn.key] = fn
    return sorted(roots.values(), key=lambda f: f.key)


def _callees(program: Program, fn: FunctionInfo) -> List[FunctionInfo]:
    """Statically resolvable callees of ``fn``, widened over dynamic
    dispatch: a resolved method drags in every same-named subclass
    override, since the receiver's concrete type is unknown."""
    out: Dict[str, FunctionInfo] = {}
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = program.resolve_call(fn, node)
        if resolved is None:
            continue
        out[resolved.key] = resolved
        if resolved.class_key is not None:
            for sub in program.subclasses_of(resolved.class_key):
                override = sub.methods.get(resolved.name)
                if override is not None:
                    out[override.key] = override
    return list(out.values())


def hot_functions(program: Program) -> Dict[str, FunctionInfo]:
    """Transitive closure of :func:`hot_roots` over the call graph."""
    hot: Dict[str, FunctionInfo] = {}
    stack = hot_roots(program)
    while stack:
        fn = stack.pop()
        if fn.key in hot:
            continue
        hot[fn.key] = fn
        stack.extend(_callees(program, fn))
    return hot


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _exempt_nodes(fn: FunctionInfo) -> Set[int]:
    """ids of nodes inside ``raise``/``assert`` statements — error paths
    are allowed to allocate and format."""
    exempt: Set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Raise, ast.Assert)):
            for sub in ast.walk(node):
                exempt.add(id(sub))
    return exempt


def _loop_regions(fn: FunctionInfo) -> List[Tuple[ast.AST, List[ast.AST]]]:
    """Each explicit loop with the nodes executed per entry: the body
    (and ``orelse``) plus, for ``for`` loops, the iterable expression —
    a fresh slice or list built there is rebuilt on every call."""
    regions = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.For, ast.While)):
            nodes: List[ast.AST] = []
            if isinstance(node, ast.For):
                nodes.extend(ast.walk(node.iter))
            for stmt in list(node.body) + list(node.orelse):
                nodes.extend(ast.walk(stmt))
            regions.append((node, nodes))
    return regions


def _attr_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """Linearize ``a.b.c`` to ``("a", "b", "c")``; None for non-Name roots."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return tuple(reversed(parts))


def _is_str_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, str)


# ----------------------------------------------------------------------
# the six rules
# ----------------------------------------------------------------------
def _check_a401(fn: FunctionInfo, out: List[AnalysisFinding]) -> None:
    exempt = _exempt_nodes(fn)
    path = fn.module.path
    flagged: Set[int] = set()

    def emit(node: ast.AST, what: str, slug: str) -> None:
        if id(node) in exempt or id(node) in flagged:
            return
        flagged.add(id(node))
        out.append(
            make_finding(
                "A401",
                path,
                node.lineno,
                node.col_offset,
                f"{what} in hot-path function {fn.qualname}: allocates per "
                "event; build once outside the hot path or use a "
                "preallocated structure",
                symbol=f"{fn.key}:{slug}",
            )
        )

    # Comprehensions and sorted() allocate wherever they appear in a hot
    # function — the function itself runs once per event.
    for node in ast.walk(fn.node):
        if isinstance(node, _COMP_NODES):
            kind = {
                ast.ListComp: "list comprehension",
                ast.SetComp: "set comprehension",
                ast.DictComp: "dict comprehension",
                ast.GeneratorExp: "generator expression",
            }[type(node)]
            emit(node, kind, f"comp:{node.lineno - fn.lineno}")
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "sorted" and "sorted" not in fn.module.aliases:
                emit(node, "sorted() call", "sorted")

    # Inside explicit loops, plain literals / allocating builtins /
    # slices / set-operator methods are per-iteration costs.
    for _loop, nodes in _loop_regions(fn):
        for node in nodes:
            if isinstance(node, (ast.List, ast.Set)) and node.elts:
                emit(node, "collection literal", "literal")
            elif isinstance(node, ast.Dict) and node.keys:
                emit(node, "dict literal", "literal")
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if (
                    isinstance(node.func, ast.Name)
                    and name in _ALLOC_BUILTINS
                    and name not in fn.module.aliases
                ):
                    emit(node, f"{name}() construction", f"builtin:{name}")
                elif isinstance(node.func, ast.Attribute) and name in _SET_METHODS:
                    emit(node, f"set.{name}() call", f"setop:{name}")
            elif isinstance(node, ast.Subscript) and isinstance(
                node.slice, ast.Slice
            ):
                emit(node, "slice (copies the sequence)", "slice")


def _ancestry_has_slots(program: Program, cls: ClassInfo) -> bool:
    return any(
        "__slots__" in ancestor.class_attrs for ancestor in program.ancestry(cls)
    )


def _constructed_class(
    program: Program, fn: FunctionInfo, call: ast.Call
) -> Optional[ClassInfo]:
    """The in-program class a call constructs, if any."""
    func = call.func
    module = fn.module
    dotted: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
        if name not in module.aliases and f"{module.name}.{name}" in program.classes:
            dotted = f"{module.name}.{name}"
        else:
            dotted = module.aliases.get(name)
    elif isinstance(func, ast.Attribute):
        dotted = module.dotted_name(func)
    if dotted is None:
        return None
    return program.classes.get(dotted)


def _check_a402(
    program: Program, fn: FunctionInfo, out: List[AnalysisFinding]
) -> None:
    exempt = _exempt_nodes(fn)
    seen: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call) or id(node) in exempt:
            continue
        cls = _constructed_class(program, fn, node)
        if cls is None or cls.key in seen:
            continue
        if program.is_subclass_of(cls, "Exception") or cls.name.endswith("Error"):
            continue
        if _ancestry_has_slots(program, cls):
            continue
        seen.add(cls.key)
        out.append(
            make_finding(
                "A402",
                cls.module.path,
                cls.lineno,
                cls.node.col_offset,
                f"class {cls.name} is instantiated on the hot path (in "
                f"{fn.qualname}) but declares no __slots__: every instance "
                "carries a __dict__ and every attribute access hashes",
                symbol=f"{cls.key}:slots",
            )
        )


def _check_a403(fn: FunctionInfo, out: List[AnalysisFinding]) -> None:
    # Roots/prefixes written anywhere in the function invalidate hoisting.
    stored_names: Set[str] = set()
    stored_chains: Set[Tuple[str, ...]] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            stored_names.add(node.id)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            chain = _attr_chain(node)
            if chain is not None:
                stored_chains.add(chain)

    counts: Dict[Tuple[str, ...], List[ast.Attribute]] = {}

    class _Loads(ast.NodeVisitor):
        def visit_Attribute(self, node: ast.Attribute) -> None:
            chain = _attr_chain(node)
            if (
                chain is not None
                and len(chain) >= 3  # root + two attributes
                and isinstance(node.ctx, ast.Load)
            ):
                counts.setdefault(chain, []).append(node)
                return  # do not descend: inner chains are prefixes
            self.generic_visit(node)

    _Loads().visit(fn.node)
    for chain, sites in sorted(counts.items()):
        if len(sites) < 2:
            continue
        if chain[0] in stored_names:
            continue
        if any(chain[: k] in stored_chains for k in range(2, len(chain) + 1)):
            continue
        first = min(sites, key=lambda n: (n.lineno, n.col_offset))
        dotted = ".".join(chain)
        out.append(
            make_finding(
                "A403",
                fn.module.path,
                first.lineno,
                first.col_offset,
                f"attribute chain {dotted} is looked up {len(sites)} times in "
                f"hot-path function {fn.qualname}; hoist it to a local "
                "(or cache it at construction when it never changes)",
                symbol=f"{fn.key}:{dotted}",
            )
        )


def _check_a404(fn: FunctionInfo, out: List[AnalysisFinding]) -> None:
    if fn.name in ("__repr__", "__str__"):
        return
    exempt = _exempt_nodes(fn)
    path = fn.module.path

    def emit(node: ast.AST, what: str, slug: str) -> None:
        if id(node) in exempt:
            return
        out.append(
            make_finding(
                "A404",
                path,
                node.lineno,
                node.col_offset,
                f"{what} in hot-path function {fn.qualname}: string building "
                "and I/O cost per event even when the output is discarded; "
                "move it off the hot path or behind a level check",
                symbol=f"{fn.key}:{slug}",
            )
        )

    for node in ast.walk(fn.node):
        if isinstance(node, ast.JoinedStr):
            emit(node, "f-string", f"fstring:{node.lineno - fn.lineno}")
        elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
            if _is_str_constant(node.left):
                emit(node, "%-formatting", f"percent:{node.lineno - fn.lineno}")
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                emit(node, "print() call", "print")
            elif isinstance(func, ast.Attribute):
                if func.attr == "format" and _is_str_constant(func.value):
                    emit(node, "str.format() call", f"format:{node.lineno - fn.lineno}")
                else:
                    chain = _attr_chain(func)
                    if chain is not None:
                        root = fn.module.aliases.get(chain[0], chain[0])
                        if root.split(".")[0] in _LOG_ROOTS:
                            emit(node, f"{'.'.join(chain)}() call", f"log:{func.attr}")


def _handler_names(handler: ast.ExceptHandler) -> Optional[List[str]]:
    """Exception class names a handler catches; None when not statically
    narrow (bare except, non-name expressions)."""
    if handler.type is None:
        return None
    nodes = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        else:
            return None
    return names


def _check_a405(fn: FunctionInfo, out: List[AnalysisFinding]) -> None:
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Try):
            continue
        if len(node.body) != 1 or not isinstance(
            node.body[0], (ast.Assign, ast.AugAssign, ast.Expr, ast.Return)
        ):
            continue
        caught: List[str] = []
        narrow = True
        for handler in node.handlers:
            names = _handler_names(handler)
            if names is None or not set(names) <= _NARROW_EXCEPTIONS:
                narrow = False
                break
            caught.extend(names)
        if not narrow or not caught:
            continue
        out.append(
            make_finding(
                "A405",
                fn.module.path,
                node.lineno,
                node.col_offset,
                f"try/except {'/'.join(sorted(set(caught)))} around a single "
                f"statement in hot-path function {fn.qualname}: the handler "
                "costs ~10x a precheck on every miss; use .get()/a "
                "membership test instead",
                symbol=f"{fn.key}:try:{'/'.join(sorted(set(caught)))}",
            )
        )


def _body_statements(fn: FunctionInfo) -> List[ast.stmt]:
    body = list(fn.node.body)
    if body and isinstance(body[0], ast.Expr) and _is_str_constant(body[0].value):
        body = body[1:]
    return body


def _check_a406(
    program: Program, fn: FunctionInfo, out: List[AnalysisFinding]
) -> None:
    body = _body_statements(fn)
    if len(body) != 1 or not isinstance(body[0], ast.Return):
        return
    value = body[0].value
    if not isinstance(value, ast.Call) or value.keywords:
        return
    if not all(isinstance(arg, ast.Name) for arg in value.args):
        return
    resolved = program.resolve_call(fn, value)
    if resolved is None or resolved.key == fn.key:
        return
    out.append(
        make_finding(
            "A406",
            fn.module.path,
            fn.lineno,
            fn.node.col_offset,
            f"hot-path function {fn.qualname} only delegates to "
            f"{resolved.qualname}: one extra call frame per event; inline "
            "the callee or bind it directly at the call sites",
            symbol=f"{fn.key}:delegates:{resolved.key}",
        )
    )


# ----------------------------------------------------------------------
# entry point + profile weighting
# ----------------------------------------------------------------------
def analyze_hotpath(program: Program) -> List[AnalysisFinding]:
    """Run A401–A406 over the hot reachability set."""
    findings: List[AnalysisFinding] = []
    hot = hot_functions(program)
    for key in sorted(hot):
        fn = hot[key]
        _check_a401(fn, findings)
        _check_a402(program, fn, findings)
        _check_a403(fn, findings)
        _check_a404(fn, findings)
        _check_a405(fn, findings)
        _check_a406(program, fn, findings)
    # A402 is emitted per class but may be reached from many hot
    # functions — keep the first (lowest path/line) emission only.
    deduped: Dict[str, AnalysisFinding] = {}
    for finding in findings:
        existing = deduped.get(finding.fingerprint)
        if existing is None or (finding.path, finding.line) < (
            existing.path,
            existing.line,
        ):
            deduped[finding.fingerprint] = finding
    return sorted(
        deduped.values(), key=lambda f: (f.path, f.line, f.col, f.rule_id)
    )


def load_profile(path: str) -> Dict[str, float]:
    """``BENCH_profile.json`` -> {handler qualname: cumulative seconds}."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise AnalysisError(f"cannot read profile {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "repro-profile":
        raise AnalysisError(
            f"{path} is not a repro-profile document (run repro-metrics profile)"
        )
    out: Dict[str, float] = {}
    for handler in doc.get("handlers", []):
        name = handler.get("name")
        if isinstance(name, str):
            out[name] = float(handler.get("cum_s", 0.0))
    return out


def function_weights(
    program: Program, profile: Dict[str, float]
) -> Dict[str, float]:
    """Measured seconds attributed to each function: the sum of profiled
    handler time over every handler whose closure reaches it."""
    weights: Dict[str, float] = {}
    for qualname, seconds in profile.items():
        matches = [
            fn for fn in program.functions.values() if fn.qualname == qualname
        ]
        for root in matches:
            seen: Set[str] = set()
            stack = [root]
            while stack:
                fn = stack.pop()
                if fn.key in seen:
                    continue
                seen.add(fn.key)
                stack.extend(_callees(program, fn))
            for key in seen:
                weights[key] = weights.get(key, 0.0) + seconds
    return weights


def rank_findings(
    program: Program,
    findings: Sequence[AnalysisFinding],
    profile: Dict[str, float],
) -> List[Tuple[float, AnalysisFinding]]:
    """Attach measured cost to findings and sort most-expensive first.

    A finding's weight is its enclosing function's attributed seconds
    (the symbol prefix is the function key for A401/A403–A406; A402
    findings anchor on the class and weight by the *constructing*
    function, which the symbol does not retain — they weight 0 and sort
    by location among themselves).
    """
    weights = function_weights(program, profile)
    by_key: Dict[str, float] = {}
    for key, weight in weights.items():
        by_key[key] = weight
    ranked: List[Tuple[float, AnalysisFinding]] = []
    for finding in findings:
        fn_key = finding.symbol.split(":", 1)[0] if finding.symbol else ""
        ranked.append((by_key.get(fn_key, 0.0), finding))
    ranked.sort(key=lambda pair: (-pair[0], pair[1].path, pair[1].line))
    return ranked
