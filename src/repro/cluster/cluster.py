"""A cluster: replicated servers behind one balancer, measured together.

:func:`run_cluster` assembles N identical servers (same system model),
a balancer, and an open-loop generator sized against the *cluster-wide*
peak, then returns a cluster-level :class:`~repro.metrics.summary.RunSummary`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..errors import ConfigurationError
from ..metrics.recorder import Recorder
from ..metrics.summary import RunSummary
from ..server.server import Server
from ..sim.engine import EventLoop
from ..sim.randomness import RngRegistry
from ..systems.base import SystemModel
from ..workload.arrivals import PoissonArrivals
from ..workload.generator import OpenLoopGenerator
from ..workload.spec import WorkloadSpec
from .balancer import Balancer

BalancerFactory = Callable[[Sequence[Server], RngRegistry], Balancer]


def _tee(cluster_sink: Callable, replica_sink: Callable) -> Callable:
    """Sink forwarding each request to the cluster-level recorder first
    (so cluster digests stay bit-identical to the shared-recorder era)
    and then to the replica's own recorder."""

    def sink(request) -> None:
        cluster_sink(request)
        replica_sink(request)

    return sink


class ClusterResult:
    """Cluster-level and per-replica views of one run."""

    def __init__(
        self,
        summary: RunSummary,
        servers: List[Server],
        balancer: Balancer,
        utilization: float,
        replica_recorders: Optional[List[Recorder]] = None,
        duration_us: float = 0.0,
        spec: Optional[WorkloadSpec] = None,
    ):
        self.summary = summary
        self.servers = servers
        self.balancer = balancer
        self.utilization = utilization
        self.replica_recorders = replica_recorders or []
        self.duration_us = duration_us
        self.spec = spec

    @property
    def n_replicas(self) -> int:
        return len(self.servers)

    def replica_summaries(
        self, warmup_frac: float = 0.10, pct: float = 99.9
    ) -> List[RunSummary]:
        """Per-replica :class:`RunSummary` views (one per server).

        Available only for runs that teed completions into per-replica
        recorders (:func:`run_cluster` and ``repro.rack`` always do).
        """
        if not self.replica_recorders:
            raise ConfigurationError("run recorded no per-replica completions")
        type_specs = self.spec.type_specs() if self.spec is not None else None
        return [
            RunSummary(
                recorder,
                duration_us=self.duration_us,
                type_specs=type_specs,
                warmup_frac=warmup_frac,
                pct=pct,
            )
            for recorder in self.replica_recorders
        ]

    def replica_loads(self) -> List[int]:
        """Requests each replica received."""
        return [server.received for server in self.servers]

    def load_imbalance(self) -> float:
        """(max - min) / mean of per-replica request counts."""
        loads = self.replica_loads()
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 0.0
        return (max(loads) - min(loads)) / mean

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterResult({self.n_replicas} replicas, rho={self.utilization:.2f}, "
            f"p{self.summary.pct} slowdown={self.summary.overall_tail_slowdown:.1f})"
        )


def run_cluster(
    system: SystemModel,
    spec: WorkloadSpec,
    balancer_factory: BalancerFactory,
    n_replicas: int = 4,
    utilization: float = 0.7,
    n_requests: int = 40_000,
    seed: int = 1,
    warmup_frac: float = 0.10,
    pct: float = 99.9,
) -> ClusterResult:
    """Simulate ``n_replicas`` copies of ``system`` behind a balancer."""
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    if utilization <= 0:
        raise ConfigurationError(f"utilization must be > 0, got {utilization}")
    rngs = RngRegistry(seed=seed)
    loop = EventLoop()
    recorder = Recorder()
    servers: List[Server] = []
    replica_recorders: List[Recorder] = []
    for i in range(n_replicas):
        replica_rec = Recorder()
        replica_recorders.append(replica_rec)
        scheduler = system.make_scheduler(spec, rngs.fork(i))
        servers.append(
            Server(
                loop,
                scheduler,
                config=system.make_config(),
                recorder=recorder,
                completion_sink=_tee(recorder.on_complete, replica_rec.on_complete),
                drop_sink=_tee(recorder.on_drop, replica_rec.on_drop),
            )
        )
    balancer = balancer_factory(servers, rngs)
    per_server_peak = spec.peak_load(system.make_config().n_workers)
    rate = utilization * per_server_peak * n_replicas
    generator = OpenLoopGenerator(
        loop,
        spec,
        PoissonArrivals(rate),
        balancer.ingress,
        type_rng=rngs.stream("types"),
        service_rng=rngs.stream("service"),
        arrival_rng=rngs.stream("arrivals"),
        limit=n_requests,
    )
    generator.start()
    loop.run()
    summary = RunSummary(
        recorder,
        duration_us=loop.now,
        type_specs=spec.type_specs(),
        warmup_frac=warmup_frac,
        pct=pct,
    )
    return ClusterResult(
        summary,
        servers,
        balancer,
        utilization,
        replica_recorders=replica_recorders,
        duration_us=loop.now,
        spec=spec,
    )
