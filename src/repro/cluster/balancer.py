"""Cluster load balancing across replicated servers.

The paper's motivation is datacenter-scale: services replicate across
machines and front-ends pick a replica per request.  This module adds
that layer above :class:`~repro.server.server.Server` so cluster-level
questions ("does DARC still win behind a join-shortest-queue balancer?")
are answerable.

Balancer policies:

* :class:`RandomBalancer`       — uniform random replica;
* :class:`RoundRobinBalancer`   — rotate replicas;
* :class:`JoinShortestQueue`    — least (pending + in-flight) work, the
  classic JSQ;
* :class:`TypeAwareBalancer`    — partition replicas by request type, a
  cluster-level analogue of DARC's core reservation (shorts get
  dedicated replicas).

Every policy routes around *dead* replicas (all cores crashed,
:attr:`~repro.server.server.Server.alive` False) and *unreachable*
ones (partitioned away from the front end, see
:meth:`Balancer.set_reachable`): the candidate set shrinks to the
available replicas.  Only when the whole cluster is down does routing
fall back — to the **least-loaded** dead replica, so the queued
backlog is spread rather than piled onto whatever arbitrary index the
policy's ``pick`` would have returned (the request then queues at a
dead replica rather than vanishing, keeping request conservation
intact for when cores recover).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..errors import ConfigurationError
from ..server.server import Server
from ..workload.request import Request


class Balancer(ABC):
    """Chooses a replica for each arriving request."""

    def __init__(self, servers: Sequence[Server]):
        if not servers:
            raise ConfigurationError("need at least one server")
        self.servers = list(servers)
        self.routed = 0
        #: Requests routed to each replica index (telemetry view).
        self.route_counts: List[int] = [0] * len(self.servers)
        #: Optional pure observer called as ``sink(request, index)``
        #: after every routing decision, before the request is handed to
        #: the chosen replica (rack tracing's balancer decision log).
        self._decision_sink = None
        #: Replica indices currently partitioned away from this front
        #: end (``repro.rack`` partition faults); never routed to while
        #: any reachable replica exists.
        self.unreachable: Set[int] = set()

    @abstractmethod
    def pick(self, request: Request) -> int:
        """Index of the replica that should serve ``request``."""

    def available(self, index: int) -> bool:
        """True when replica ``index`` is alive and reachable."""
        return self.servers[index].alive and index not in self.unreachable

    def set_reachable(self, index: int, reachable: bool) -> None:
        """Mark a replica (un)reachable from this front end."""
        if not 0 <= index < len(self.servers):
            raise ConfigurationError(f"replica index {index} out of range")
        if reachable:
            self.unreachable.discard(index)
        else:
            self.unreachable.add(index)

    def live_indices(self, candidates: Sequence[int]) -> List[int]:
        """``candidates`` minus dead/unreachable replicas; all of them
        if none is available."""
        live = [i for i in candidates if self.available(i)]
        return live if live else list(candidates)

    def dead_fallback(self, request: Request) -> int:
        """Replica to queue at when *every* replica is down.

        The least-loaded dead replica (ties to the lowest index): its
        queue drains first once cores recover, so it is the best proxy
        for "recovers soonest" without peeking at the fault plan.
        Subclasses with recovery knowledge may override.
        """
        servers = self.servers
        best = 0
        best_load = None
        for i in range(len(servers)):
            load = servers[i].pending + servers[i].in_flight
            if best_load is None or load < best_load:
                best_load = load
                best = i
        return best

    def attach_decision_sink(self, sink) -> None:
        """Attach a pure routing-decision observer (one per balancer).

        The sink must observe only — no event scheduling, no RNG draws,
        no server mutation — so armed and unarmed runs stay
        bit-identical.
        """
        if self._decision_sink is not None:
            raise ConfigurationError(
                "balancer already has a decision sink; use one per run"
            )
        self._decision_sink = sink

    def ingress(self, request: Request) -> None:
        """The cluster's single entry point (the generator's sink)."""
        self.routed += 1
        if any(self.available(i) for i in range(len(self.servers))):
            index = self.pick(request)
        else:
            index = self.dead_fallback(request)
        self.route_counts[index] += 1
        if self._decision_sink is not None:
            self._decision_sink(request, index)
        self.servers[index].ingress(request)


class RandomBalancer(Balancer):
    """Uniform random — what anycast/ECMP effectively does."""

    def __init__(self, servers: Sequence[Server], rng: np.random.Generator):
        super().__init__(servers)
        self.rng = rng

    def pick(self, request: Request) -> int:
        pool = self.live_indices(range(len(self.servers)))
        return pool[int(self.rng.integers(0, len(pool)))]


class RoundRobinBalancer(Balancer):
    """Strict rotation."""

    def __init__(self, servers: Sequence[Server]):
        super().__init__(servers)
        self._next = 0

    def pick(self, request: Request) -> int:
        n = len(self.servers)
        idx = self._next
        self._next = (self._next + 1) % n
        if self.available(idx):
            return idx
        for offset in range(1, n):
            j = (idx + offset) % n
            if self.available(j):
                return j
        return idx


class JoinShortestQueue(Balancer):
    """Route to the replica with the least outstanding work.

    Outstanding work = queued requests + busy workers.  The scan start
    rotates so that ties (ubiquitous at low load) spread across replicas
    instead of piling onto index 0.
    """

    def __init__(self, servers: Sequence[Server]):
        super().__init__(servers)
        self._start = 0

    def pick(self, request: Request) -> int:
        n = len(self.servers)
        any_live = any(self.available(i) for i in range(n))
        best_idx = self._start
        best_load = None
        for offset in range(n):
            i = (self._start + offset) % n
            if any_live and not self.available(i):
                continue
            load = self.servers[i].pending + self.servers[i].in_flight
            if best_load is None or load < best_load:
                best_load = load
                best_idx = i
        self._start = (self._start + 1) % n
        return best_idx


class TypeAwareBalancer(Balancer):
    """Reserve whole replicas per request type — DARC's idea one level up.

    ``assignment`` maps type id -> list of replica indices; unmapped
    types use ``default`` replicas.  Within a type's replica set, pick
    the least loaded (JSQ).
    """

    def __init__(
        self,
        servers: Sequence[Server],
        assignment: Dict[int, List[int]],
        default: Optional[List[int]] = None,
    ):
        super().__init__(servers)
        for type_id, replicas in assignment.items():
            if not replicas:
                raise ConfigurationError(f"type {type_id} has an empty replica set")
            for idx in replicas:
                if not 0 <= idx < len(servers):
                    raise ConfigurationError(f"replica index {idx} out of range")
        self.assignment = assignment
        self.default = default if default is not None else list(range(len(servers)))
        if not self.default:
            raise ConfigurationError("default replica set cannot be empty")

    def pick(self, request: Request) -> int:
        replicas = self.live_indices(self.assignment.get(request.type_id, self.default))
        best_idx = replicas[0]
        best_load = None
        for idx in replicas:
            server = self.servers[idx]
            load = server.pending + server.in_flight
            if best_load is None or load < best_load:
                best_load = load
                best_idx = idx
        return best_idx
