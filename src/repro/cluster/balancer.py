"""Cluster load balancing across replicated servers.

The paper's motivation is datacenter-scale: services replicate across
machines and front-ends pick a replica per request.  This module adds
that layer above :class:`~repro.server.server.Server` so cluster-level
questions ("does DARC still win behind a join-shortest-queue balancer?")
are answerable.

Balancer policies:

* :class:`RandomBalancer`       — uniform random replica;
* :class:`RoundRobinBalancer`   — rotate replicas;
* :class:`JoinShortestQueue`    — least (pending + in-flight) work, the
  classic JSQ;
* :class:`TypeAwareBalancer`    — partition replicas by request type, a
  cluster-level analogue of DARC's core reservation (shorts get
  dedicated replicas).

Every policy routes around *dead* replicas (all cores crashed,
:attr:`~repro.server.server.Server.alive` False): the candidate set
shrinks to the live replicas, and only when the whole cluster is down
does routing fall back to the full set (the request then queues at a
dead replica rather than vanishing, keeping request conservation
intact for when cores recover).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..server.server import Server
from ..workload.request import Request


class Balancer(ABC):
    """Chooses a replica for each arriving request."""

    def __init__(self, servers: Sequence[Server]):
        if not servers:
            raise ConfigurationError("need at least one server")
        self.servers = list(servers)
        self.routed = 0

    @abstractmethod
    def pick(self, request: Request) -> int:
        """Index of the replica that should serve ``request``."""

    def live_indices(self, candidates: Sequence[int]) -> List[int]:
        """``candidates`` minus dead replicas; all of them if none live."""
        live = [i for i in candidates if self.servers[i].alive]
        return live if live else list(candidates)

    def ingress(self, request: Request) -> None:
        """The cluster's single entry point (the generator's sink)."""
        self.routed += 1
        self.servers[self.pick(request)].ingress(request)


class RandomBalancer(Balancer):
    """Uniform random — what anycast/ECMP effectively does."""

    def __init__(self, servers: Sequence[Server], rng: np.random.Generator):
        super().__init__(servers)
        self.rng = rng

    def pick(self, request: Request) -> int:
        pool = self.live_indices(range(len(self.servers)))
        return pool[int(self.rng.integers(0, len(pool)))]


class RoundRobinBalancer(Balancer):
    """Strict rotation."""

    def __init__(self, servers: Sequence[Server]):
        super().__init__(servers)
        self._next = 0

    def pick(self, request: Request) -> int:
        n = len(self.servers)
        idx = self._next
        self._next = (self._next + 1) % n
        if self.servers[idx].alive:
            return idx
        for offset in range(1, n):
            j = (idx + offset) % n
            if self.servers[j].alive:
                return j
        return idx


class JoinShortestQueue(Balancer):
    """Route to the replica with the least outstanding work.

    Outstanding work = queued requests + busy workers.  The scan start
    rotates so that ties (ubiquitous at low load) spread across replicas
    instead of piling onto index 0.
    """

    def __init__(self, servers: Sequence[Server]):
        super().__init__(servers)
        self._start = 0

    def pick(self, request: Request) -> int:
        n = len(self.servers)
        any_live = any(server.alive for server in self.servers)
        best_idx = self._start
        best_load = None
        for offset in range(n):
            i = (self._start + offset) % n
            if any_live and not self.servers[i].alive:
                continue
            load = self.servers[i].pending + self.servers[i].in_flight
            if best_load is None or load < best_load:
                best_load = load
                best_idx = i
        self._start = (self._start + 1) % n
        return best_idx


class TypeAwareBalancer(Balancer):
    """Reserve whole replicas per request type — DARC's idea one level up.

    ``assignment`` maps type id -> list of replica indices; unmapped
    types use ``default`` replicas.  Within a type's replica set, pick
    the least loaded (JSQ).
    """

    def __init__(
        self,
        servers: Sequence[Server],
        assignment: Dict[int, List[int]],
        default: Optional[List[int]] = None,
    ):
        super().__init__(servers)
        for type_id, replicas in assignment.items():
            if not replicas:
                raise ConfigurationError(f"type {type_id} has an empty replica set")
            for idx in replicas:
                if not 0 <= idx < len(servers):
                    raise ConfigurationError(f"replica index {idx} out of range")
        self.assignment = assignment
        self.default = default if default is not None else list(range(len(servers)))
        if not self.default:
            raise ConfigurationError("default replica set cannot be empty")

    def pick(self, request: Request) -> int:
        replicas = self.live_indices(self.assignment.get(request.type_id, self.default))
        best_idx = replicas[0]
        best_load = None
        for idx in replicas:
            server = self.servers[idx]
            load = server.pending + server.in_flight
            if best_load is None or load < best_load:
                best_load = load
                best_idx = idx
        return best_idx
