"""Cluster layer: replicated servers behind a load balancer."""

from .balancer import (
    Balancer,
    JoinShortestQueue,
    RandomBalancer,
    RoundRobinBalancer,
    TypeAwareBalancer,
)
from .cluster import ClusterResult, run_cluster

__all__ = [
    "Balancer",
    "RandomBalancer",
    "RoundRobinBalancer",
    "JoinShortestQueue",
    "TypeAwareBalancer",
    "ClusterResult",
    "run_cluster",
]
