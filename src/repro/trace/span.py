"""The span model: one request's journey through the pipeline.

A :class:`Span` is the traced lifetime of a single request *attempt*
(keyed by ``rid``): NIC ingress, the dispatcher/classifier pipeline, the
typed-queue wait, one or more on-core slices (preemptive policies and
crash-evicted requests produce several), and exactly one terminal state.

The stage decomposition (:meth:`Span.stages`) is exact by construction —
the four stage durations partition the request's sojourn time::

    latency = dispatch_pipeline + queue_wait + preempt_wait + service

which is what lets :class:`~repro.trace.breakdown.LatencyBreakdown`
attribute a p99.9 latency to the pipeline stage that produced it and the
tests reconcile traced spans against the Recorder's measured latencies.

All timestamps are monotonic *simulated* microseconds read from the
event loop; the tracing subsystem never consults a wall clock.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TraceError

# ----------------------------------------------------------------------
# terminal states
# ----------------------------------------------------------------------
#: The request finished application processing on a worker.
COMPLETE = "complete"
#: A scheduling policy's flow control rejected the request.
DROP = "drop"
#: The serial dispatcher's inbound queue overflowed (NIC ring drop).
DISPATCHER_DROP = "dispatcher_drop"

TERMINAL_STATES = (COMPLETE, DROP, DISPATCHER_DROP)

# ----------------------------------------------------------------------
# slice-closing kinds
# ----------------------------------------------------------------------
#: The slice ran to request completion.
SLICE_COMPLETE = "complete"
#: A preemptive policy sliced the request off the core (it re-queues).
SLICE_PREEMPT = "preempt"
#: The core crashed under the request (progress lost; requeue or drop).
SLICE_EVICT = "evict"

# ----------------------------------------------------------------------
# stage keys (the latency partition)
# ----------------------------------------------------------------------
STAGE_DISPATCH_PIPELINE = "dispatch_pipeline"
STAGE_QUEUE_WAIT = "queue_wait"
STAGE_PREEMPT_WAIT = "preempt_wait"
STAGE_SERVICE = "service"

STAGE_KEYS = (
    STAGE_DISPATCH_PIPELINE,
    STAGE_QUEUE_WAIT,
    STAGE_PREEMPT_WAIT,
    STAGE_SERVICE,
)


class Slice:
    """One contiguous occupancy of a worker core by a request."""

    __slots__ = ("worker_id", "begin", "end", "kind")

    def __init__(self, worker_id: int, begin: float):
        self.worker_id = worker_id
        self.begin = begin
        self.end: Optional[float] = None
        #: How the slice closed: SLICE_COMPLETE / SLICE_PREEMPT /
        #: SLICE_EVICT; None while the request is still on the core.
        self.kind: Optional[str] = None

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise TraceError(
                f"slice on worker {self.worker_id} beginning at "
                f"{self.begin:.3f}us is still open"
            )
        return self.end - self.begin

    def to_list(self) -> list:
        """Compact JSON form: [worker_id, begin, end, kind]."""
        return [self.worker_id, self.begin, self.end, self.kind]

    @classmethod
    def from_list(cls, data: list) -> "Slice":
        s = cls(int(data[0]), float(data[1]))
        s.end = None if data[2] is None else float(data[2])
        s.kind = data[3]
        return s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "open" if self.end is None else f"{self.end:.3f}"
        return f"Slice(w{self.worker_id}, {self.begin:.3f}->{end}, {self.kind})"


class Span:
    """The traced lifetime of one request attempt."""

    __slots__ = (
        "rid",
        "type_id",
        "classified_type",
        "arrival",
        "sched_at",
        "slices",
        "terminal",
        "terminal_time",
        "service_time",
        "overhead_us",
        "requeues",
        "attempt",
        "retry_of",
    )

    def __init__(self, rid: int, type_id: int, arrival: float, sched_at: float):
        self.rid = rid
        #: Ground-truth workload type.
        self.type_id = type_id
        #: Type the classifier assigned (may differ: misclassification).
        self.classified_type: Optional[int] = None
        #: Simulated time the request reached ``Server.ingress``.
        self.arrival = arrival
        #: Time the scheduler first saw it (after dispatcher + ingress
        #: pipeline); equals ``arrival`` when those costs are zero.
        self.sched_at = sched_at
        #: On-core occupancies, in chronological order.
        self.slices: List[Slice] = []
        #: Exactly one of TERMINAL_STATES once the attempt resolves.
        self.terminal: Optional[str] = None
        self.terminal_time: Optional[float] = None
        #: Pure application service time (slowdown denominator).
        self.service_time: float = 0.0
        #: Occupancy that was scheduling overhead, not service
        #: (preemption costs, steal costs, straggler surplus).
        self.overhead_us: float = 0.0
        #: Times the attempt re-entered the queues after a crash evict.
        self.requeues: int = 0
        #: 1-based attempt number (resilience layer retries).
        self.attempt: int = 1
        #: rid of the original attempt this one retries, if any.
        self.retry_of: Optional[int] = None

    # ------------------------------------------------------------------
    # recording (driven by the Tracer)
    # ------------------------------------------------------------------
    def open_slice(self, worker_id: int, now: float) -> None:
        if self.slices and self.slices[-1].open:
            raise TraceError(
                f"span rid={self.rid}: opening a slice on worker {worker_id} "
                f"while one is open on worker {self.slices[-1].worker_id}"
            )
        if self.terminal is not None:
            raise TraceError(
                f"span rid={self.rid}: dispatch after terminal state "
                f"{self.terminal!r}"
            )
        self.slices.append(Slice(worker_id, now))

    def close_slice(self, now: float, kind: str) -> None:
        if not self.slices or not self.slices[-1].open:
            raise TraceError(f"span rid={self.rid}: closing with no open slice")
        current = self.slices[-1]
        current.end = now
        current.kind = kind

    def set_terminal(self, state: str, now: float) -> None:
        """Record the attempt's single terminal transition.

        A second terminal transition is a conservation bug in the
        instrumented pipeline, so it raises rather than overwriting.
        """
        if state not in TERMINAL_STATES:
            raise TraceError(f"unknown terminal state {state!r}")
        if self.terminal is not None:
            raise TraceError(
                f"span rid={self.rid}: second terminal {state!r} at "
                f"{now:.3f}us (already {self.terminal!r} at "
                f"{self.terminal_time})"
            )
        self.terminal = state
        self.terminal_time = now

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.terminal == COMPLETE

    @property
    def latency(self) -> float:
        """Sojourn time; raises unless the attempt completed."""
        if self.terminal != COMPLETE or self.terminal_time is None:
            raise TraceError(f"span rid={self.rid} did not complete")
        return self.terminal_time - self.arrival

    def stages(self) -> Dict[str, float]:
        """Exact per-stage decomposition of a completed span's latency.

        ``service`` is total on-core occupancy (including overheads —
        the core was held either way); ``overhead_us`` on the span says
        how much of it was waste.  The four values sum to
        :attr:`latency` exactly.
        """
        if self.terminal != COMPLETE:
            raise TraceError(
                f"span rid={self.rid}: stage decomposition needs a "
                f"completed span, not {self.terminal!r}"
            )
        if not self.slices:
            raise TraceError(f"span rid={self.rid} completed without a slice")
        first_begin = self.slices[0].begin
        oncore = 0.0
        between = 0.0
        prev_end: Optional[float] = None
        for s in self.slices:
            oncore += s.duration
            if prev_end is not None:
                between += s.begin - prev_end
            prev_end = s.end
        return {
            STAGE_DISPATCH_PIPELINE: self.sched_at - self.arrival,
            STAGE_QUEUE_WAIT: first_begin - self.sched_at,
            STAGE_PREEMPT_WAIT: between,
            STAGE_SERVICE: oncore,
        }

    def preemptions(self) -> int:
        return sum(1 for s in self.slices if s.kind == SLICE_PREEMPT)

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "rid": self.rid,
            "type_id": self.type_id,
            "classified_type": self.classified_type,
            "arrival": self.arrival,
            "sched_at": self.sched_at,
            "slices": [s.to_list() for s in self.slices],
            "terminal": self.terminal,
            "terminal_time": self.terminal_time,
            "service_time": self.service_time,
            "overhead_us": self.overhead_us,
            "requeues": self.requeues,
            "attempt": self.attempt,
            "retry_of": self.retry_of,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            int(data["rid"]),
            int(data["type_id"]),
            float(data["arrival"]),
            float(data["sched_at"]),
        )
        span.classified_type = data.get("classified_type")
        span.slices = [Slice.from_list(s) for s in data.get("slices", [])]
        span.terminal = data.get("terminal")
        tt = data.get("terminal_time")
        span.terminal_time = None if tt is None else float(tt)
        span.service_time = float(data.get("service_time", 0.0))
        span.overhead_us = float(data.get("overhead_us", 0.0))
        span.requeues = int(data.get("requeues", 0))
        span.attempt = int(data.get("attempt", 1))
        span.retry_of = data.get("retry_of")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = self.terminal or "open"
        return (
            f"Span(rid={self.rid}, type={self.type_id}, t={self.arrival:.3f}, "
            f"slices={len(self.slices)}, {state})"
        )
