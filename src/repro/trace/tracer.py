"""The :class:`Tracer` — opt-in, zero-overhead-when-off observability.

One tracer instance observes one run: it is installed onto the event
loop, server, scheduler, classifier and (optionally) fault injector via
:meth:`Tracer.install`, after which every instrumentation site feeds it:

* **spans** — per-request lifecycle events (ingress, classification,
  dispatch, preemption slices, eviction, completion/drop);
* **decisions** — the scheduler decision log: DARC reservation
  recomputations (Algorithm 2 inputs and outputs), work-steal attempts,
  preemptions, and fault events from :mod:`repro.faults`;
* **samples** — periodic queue-depth / worker-state snapshots.

Sampling is piggybacked on executed events (the loop notifies the tracer
after each one, mirroring the sanitizer hook) rather than scheduled as
events of its own, so an armed tracer adds *nothing* to the event heap:
the simulated event sequence — and therefore every recorded latency —
is bit-identical with tracing on or off.  With no tracer attached each
hook site costs a single ``is None`` test.

Determinism: the tracer reads only ``EventLoop.now`` and the objects it
observes; it never consults a wall clock, never draws randomness, and
never mutates simulation state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import TraceError
from .monitor import TailMonitor
from .span import (
    COMPLETE,
    DISPATCHER_DROP,
    DROP,
    SLICE_COMPLETE,
    SLICE_EVICT,
    SLICE_PREEMPT,
    Span,
)

#: Default simulated-time distance between queue/worker samples (us).
DEFAULT_SAMPLE_INTERVAL_US = 100.0


class Decision:
    """One entry in the scheduler decision log."""

    __slots__ = ("time", "kind", "payload")

    def __init__(self, time: float, kind: str, payload: Dict[str, Any]):
        self.time = time
        self.kind = kind
        self.payload = payload

    def to_list(self) -> list:
        return [self.time, self.kind, self.payload]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Decision({self.time:.3f}us, {self.kind}, {self.payload})"


class WorkerSample:
    """One periodic snapshot of queue depths and worker states."""

    __slots__ = ("time", "pending", "busy", "free", "failed", "queue_depths")

    def __init__(
        self,
        time: float,
        pending: int,
        busy: int,
        free: int,
        failed: int,
        queue_depths: Optional[Dict[int, int]] = None,
    ):
        self.time = time
        #: Requests queued at the scheduler (not being served).
        self.pending = pending
        self.busy = busy
        self.free = free
        self.failed = failed
        #: Per-typed-queue depth for policies that expose typed queues.
        self.queue_depths = queue_depths

    def to_list(self) -> list:
        return [
            self.time,
            self.pending,
            self.busy,
            self.free,
            self.failed,
            self.queue_depths,
        ]


class Tracer:
    """Records spans, scheduler decisions and periodic samples for one run."""

    def __init__(
        self,
        sample_interval_us: float = DEFAULT_SAMPLE_INTERVAL_US,
        tail_pct: float = 99.9,
    ):
        if sample_interval_us <= 0:
            raise TraceError(
                f"sample_interval_us must be > 0, got {sample_interval_us}"
            )
        self.sample_interval_us = sample_interval_us
        self.spans: Dict[int, Span] = {}
        #: Insertion-ordered rids, for deterministic export order.
        self._rid_order: List[int] = []
        self.decisions: List[Decision] = []
        self.samples: List[WorkerSample] = []
        #: Streaming per-type tail estimates over completed spans.
        self.tail_monitor = TailMonitor(pct=tail_pct)
        self._loop = None
        self._server = None
        self._last_sample_at: Optional[float] = None
        # Aggregate counters (cheap reconciliation without walking spans).
        self.spans_opened = 0
        self.completions = 0
        self.drops = 0
        self.dispatcher_drops = 0
        self.preempt_slices = 0
        self.evictions = 0
        self.steal_attempts = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, loop, server, injector=None, attach_loop: bool = True) -> None:
        """Attach this tracer to a loop + server (+ optional injector).

        Idempotent per run; a tracer observes exactly one run.

        ``attach_loop=False`` wires the server hooks but leaves the
        loop's single tracer slot free — for multiplexers like
        :class:`repro.rack.tracing.RackTracer` that occupy the slot
        themselves and forward :meth:`on_loop_event` to each replica's
        tracer.
        """
        if self._loop is not None:
            raise TraceError("tracer already installed; use one tracer per run")
        self._loop = loop
        self._server = server
        self._last_sample_at = loop.now
        if attach_loop:
            loop.attach_tracer(self)
        server.attach_tracer(self)
        if injector is not None:
            injector.attach_tracer(self)

    @property
    def now(self) -> float:
        assert self._loop is not None, "tracer not installed"
        return self._loop.now

    def _span(self, rid: int) -> Span:
        span = self.spans.get(rid)
        if span is None:
            raise TraceError(f"no span open for rid={rid}")
        return span

    # ------------------------------------------------------------------
    # span hooks (called from server / policies / classifier)
    # ------------------------------------------------------------------
    def on_ingress(self, request, sched_at: float) -> None:
        """``request`` reached ``Server.ingress``; the dispatcher will
        hand it to the scheduler at ``sched_at``."""
        now = self.now
        rid = request.rid
        if rid in self.spans:
            raise TraceError(f"duplicate ingress for rid={rid}")
        span = Span(rid, request.type_id, now, sched_at)
        span.service_time = request.service_time
        span.attempt = request.attempt
        span.retry_of = request.retry_of
        self.spans[rid] = span
        self._rid_order.append(rid)
        self.spans_opened += 1

    def on_dispatcher_drop(self, request) -> None:
        """The dispatcher's inbound queue overflowed (NIC ring drop)."""
        now = self.now
        span = self._span(request.rid)
        span.sched_at = now  # it never reached the scheduler
        span.set_terminal(DISPATCHER_DROP, now)
        self.dispatcher_drops += 1

    def on_classified(self, request, type_id: int) -> None:
        """The request classifier assigned ``type_id`` on the dispatch path."""
        span = self.spans.get(request.rid)
        if span is not None:
            span.classified_type = type_id

    def on_dispatch(self, request, worker) -> None:
        """``request`` started (or resumed) service on ``worker``."""
        self._span(request.rid).open_slice(worker.worker_id, self.now)

    def on_preempt(self, request, worker, overhead_us: float) -> None:
        """A preemptive policy sliced ``request`` off ``worker``."""
        span = self._span(request.rid)
        span.close_slice(self.now, SLICE_PREEMPT)
        span.overhead_us += overhead_us
        self.preempt_slices += 1
        self.decisions.append(
            Decision(
                self.now,
                "preempt",
                {
                    "rid": request.rid,
                    "worker": worker.worker_id,
                    "overhead_us": overhead_us,
                },
            )
        )

    def on_evict(self, request, worker, requeued: bool) -> None:
        """``worker`` crashed under ``request``; progress is lost."""
        span = self._span(request.rid)
        span.close_slice(self.now, SLICE_EVICT)
        if requeued:
            span.requeues += 1
        self.evictions += 1

    def on_complete(self, request, worker) -> None:
        """``request`` finished application processing on ``worker``."""
        now = self.now
        span = self._span(request.rid)
        span.close_slice(now, SLICE_COMPLETE)
        span.overhead_us = request.overhead_time
        span.set_terminal(COMPLETE, now)
        self.completions += 1
        self.tail_monitor.observe(span.type_id, span.latency)

    def on_drop(self, request) -> None:
        """A scheduling policy's flow control rejected ``request``."""
        span = self.spans.get(request.rid)
        if span is None:
            # A policy may drop a request the server never ingressed
            # (unit-test harnesses feed schedulers directly); nothing to
            # close.
            return
        span.set_terminal(DROP, self.now)
        self.drops += 1

    # ------------------------------------------------------------------
    # scheduler decision log
    # ------------------------------------------------------------------
    def on_decision(self, kind: str, **payload: Any) -> None:
        """Append one scheduler/fault decision at the current sim time."""
        self.decisions.append(Decision(self.now, kind, payload))
        if kind == "steal":
            self.steal_attempts += 1

    def on_reservation(
        self,
        entries: List[Tuple[int, float, float]],
        reserved_counts: Dict[int, int],
        spillway_worker: Optional[int],
        n_workers: int,
    ) -> None:
        """A DARC reservation recomputation: Algorithm 2's inputs (the
        profiled (type, mean service, ratio) entries) and outputs (the
        per-type reserved worker counts + spillway)."""
        self.on_decision(
            "reservation",
            entries=[[int(t), float(s), float(r)] for (t, s, r) in entries],
            reserved={int(k): int(v) for k, v in reserved_counts.items()},
            spillway=spillway_worker,
            n_workers=n_workers,
        )

    def on_fault(self, kind: str, **payload: Any) -> None:
        """A fault-injection event (crash/recover/slowdown/packet fault)."""
        self.on_decision(f"fault.{kind}", **payload)

    # ------------------------------------------------------------------
    # periodic sampling (piggybacked on executed events)
    # ------------------------------------------------------------------
    def on_loop_event(self, loop) -> None:
        """Notified by the event loop after every executed event."""
        now = loop.now
        if (
            self._last_sample_at is not None
            and now - self._last_sample_at < self.sample_interval_us
        ):
            return
        self._last_sample_at = now
        self._take_sample(now)

    def _take_sample(self, now: float) -> None:
        server = self._server
        if server is None:
            return
        busy = free = failed = 0
        for w in server.workers:
            if w.failed:
                failed += 1
            elif w.current is not None:
                busy += 1
            else:
                free += 1
        scheduler = server.scheduler
        depths: Optional[Dict[int, int]] = None
        queues = getattr(scheduler, "queues", None)
        if isinstance(queues, dict):
            depths = {
                int(tid): len(queues[tid]) for tid in sorted(queues) if queues[tid]
            }
        self.samples.append(
            WorkerSample(now, scheduler.pending_count(), busy, free, failed, depths)
        )

    # ------------------------------------------------------------------
    # reconciliation / views
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        """Completed spans in ingress order."""
        return [
            self.spans[rid]
            for rid in self._rid_order
            if self.spans[rid].terminal == COMPLETE
        ]

    def open_spans(self) -> List[Span]:
        """Spans with no terminal state (in-flight at trace capture)."""
        return [
            self.spans[rid]
            for rid in self._rid_order
            if self.spans[rid].terminal is None
        ]

    def terminal_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {COMPLETE: 0, DROP: 0, DISPATCHER_DROP: 0, "open": 0}
        for rid in self._rid_order:
            counts[self.spans[rid].terminal or "open"] += 1
        return counts

    def reconcile(self, recorder) -> Dict[str, Any]:
        """Check span conservation against a Recorder's ledger.

        A span completes exactly when the server signals a completion; a
        Recorder behind a resilience layer books orphaned completions as
        ``late_completions`` instead of rows, so::

            spans(complete) == recorder.completed + recorder.late_completions
            spans(drop) + spans(dispatcher_drop) == recorder.dropped
        """
        counts = self.terminal_counts()
        expected_complete = recorder.completed + recorder.late_completions
        expected_dropped = recorder.dropped
        ok = (
            counts[COMPLETE] == expected_complete
            and counts[DROP] + counts[DISPATCHER_DROP] == expected_dropped
        )
        return {
            "ok": ok,
            "spans_complete": counts[COMPLETE],
            "recorder_complete": recorder.completed,
            "recorder_late_completions": recorder.late_completions,
            "spans_dropped": counts[DROP] + counts[DISPATCHER_DROP],
            "recorder_dropped": expected_dropped,
            "spans_open": counts["open"],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(spans={len(self.spans)}, decisions={len(self.decisions)}, "
            f"samples={len(self.samples)})"
        )
