"""``repro-trace`` — summarize, convert and validate trace files.

Usage::

    repro-trace summary run.trace.json            # span/decision digest
    repro-trace breakdown run.trace.json --pct 99.9
    repro-trace validate run.trace.json           # Perfetto schema check
    repro-trace convert run.trace.json spans.csv  # flat CSV
    repro-trace smoke --out smoke.trace.json      # run a small traced
                                                  # figure4-style experiment

Exit codes: 0 ok, 1 validation/reconciliation failure, 2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import TraceError
from .breakdown import LatencyBreakdown
from .export import load_trace, spans_to_csv, validate_chrome_trace
from .span import COMPLETE


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Per-request span traces for the Persephone reproduction: "
        "summarize, decompose, validate and convert trace files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="print a span/decision/sample digest")
    p.add_argument("path", help="trace file written with --trace / write_trace")

    p = sub.add_parser("breakdown", help="per-type latency-stage decomposition")
    p.add_argument("path")
    p.add_argument("--pct", type=float, default=99.9, help="tail percentile")
    p.add_argument(
        "--warmup-frac", type=float, default=0.0,
        help="drop the earliest-arriving fraction of spans first",
    )

    p = sub.add_parser("validate", help="check the Perfetto/Chrome event layer")
    p.add_argument("path")

    p = sub.add_parser("convert", help="write the spans as a CSV table")
    p.add_argument("path")
    p.add_argument("out", help="output CSV path")

    p = sub.add_parser(
        "smoke",
        help="run one small traced figure4-style experiment and write its trace",
    )
    p.add_argument("--out", default="smoke.trace.json", help="trace output path")
    p.add_argument("--n-requests", type=int, default=6000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--utilization", type=float, default=0.95)
    return parser


def _fmt_counters(counters: dict) -> str:
    return ", ".join(f"{key}={value}" for key, value in counters.items())


def cmd_summary(args: argparse.Namespace) -> int:
    doc = load_trace(args.path)
    terminal = {"complete": 0, "drop": 0, "dispatcher_drop": 0, "open": 0}
    for span in doc.spans:
        terminal[span.terminal or "open"] += 1
    lines = [f"trace: {args.path}"]
    if doc.meta:
        lines.append("meta: " + _fmt_counters(doc.meta))
    lines.append(
        f"spans: {len(doc.spans)} "
        f"(complete={terminal['complete']}, drop={terminal['drop']}, "
        f"dispatcher_drop={terminal['dispatcher_drop']}, open={terminal['open']})"
    )
    lines.append(f"decisions: {len(doc.decisions)}")
    kinds: dict = {}
    for entry in doc.decisions:
        kinds[entry[1]] = kinds.get(entry[1], 0) + 1
    for kind in sorted(kinds):
        lines.append(f"  {kind}: {kinds[kind]}")
    lines.append(f"samples: {len(doc.samples)}")
    if doc.tail_monitor:
        lines.append("streaming tail estimates (P2):")
        for key in sorted(doc.tail_monitor):
            est = doc.tail_monitor[key]
            lines.append(
                f"  {key}: p{est['pct']} ~= {est['estimate']:.1f}us "
                f"(n={est['count']})"
            )
    status = 0
    if doc.recorder is not None:
        lines.append("recorder: " + _fmt_counters(doc.recorder))
    if doc.reconciliation is not None:
        verdict = "OK" if doc.reconciliation.get("ok") else "MISMATCH"
        lines.append(f"span/recorder reconciliation: {verdict}")
        if not doc.reconciliation.get("ok"):
            lines.append("  " + _fmt_counters(doc.reconciliation))
            status = 1
    print("\n".join(lines))
    return status


def cmd_breakdown(args: argparse.Namespace) -> int:
    doc = load_trace(args.path)
    completed = [s for s in doc.spans if s.terminal == COMPLETE]
    if not completed:
        print("no completed spans in trace")
        return 1
    breakdown = LatencyBreakdown(
        completed, pct=args.pct, warmup_frac=args.warmup_frac
    )
    breakdown.verify()
    print(breakdown.render())
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    doc = load_trace(args.path)
    problems = validate_chrome_trace(doc.raw)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"INVALID: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(doc.trace_events)} trace events validate")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    doc = load_trace(args.path)
    with open(args.out, "w", newline="") as fp:
        rows = spans_to_csv(doc.spans, fp)
    print(f"wrote {rows} spans to {args.out}")
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    # Imported lazily: experiments.common itself imports repro.trace.
    from ..experiments.common import run_once
    from ..systems.persephone import PersephoneStaticSystem
    from ..workload.presets import high_bimodal

    system = PersephoneStaticSystem(n_reserved=1, n_workers=14, name="DARC-static(1)")
    result = run_once(
        system,
        high_bimodal(),
        args.utilization,
        n_requests=args.n_requests,
        seed=args.seed,
        trace_path=args.out,
        trace_meta={"experiment": "figure4-style smoke"},
    )
    assert result.tracer is not None
    recon = result.tracer.reconcile(result.server.recorder)
    print(
        f"wrote {args.out}: {len(result.tracer.spans)} spans, "
        f"{len(result.tracer.decisions)} decisions, "
        f"{len(result.tracer.samples)} samples"
    )
    if not recon["ok"] or recon["spans_open"]:
        print("span/recorder reconciliation FAILED: " + _fmt_counters(recon))
        return 1
    print("span/recorder reconciliation OK")
    return 0


_COMMANDS = {
    "summary": cmd_summary,
    "breakdown": cmd_breakdown,
    "validate": cmd_validate,
    "convert": cmd_convert,
    "smoke": cmd_smoke,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
