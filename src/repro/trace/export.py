"""Trace exporters: Chrome trace-event / Perfetto JSON and CSV.

One trace file carries two layers:

* ``traceEvents`` — the Chrome trace-event array (timestamps already in
  microseconds, the format's native unit), loadable directly in
  `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``.  Worker
  occupancy renders as duration slices per core, queue/pipeline waits as
  slices per request type, scheduler decisions as instant events, and
  the periodic samples as counter tracks.
* ``repro`` — the lossless native section (versioned): every span,
  decision and sample, plus the Recorder's ledger, so ``repro-trace``
  can re-derive breakdowns and reconciliations from the file alone.

Perfetto ignores unknown top-level keys, so a single file serves both
consumers.  :func:`validate_chrome_trace` is the schema check CI runs on
the smoke trace.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Any, Dict, Iterable, List, Optional

from ..errors import TraceError
from .span import COMPLETE, STAGE_KEYS, Span

#: Native-section schema version; bump on incompatible layout changes.
NATIVE_VERSION = 1

#: Synthetic process ids for the three event lanes.
PID_WORKERS = 0
PID_QUEUES = 1
PID_SCHEDULER = 2

#: Event phases this exporter emits (and the validator accepts).
_KNOWN_PHASES = frozenset({"X", "i", "I", "C", "M", "B", "E"})


# ----------------------------------------------------------------------
# Chrome trace-event construction
# ----------------------------------------------------------------------
def _metadata_events(worker_ids: List[int], type_ids: List[int]) -> List[dict]:
    events: List[dict] = [
        {"ph": "M", "pid": PID_WORKERS, "name": "process_name",
         "args": {"name": "workers"}},
        {"ph": "M", "pid": PID_QUEUES, "name": "process_name",
         "args": {"name": "request pipeline"}},
        {"ph": "M", "pid": PID_SCHEDULER, "name": "process_name",
         "args": {"name": "scheduler"}},
    ]
    for wid in worker_ids:
        events.append(
            {"ph": "M", "pid": PID_WORKERS, "tid": wid, "name": "thread_name",
             "args": {"name": f"worker {wid}"}}
        )
    for tid in type_ids:
        events.append(
            {"ph": "M", "pid": PID_QUEUES, "tid": tid, "name": "thread_name",
             "args": {"name": f"type {tid}"}}
        )
    return events


def _span_events(span: Span) -> List[dict]:
    events: List[dict] = []
    tname = f"type{span.type_id}"
    lane = span.type_id
    # Pipeline + queue + resume waits on the type lane.
    if span.sched_at > span.arrival:
        events.append(
            {"ph": "X", "pid": PID_QUEUES, "tid": lane, "name": "dispatch_pipeline",
             "cat": "wait", "ts": span.arrival, "dur": span.sched_at - span.arrival,
             "args": {"rid": span.rid}}
        )
    prev_end: Optional[float] = None
    for i, s in enumerate(span.slices):
        wait_from = span.sched_at if i == 0 else prev_end
        wait_name = "queue_wait" if i == 0 else "preempt_wait"
        if wait_from is not None and s.begin > wait_from:
            events.append(
                {"ph": "X", "pid": PID_QUEUES, "tid": lane, "name": wait_name,
                 "cat": "wait", "ts": wait_from, "dur": s.begin - wait_from,
                 "args": {"rid": span.rid}}
            )
        end = s.end if s.end is not None else s.begin
        events.append(
            {"ph": "X", "pid": PID_WORKERS, "tid": s.worker_id, "name": tname,
             "cat": "service", "ts": s.begin, "dur": end - s.begin,
             "args": {"rid": span.rid, "end": s.kind or "open"}}
        )
        prev_end = s.end
    if span.terminal is not None and span.terminal != COMPLETE:
        events.append(
            {"ph": "i", "pid": PID_QUEUES, "tid": lane, "name": span.terminal,
             "cat": "drop", "ts": span.terminal_time, "s": "t",
             "args": {"rid": span.rid}}
        )
    return events


def build_trace_events(tracer) -> List[dict]:
    """The Chrome trace-event array for one tracer's recordings."""
    worker_ids: List[int] = []
    type_ids: List[int] = []
    spans = [tracer.spans[rid] for rid in tracer._rid_order]
    seen_w: Dict[int, bool] = {}
    seen_t: Dict[int, bool] = {}
    for span in spans:
        if span.type_id not in seen_t:
            seen_t[span.type_id] = True
            type_ids.append(span.type_id)
        for s in span.slices:
            if s.worker_id not in seen_w:
                seen_w[s.worker_id] = True
                worker_ids.append(s.worker_id)
    events = _metadata_events(sorted(worker_ids), sorted(type_ids))
    for span in spans:
        events.extend(_span_events(span))
    for decision in tracer.decisions:
        events.append(
            {"ph": "i", "pid": PID_SCHEDULER, "tid": 0, "name": decision.kind,
             "cat": "decision", "ts": decision.time, "s": "p",
             "args": decision.payload}
        )
    for sample in tracer.samples:
        events.append(
            {"ph": "C", "pid": PID_SCHEDULER, "name": "queue depth",
             "ts": sample.time, "args": {"pending": sample.pending}}
        )
        events.append(
            {"ph": "C", "pid": PID_SCHEDULER, "name": "workers",
             "ts": sample.time,
             "args": {"busy": sample.busy, "free": sample.free,
                      "failed": sample.failed}}
        )
    return events


# ----------------------------------------------------------------------
# whole-document write / read
# ----------------------------------------------------------------------
def build_document(
    tracer, recorder=None, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Assemble the full trace document (Chrome layer + native layer)."""
    native: Dict[str, Any] = {
        "version": NATIVE_VERSION,
        "meta": dict(meta) if meta else {},
        "spans": [tracer.spans[rid].to_dict() for rid in tracer._rid_order],
        "decisions": [d.to_list() for d in tracer.decisions],
        "samples": [s.to_list() for s in tracer.samples],
        "tail_monitor": tracer.tail_monitor.snapshot(),
        "counters": {
            "spans_opened": tracer.spans_opened,
            "completions": tracer.completions,
            "drops": tracer.drops,
            "dispatcher_drops": tracer.dispatcher_drops,
            "preempt_slices": tracer.preempt_slices,
            "evictions": tracer.evictions,
            "steal_attempts": tracer.steal_attempts,
        },
    }
    if recorder is not None:
        native["recorder"] = {
            "completed": recorder.completed,
            "dropped": recorder.dropped,
            **recorder.orphan_counters(),
        }
        native["reconciliation"] = tracer.reconcile(recorder)
    return {
        "traceEvents": build_trace_events(tracer),
        "displayTimeUnit": "ms",
        "repro": native,
    }


def write_trace(
    path: str, tracer, recorder=None, meta: Optional[Dict[str, Any]] = None
) -> str:
    """Write one tracer's recordings as a Perfetto-loadable JSON file."""
    document = build_document(tracer, recorder=recorder, meta=meta)
    with open(path, "w") as fp:
        json.dump(document, fp, separators=(",", ":"), allow_nan=False)
    return path


class TraceDocument:
    """A parsed trace file (native layer re-hydrated)."""

    def __init__(self, raw: Dict[str, Any]):
        self.raw = raw
        native = raw.get("repro")
        if native is None:
            raise TraceError("trace file has no 'repro' native section")
        version = native.get("version")
        if version != NATIVE_VERSION:
            raise TraceError(
                f"unsupported native trace version {version!r} "
                f"(this build reads {NATIVE_VERSION})"
            )
        self.meta: Dict[str, Any] = native.get("meta", {})
        self.spans: List[Span] = [Span.from_dict(d) for d in native.get("spans", [])]
        self.decisions: List[list] = native.get("decisions", [])
        self.samples: List[list] = native.get("samples", [])
        self.counters: Dict[str, int] = native.get("counters", {})
        self.recorder: Optional[Dict[str, int]] = native.get("recorder")
        self.reconciliation: Optional[Dict[str, Any]] = native.get("reconciliation")
        self.tail_monitor: Dict[str, Any] = native.get("tail_monitor", {})

    @property
    def trace_events(self) -> List[dict]:
        return self.raw.get("traceEvents", [])


def load_trace(path: str) -> TraceDocument:
    """Parse a trace file written by :func:`write_trace`."""
    try:
        with open(path) as fp:
            raw = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}") from exc
    if not isinstance(raw, dict):
        raise TraceError(f"trace file {path!r} is not a JSON object")
    return TraceDocument(raw)


# ----------------------------------------------------------------------
# schema validation (the CI gate)
# ----------------------------------------------------------------------
def validate_chrome_trace(document: Any) -> List[str]:
    """Validate the Chrome trace-event layer; returns a list of problems
    (empty = valid).  Checks the structural contract Perfetto's JSON
    importer relies on rather than a full spec: phases, timestamps,
    durations, and lane ids."""
    errors: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' is missing or not an array"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            errors.append(f"{where}: pid must be an integer")
        if ph == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: metadata event needs args")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a number >= 0, got {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a number >= 0, got {dur!r}")
            if not isinstance(event.get("tid"), int):
                errors.append(f"{where}: duration event needs an integer tid")
        if ph == "C" and not isinstance(event.get("args"), dict):
            errors.append(f"{where}: counter event needs numeric args")
    return errors


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
_CSV_COLUMNS = [
    "rid", "type_id", "classified_type", "arrival", "sched_at", "terminal",
    "terminal_time", "latency", *STAGE_KEYS, "overhead_us", "n_slices",
    "requeues", "attempt", "retry_of",
]


def spans_to_csv(spans: Iterable[Span], fp: IO[str]) -> int:
    """Flat per-span table; stage columns are empty for non-completed
    attempts (their partition is undefined).  Returns rows written."""
    writer = csv.writer(fp)
    writer.writerow(_CSV_COLUMNS)
    rows = 0
    for span in spans:
        if span.terminal == COMPLETE:
            stages = span.stages()
            latency: Any = span.latency
            stage_values = [stages[key] for key in STAGE_KEYS]
        else:
            latency = ""
            stage_values = ["" for _ in STAGE_KEYS]
        writer.writerow(
            [
                span.rid, span.type_id,
                "" if span.classified_type is None else span.classified_type,
                span.arrival, span.sched_at, span.terminal or "open",
                "" if span.terminal_time is None else span.terminal_time,
                latency, *stage_values, span.overhead_us, len(span.slices),
                span.requeues, span.attempt,
                "" if span.retry_of is None else span.retry_of,
            ]
        )
        rows += 1
    return rows
