"""Streaming tail monitoring for long (chaos) runs.

:class:`TailMonitor` keeps one :class:`~repro.metrics.percentiles.P2Quantile`
estimator per request type plus one overall, so a multi-hour chaos run
can expose a live p99.9 without storing every latency sample.  The P²
markers are O(1) memory and O(1) per update; accuracy against the exact
array percentile is covered by ``tests/trace/test_monitor.py`` on
heavy-tailed (bimodal / lognormal) samples.

The monitor is fed by :meth:`Tracer.on_complete`, but is equally usable
standalone as a completion sink.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import TraceError
from ..metrics.percentiles import P2Quantile

#: Pseudo type id for the across-all-types estimator.
OVERALL = -2


class TailMonitor:
    """Per-type streaming quantile estimates of completed-request latency."""

    def __init__(self, pct: float = 99.9):
        if not 0.0 < pct < 100.0:
            raise TraceError(f"pct must be in (0,100), got {pct}")
        self.pct = pct
        self._q = pct / 100.0
        self._estimators: Dict[int, P2Quantile] = {OVERALL: P2Quantile(self._q)}

    def observe(self, type_id: int, latency_us: float) -> None:
        """Feed one completed request's latency."""
        est = self._estimators.get(type_id)
        if est is None:
            est = P2Quantile(self._q)
            self._estimators[type_id] = est
        est.update(latency_us)
        self._estimators[OVERALL].update(latency_us)

    def estimate(self, type_id: Optional[int] = None) -> float:
        """Current tail estimate for ``type_id`` (None = across all
        types); NaN before any samples of that type."""
        est = self._estimators.get(OVERALL if type_id is None else type_id)
        return float("nan") if est is None else est.value()

    def count(self, type_id: Optional[int] = None) -> int:
        est = self._estimators.get(OVERALL if type_id is None else type_id)
        return 0 if est is None else est.count

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-friendly {type: {pct, estimate, count}} digest."""
        out: Dict[str, Dict[str, float]] = {}
        for tid in sorted(self._estimators):
            est = self._estimators[tid]
            key = "overall" if tid == OVERALL else str(tid)
            out[key] = {
                "pct": self.pct,
                "estimate": est.value(),
                "count": est.count,
            }
        return out

    def register_gauges(self, registry) -> None:
        """Publish the streaming estimates as telemetry gauges.

        Registers a pull source on a
        :class:`~repro.telemetry.registry.MetricsRegistry`: at every
        scrape, each type with at least one sample exports its current
        P² tail estimate as ``repro_tail_latency_us{pct=...,type=...}``
        (plus the cross-type ``type="overall"`` series), so streaming
        tails appear on the dashboard without storing raw samples.
        """
        pct_label = f"{self.pct:g}"

        def sample(reg, now: float) -> None:
            for tid in sorted(self._estimators):
                est = self._estimators[tid]
                if est.count == 0:
                    continue
                key = "overall" if tid == OVERALL else str(tid)
                reg.gauge(
                    "repro_tail_latency_us",
                    "Streaming P2 tail-latency estimate, by type.",
                    pct=pct_label,
                    type=key,
                ).set(est.value())

        registry.register_source(sample)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TailMonitor(p{self.pct}, types={len(self._estimators) - 1}, "
            f"n={self.count()})"
        )
