"""Per-request span tracing and scheduler-decision observability.

Opt-in and zero-overhead when off: construct a :class:`Tracer`, install
it on a run (``run_once(..., tracer=...)`` or :meth:`Tracer.install`),
and every request's pipeline journey, every DARC reservation decision,
steal attempt, preemption and fault event, plus periodic queue/worker
samples, are recorded against monotonic simulated time.  Export with
:func:`write_trace` (Perfetto-loadable JSON + lossless native layer) or
:func:`spans_to_csv`; analyze with :class:`LatencyBreakdown`
(percentile → per-stage attribution) and :class:`TailMonitor`
(streaming P² tail estimates).  The ``repro-trace`` CLI summarizes,
converts and validates trace files.
"""

from .breakdown import LatencyBreakdown, StageBreakdown
from .export import (
    TraceDocument,
    build_document,
    build_trace_events,
    load_trace,
    spans_to_csv,
    validate_chrome_trace,
    write_trace,
)
from .monitor import TailMonitor
from .span import (
    COMPLETE,
    DISPATCHER_DROP,
    DROP,
    STAGE_KEYS,
    TERMINAL_STATES,
    Slice,
    Span,
)
from .tracer import Decision, Tracer, WorkerSample

__all__ = [
    "Tracer",
    "Decision",
    "WorkerSample",
    "Span",
    "Slice",
    "COMPLETE",
    "DROP",
    "DISPATCHER_DROP",
    "TERMINAL_STATES",
    "STAGE_KEYS",
    "LatencyBreakdown",
    "StageBreakdown",
    "TailMonitor",
    "TraceDocument",
    "build_document",
    "build_trace_events",
    "load_trace",
    "spans_to_csv",
    "validate_chrome_trace",
    "write_trace",
]
