"""Latency-breakdown analysis: *where* does a percentile live?

The paper's argument is about attribution — short requests lose their
tail to time spent queued behind long requests, not to service itself.
:class:`LatencyBreakdown` makes that attribution explicit: for any
percentile (notably p99.9) it decomposes a run's per-type tail into the
four exact pipeline stages of :meth:`repro.trace.span.Span.stages`:

* ``dispatch_pipeline`` — NIC ingress through dispatcher + classifier;
* ``queue_wait``        — time in the typed queue before first service;
* ``preempt_wait``      — re-queued time between service slices;
* ``service``           — on-core occupancy (including overheads).

Per request the four stages sum to its measured latency exactly, so the
decomposition reconciles against the Recorder's numbers to float
precision.  Tail estimates are gated on
:func:`~repro.metrics.percentiles.tail_credible`, mirroring the summary
layer: a p99.9 over 500 samples is one noisy order statistic, and the
breakdown flags it rather than report it as truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..errors import TraceError
from ..metrics.percentiles import percentile, tail_credible
from .span import COMPLETE, STAGE_KEYS, Span


class StageBreakdown:
    """One request type's tail decomposition at a given percentile."""

    def __init__(self, type_id: int, spans: List[Span], pct: float, name: str = ""):
        self.type_id = type_id
        self.name = name or f"type{type_id}"
        self.pct = pct
        self.count = len(spans)
        self.tail_credible = tail_credible(self.count, pct)
        if not spans:
            raise TraceError(f"no completed spans for type {type_id}")
        latencies = np.asarray([s.latency for s in spans], dtype=np.float64)
        self.tail_latency = percentile(latencies, pct)
        self.mean_latency = float(latencies.mean())
        # The request realizing the percentile: the completed span whose
        # latency is nearest the interpolated percentile value.  Its
        # stage decomposition is exact (stages sum to its latency).
        nearest = int(np.argmin(np.abs(latencies - self.tail_latency)))
        self.tail_span = spans[nearest]
        self.tail_stages: Dict[str, float] = self.tail_span.stages()
        #: Mean stage durations over the tail set (latency >= pct value)
        #: — the "what does a tail request's life look like" view.
        tail_mask = latencies >= self.tail_latency
        tail_spans = [s for s, hit in zip(spans, tail_mask) if hit] or [self.tail_span]
        self.tail_mean_stages = _mean_stages(tail_spans)
        #: Mean stage durations over every completed request of the type.
        self.mean_stages = _mean_stages(spans)

    def dominant_stage(self) -> str:
        """The stage holding the largest share of the tail request."""
        return max(STAGE_KEYS, key=lambda k: self.tail_stages[k])

    def to_dict(self) -> dict:
        return {
            "type_id": self.type_id,
            "name": self.name,
            "pct": self.pct,
            "count": self.count,
            "tail_credible": self.tail_credible,
            "tail_latency": self.tail_latency,
            "mean_latency": self.mean_latency,
            "tail_rid": self.tail_span.rid,
            "tail_stages": self.tail_stages,
            "tail_mean_stages": self.tail_mean_stages,
            "mean_stages": self.mean_stages,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StageBreakdown({self.name!r}, p{self.pct}="
            f"{self.tail_latency:.1f}us, dominant={self.dominant_stage()})"
        )


def _mean_stages(spans: List[Span]) -> Dict[str, float]:
    totals = {key: 0.0 for key in STAGE_KEYS}
    for span in spans:
        for key, value in span.stages().items():
            totals[key] += value
    n = len(spans)
    return {key: totals[key] / n for key in STAGE_KEYS}


class LatencyBreakdown:
    """Per-type stage decomposition of a set of completed spans."""

    def __init__(
        self,
        spans: Iterable[Span],
        pct: float = 99.9,
        type_names: Optional[Dict[int, str]] = None,
        warmup_frac: float = 0.0,
    ):
        if not 0.0 <= warmup_frac < 1.0:
            raise TraceError(f"warmup_frac must be in [0,1), got {warmup_frac}")
        completed = [s for s in spans if s.terminal == COMPLETE]
        if warmup_frac > 0.0 and completed:
            completed.sort(key=lambda s: s.arrival)
            completed = completed[int(len(completed) * warmup_frac):]
        self.pct = pct
        self.completed = len(completed)
        names = type_names or {}
        by_type: Dict[int, List[Span]] = {}
        for span in completed:
            by_type.setdefault(span.type_id, []).append(span)
        self.per_type: Dict[int, StageBreakdown] = {
            tid: StageBreakdown(tid, by_type[tid], pct, names.get(tid, ""))
            for tid in sorted(by_type)
        }
        self.overall: Optional[StageBreakdown] = (
            StageBreakdown(-1, completed, pct, "overall") if completed else None
        )

    def verify(self, atol: float = 1e-6) -> None:
        """Assert the stage partition: every type's tail-request stages
        sum to its measured latency within ``atol``.  Raises
        :class:`TraceError` on the first mismatch — used by tests and
        the ``repro-trace`` CLI's summary path."""
        for tid, bd in self.per_type.items():
            total = sum(bd.tail_stages[k] for k in STAGE_KEYS)
            latency = bd.tail_span.latency
            if abs(total - latency) > atol:
                raise TraceError(
                    f"type {tid}: stage sum {total:.9f}us != latency "
                    f"{latency:.9f}us for rid={bd.tail_span.rid}"
                )

    def render(self) -> str:
        """Human-readable per-type table."""
        lines = [
            f"Latency breakdown at p{self.pct} ({self.completed} completed spans)",
            f"  {'type':<12} {'n':>8} {'p' + format(self.pct, 'g'):>12} "
            f"{'pipeline':>10} {'queue':>10} {'resume':>10} {'service':>10}  stage",
        ]
        for tid in sorted(self.per_type):
            bd = self.per_type[tid]
            s = bd.tail_stages
            cred = "" if bd.tail_credible else "  (tail not credible)"
            lines.append(
                f"  {bd.name:<12} {bd.count:>8} {bd.tail_latency:>12.1f} "
                f"{s['dispatch_pipeline']:>10.2f} {s['queue_wait']:>10.2f} "
                f"{s['preempt_wait']:>10.2f} {s['service']:>10.2f}  "
                f"{bd.dominant_stage()}{cred}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "pct": self.pct,
            "completed": self.completed,
            "per_type": {str(tid): bd.to_dict() for tid, bd in self.per_type.items()},
            "overall": self.overall.to_dict() if self.overall else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LatencyBreakdown(p{self.pct}, types={len(self.per_type)})"
