"""Metrics exports: Prometheus text, JSONL time series, HTML dashboard.

Three formats, one source of truth:

* **Prometheus text** — the final registry state in the standard
  exposition format (``# HELP`` / ``# TYPE`` / samples, histograms as
  cumulative ``_bucket{le=...}`` + ``_sum`` + ``_count``), so any
  Prometheus-ecosystem tool can ingest a run's endpoint-of-record.
* **JSONL** — the full virtual-time :class:`MetricsTimeline`, one record
  per scrape carrying only the series that changed, bracketed by a
  ``meta`` header and a ``final`` trailer (full metric dump + recorder
  reconciliation).  Lossless: :func:`read_metrics` rebuilds the
  timeline and registry exactly.
* **HTML dashboard** — a single self-contained file (inline CSS + SVG
  sparklines, no external dependencies, no JavaScript required) showing
  every series as a step sparkline over virtual time.

All writers sort deterministically; two same-seed runs produce
byte-identical files.
"""

from __future__ import annotations

import json
from html import escape
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TelemetryError
from .registry import COUNTER, GAUGE, HISTOGRAM, MetricsRegistry
from .timeline import MetricsTimeline, SeriesTrack

#: Format version for the JSONL document.
JSONL_VERSION = 1


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry's final state in Prometheus exposition format."""
    lines: List[str] = []
    for name, kind, help_text, series in registry.families():
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in series:
            if kind == HISTOGRAM:
                for bound, cumulative in metric.cumulative_buckets():
                    bucket_labels = metric.labels + (("le", _fmt_value(bound)),)
                    lines.append(
                        f"{name}_bucket{_labels_text(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(metric.labels)} {_fmt_value(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels_text(metric.labels)} {metric.count}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(metric.labels)} {_fmt_value(metric.value)}"
                )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse exposition text back into ``{family: {kind, help, samples}}``.

    ``samples`` maps the full sample name + label text to a float.  Used
    by the round-trip tests and ``repro-metrics export`` verification;
    handles exactly the subset :func:`prometheus_text` emits.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(
                name, {"kind": "", "help": "", "samples": {}}
            )["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"kind": "", "help": "", "samples": {}}
            )["kind"] = kind
        elif line.startswith("#"):
            continue
        else:
            key, _, value_text = line.rpartition(" ")
            if not key:
                raise TelemetryError(f"malformed sample line: {raw!r}")
            base = key.partition("{")[0]
            family = base
            for suffix in ("_bucket", "_sum", "_count"):
                trimmed = base[: -len(suffix)] if base.endswith(suffix) else None
                if trimmed and families.get(trimmed, {}).get("kind") == HISTOGRAM:
                    family = trimmed
                    break
            families.setdefault(
                family, {"kind": "", "help": "", "samples": {}}
            )["samples"][key] = float(value_text)
    return families


# ----------------------------------------------------------------------
# registry dump / restore (lossless, rides inside the JSONL trailer)
# ----------------------------------------------------------------------
def registry_dump(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """Full registry state as JSON-safe family records."""
    out: List[Dict[str, Any]] = []
    for name, kind, help_text, series in registry.families():
        record: Dict[str, Any] = {
            "name": name,
            "kind": kind,
            "help": help_text,
            "series": [],
        }
        for metric in series:
            entry: Dict[str, Any] = {"labels": [list(lv) for lv in metric.labels]}
            if kind == HISTOGRAM:
                entry["bounds"] = list(metric.bounds)
                entry["bucket_counts"] = list(metric.bucket_counts)
                entry["count"] = metric.count
                entry["sum"] = metric.sum
            else:
                entry["value"] = metric.value
            record["series"].append(entry)
        out.append(record)
    return out


def registry_from_dump(dump: List[Dict[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from :func:`registry_dump` output."""
    registry = MetricsRegistry()
    for record in dump:
        name = record["name"]
        kind = record["kind"]
        help_text = record.get("help", "")
        for entry in record["series"]:
            labels = {key: value for key, value in entry["labels"]}
            if kind == COUNTER:
                registry.counter(name, help_text, **labels).set_total(
                    entry["value"]
                )
            elif kind == GAUGE:
                registry.gauge(name, help_text, **labels).set(entry["value"])
            elif kind == HISTOGRAM:
                metric = registry.histogram(
                    name, help_text, bounds=tuple(entry["bounds"]), **labels
                )
                metric.bucket_counts = list(entry["bucket_counts"])
                metric.count = entry["count"]
                metric.sum = entry["sum"]
            else:
                raise TelemetryError(f"unknown metric kind {kind!r} in dump")
    return registry


# ----------------------------------------------------------------------
# JSONL time series
# ----------------------------------------------------------------------
def write_jsonl(
    path: str,
    timeline: MetricsTimeline,
    registry: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    reconciliation: Optional[Dict[str, Any]] = None,
    counters: Optional[Dict[str, int]] = None,
) -> None:
    """Write the full timeline as JSON Lines.

    Record kinds, in order: one ``meta``, one ``series`` per series (in
    first-appearance order), one ``sample`` per scrape (changed values
    only), one ``final`` (registry dump + reconciliation + aggregate
    counters).
    """
    # One pass over the change-points groups them by scrape index
    # without re-walking every series per scrape.
    by_scrape: Dict[int, Dict[str, float]] = {}
    for key, track in timeline.series.items():
        for index, value in track.points:
            by_scrape.setdefault(index, {})[key] = value
    with open(path, "w") as fp:
        fp.write(
            json.dumps(
                {
                    "kind": "meta",
                    "version": JSONL_VERSION,
                    "scrapes": timeline.n_scrapes,
                    "series": len(timeline.series),
                    "meta": meta or {},
                },
                sort_keys=True,
            )
            + "\n"
        )
        for key, track in timeline.series.items():
            fp.write(
                json.dumps(
                    {"kind": "series", "key": key, "family": track.family},
                    sort_keys=True,
                )
                + "\n"
            )
        for index, time in enumerate(timeline.times):
            changed = by_scrape.get(index)
            if not changed and index:
                continue  # nothing moved this scrape; the step holds
            fp.write(
                json.dumps(
                    {
                        "kind": "sample",
                        "i": index,
                        "t": time,
                        "changed": dict(sorted((changed or {}).items())),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        trailer: Dict[str, Any] = {"kind": "final", "times": timeline.times}
        if registry is not None:
            trailer["registry"] = registry_dump(registry)
        if reconciliation is not None:
            trailer["reconciliation"] = reconciliation
        if counters is not None:
            trailer["counters"] = counters
        fp.write(json.dumps(trailer, sort_keys=True) + "\n")


class MetricsDoc:
    """A loaded metrics JSONL document."""

    def __init__(
        self,
        meta: Dict[str, Any],
        timeline: MetricsTimeline,
        registry: Optional[MetricsRegistry],
        reconciliation: Optional[Dict[str, Any]],
        counters: Dict[str, int],
    ):
        self.meta = meta
        self.timeline = timeline
        #: Final registry state, when the trailer carried a dump.
        self.registry = registry
        self.reconciliation = reconciliation
        self.counters = counters

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsDoc(scrapes={self.timeline.n_scrapes}, "
            f"series={len(self.timeline.series)})"
        )


def read_metrics(path: str) -> MetricsDoc:
    """Load a JSONL metrics document back into timeline + registry."""
    meta: Dict[str, Any] = {}
    timeline = MetricsTimeline()
    registry: Optional[MetricsRegistry] = None
    reconciliation: Optional[Dict[str, Any]] = None
    counters: Dict[str, int] = {}
    order: List[str] = []
    try:
        with open(path) as fp:
            for line_no, raw in enumerate(fp, start=1):
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TelemetryError(
                        f"{path}:{line_no}: malformed JSONL record: {exc}"
                    ) from exc
                kind = record.get("kind")
                if kind == "meta":
                    meta = record.get("meta", {})
                elif kind == "series":
                    key = record["key"]
                    order.append(key)
                    timeline.series[key] = SeriesTrack(
                        key, record.get("family", key)
                    )
                elif kind == "sample":
                    index = int(record["i"])
                    while len(timeline.times) <= index:
                        timeline.times.append(float(record["t"]))
                    timeline.times[index] = float(record["t"])
                    for key, value in record.get("changed", {}).items():
                        track = timeline.series.get(key)
                        if track is None:
                            track = SeriesTrack(key, key)
                            timeline.series[key] = track
                        track.points.append((index, float(value)))
                elif kind == "final":
                    times = record.get("times")
                    if times:
                        timeline.times = [float(t) for t in times]
                    if "registry" in record:
                        registry = registry_from_dump(record["registry"])
                    reconciliation = record.get("reconciliation")
                    counters = record.get("counters", {})
    except OSError as exc:
        raise TelemetryError(f"cannot read metrics file {path}: {exc}") from exc
    # Change-points may arrive interleaved by scrape; re-sort per series.
    for track in timeline.series.values():
        track.points.sort(key=lambda point: point[0])
    return MetricsDoc(meta, timeline, registry, reconciliation, counters)


# ----------------------------------------------------------------------
# HTML dashboard
# ----------------------------------------------------------------------
_DASH_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem; background: #fafafa; color: #1a1a2e; }
h1 { font-size: 1.3rem; }  h2 { font-size: 1.05rem; margin: 1.6rem 0 .4rem; }
.meta { color: #555; font-size: .85rem; margin-bottom: 1rem; }
.grid { display: flex; flex-wrap: wrap; gap: .8rem; }
.card { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: .6rem .8rem; width: 310px; }
.card .key { font-size: .78rem; color: #333; word-break: break-all; }
.card .val { font-size: .95rem; font-weight: 600; margin-top: .15rem; }
.card .range { font-size: .72rem; color: #777; }
svg { display: block; margin-top: .3rem; }
.spark { stroke: #2a6fdb; stroke-width: 1.3; fill: none; }
.sparkfill { fill: #2a6fdb22; stroke: none; }
"""

_SPARK_W = 280
_SPARK_H = 46


def _sparkline_svg(points: List[Tuple[float, float]], t_end: float) -> str:
    """A step-function sparkline as inline SVG (no scripts, no deps)."""
    if not points:
        return ""
    t0 = points[0][0]
    span = max(t_end - t0, 1e-9)
    values = [v for _, v in points]
    vmin, vmax = min(values), max(values)
    vspan = vmax - vmin
    if vspan <= 0:
        vspan = max(abs(vmax), 1.0)
        vmin = vmax - vspan

    def x(t: float) -> float:
        return (t - t0) / span * _SPARK_W

    def y(v: float) -> float:
        return _SPARK_H - 3 - (v - vmin) / vspan * (_SPARK_H - 6)

    coords: List[str] = []
    prev_v = points[0][1]
    coords.append(f"{x(points[0][0]):.1f},{y(prev_v):.1f}")
    for t, v in points[1:]:
        coords.append(f"{x(t):.1f},{y(prev_v):.1f}")  # hold (step)
        coords.append(f"{x(t):.1f},{y(v):.1f}")  # jump
        prev_v = v
    coords.append(f"{_SPARK_W:.1f},{y(prev_v):.1f}")
    poly = " ".join(coords)
    fill = f"0,{_SPARK_H} {poly} {_SPARK_W},{_SPARK_H}"
    return (
        f'<svg width="{_SPARK_W}" height="{_SPARK_H}" '
        f'viewBox="0 0 {_SPARK_W} {_SPARK_H}">'
        f'<polygon class="sparkfill" points="{fill}"/>'
        f'<polyline class="spark" points="{poly}"/></svg>'
    )


def dashboard_html(
    timeline: MetricsTimeline, meta: Optional[Dict[str, Any]] = None
) -> str:
    """Render the timeline as one self-contained static HTML page."""
    t_end = timeline.times[-1] if timeline.times else 0.0
    families: Dict[str, List[SeriesTrack]] = {}
    for track in timeline.series.values():
        families.setdefault(track.family, []).append(track)
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro metrics dashboard</title>",
        f"<style>{_DASH_CSS}</style></head><body>",
        "<h1>repro metrics dashboard</h1>",
    ]
    meta_bits = [f"scrapes: {timeline.n_scrapes}", f"span: {t_end:.0f} us"]
    for key in sorted(meta or {}):
        meta_bits.append(f"{escape(str(key))}: {escape(str((meta or {})[key]))}")
    parts.append(f"<div class='meta'>{' · '.join(meta_bits)}</div>")
    for family in sorted(families):
        parts.append(f"<h2>{escape(family)}</h2><div class='grid'>")
        for track in sorted(families[family], key=lambda s: s.key):
            points = [(timeline.times[i], v) for i, v in track.points]
            if not points:
                continue
            values = [v for _, v in points]
            last = values[-1]
            parts.append(
                "<div class='card'>"
                f"<div class='key'>{escape(track.key)}</div>"
                f"<div class='val'>{_fmt_value(last)}</div>"
                f"<div class='range'>min {_fmt_value(min(values))} · "
                f"max {_fmt_value(max(values))} · "
                f"{len(points)} change(s)</div>"
                f"{_sparkline_svg(points, t_end)}"
                "</div>"
            )
        parts.append("</div>")
    parts.append("</body></html>")
    return "".join(parts)


# ----------------------------------------------------------------------
# one-call writer used by the experiment drivers
# ----------------------------------------------------------------------
def write_metrics(
    base_path: str,
    probe,
    recorder=None,
    meta: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write all three exports for one run.

    ``base_path`` is extensionless (``dir/slug.metrics``); the writer
    emits ``.prom``, ``.jsonl`` and ``.html`` siblings and returns their
    paths.  Takes the probe's closing scrape first so final values are
    on the timeline, and embeds the recorder reconciliation when a
    recorder is supplied.
    """
    probe.finalize()
    reconciliation = probe.reconcile(recorder) if recorder is not None else None
    paths = {
        "prometheus": base_path + ".prom",
        "jsonl": base_path + ".jsonl",
        "html": base_path + ".html",
    }
    with open(paths["prometheus"], "w") as fp:
        fp.write(prometheus_text(probe.registry))
    write_jsonl(
        paths["jsonl"],
        probe.timeline,
        registry=probe.registry,
        meta=meta,
        reconciliation=reconciliation,
        counters=probe.counter_totals(),
    )
    with open(paths["html"], "w") as fp:
        fp.write(dashboard_html(probe.timeline, meta=meta))
    return paths
