"""The :class:`MetricsTimeline` — scrape history on virtual time.

One timeline records the value of every registry series at every scrape,
*change-compressed*: a series contributes a point only when its value
differs from its previous point.  Queue-depth gauges that sit at zero
for half the run cost two points, not thousands — which is what keeps a
long chaos run's metrics file proportional to activity, not duration.

Series values expand back to step functions (the value holds until the
next recorded change), which is also exactly how the dashboard's
sparklines draw them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SeriesTrack:
    """One series' change-points over the scrape history."""

    __slots__ = ("key", "family", "points")

    def __init__(self, key: str, family: str):
        self.key = key
        #: The owning metric family name (``lat_us`` for ``lat_us_count``).
        self.family = family
        #: ``(scrape_index, value)`` — appended only on change.
        self.points: List[Tuple[int, float]] = []

    @property
    def last_value(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def value_at(self, scrape_index: int) -> Optional[float]:
        """Step-function value at ``scrape_index`` (None before the first
        point — the series did not exist yet)."""
        value: Optional[float] = None
        for idx, v in self.points:
            if idx > scrape_index:
                break
            value = v
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeriesTrack({self.key}, points={len(self.points)})"


class MetricsTimeline:
    """Change-compressed history of every metric across one run."""

    def __init__(self) -> None:
        #: Virtual timestamp of each scrape, in order.
        self.times: List[float] = []
        #: series key -> track, in first-appearance order.
        self.series: Dict[str, SeriesTrack] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, now: float, registry) -> int:
        """Append one scrape of ``registry`` at virtual time ``now``.

        Returns the number of change-points written.
        """
        index = len(self.times)
        self.times.append(now)
        changed = 0
        for key, family, value in registry.sample_items():
            track = self.series.get(key)
            if track is None:
                track = SeriesTrack(key, family)
                self.series[key] = track
            if not track.points or track.points[-1][1] != value:
                track.points.append((index, value))
                changed += 1
        return changed

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def n_scrapes(self) -> int:
        return len(self.times)

    def changes_at(self, scrape_index: int) -> Dict[str, float]:
        """Every series change recorded at one scrape (for JSONL rows)."""
        out: Dict[str, float] = {}
        for key, track in self.series.items():
            for idx, value in track.points:
                if idx == scrape_index:
                    out[key] = value
                elif idx > scrape_index:
                    break
        return out

    def expand(self, key: str) -> List[Tuple[float, float]]:
        """One series as explicit ``(time, value)`` step points."""
        track = self.series.get(key)
        if track is None:
            return []
        return [(self.times[idx], value) for idx, value in track.points]

    def final_values(self) -> Dict[str, float]:
        """Last recorded value of every series, in appearance order."""
        return {
            key: track.points[-1][1]
            for key, track in self.series.items()
            if track.points
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsTimeline(scrapes={len(self.times)}, "
            f"series={len(self.series)})"
        )
