"""The :class:`TelemetryProbe` — one run's metrics plane, end to end.

A probe owns a :class:`~repro.telemetry.registry.MetricsRegistry` and a
:class:`~repro.telemetry.timeline.MetricsTimeline` and wires them into a
run via :meth:`install`, after which two kinds of instrumentation feed
it:

* **push hooks** — the scheduler base, time sharing, work stealing and
  DARC call ``telemetry.on_*`` at the same sites that feed the tracer
  (completion, drop, eviction, preemption, steal, reservation install);
* **pull sources** — at every scrape the probe reads engine counters,
  dispatcher state, worker occupancy, per-type queue depths, recorder
  totals, fault-injector counters and the streaming tail monitor.

Scraping is piggybacked on executed events exactly like the tracer: the
loop notifies the probe after each event and the probe samples when at
least ``scrape_interval_us`` of *virtual* time has passed.  The probe
never schedules events, draws randomness, or reads a wall clock, so an
armed probe leaves the simulated outcome bit-identical
(``tests/telemetry/test_determinism.py``).

Conservation: :meth:`reconcile` checks the final push counters against
the :class:`~repro.metrics.recorder.Recorder` ledger the same way
trace↔recorder reconciliation works —

    completions_total == recorder.completed + recorder.late_completions
    drops_total + dispatcher drops == recorder.dropped
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import TelemetryError
from ..trace.monitor import TailMonitor
from .registry import MetricsRegistry
from .timeline import MetricsTimeline

#: Default simulated-time distance between scrapes (us) — matches the
#: tracer's sampling cadence.
DEFAULT_SCRAPE_INTERVAL_US = 100.0


class TelemetryProbe:
    """Collects push metrics, runs the virtual-time scrape loop."""

    def __init__(
        self,
        scrape_interval_us: float = DEFAULT_SCRAPE_INTERVAL_US,
        tail_pct: float = 99.9,
        registry: Optional[MetricsRegistry] = None,
    ):
        if scrape_interval_us <= 0:
            raise TelemetryError(
                f"scrape_interval_us must be > 0, got {scrape_interval_us}"
            )
        self.scrape_interval_us = scrape_interval_us
        self.registry = registry if registry is not None else MetricsRegistry()
        self.timeline = MetricsTimeline()
        #: Streaming per-type tail estimates, published as gauges.
        self.tail_monitor = TailMonitor(pct=tail_pct)
        self._loop = None
        self._server = None
        self._injector = None
        self._rack = None
        self._netstack_nics: List[Any] = []
        self._last_scrape_at: Optional[float] = None
        self._finalized = False
        self.scrapes = 0
        # Aggregate push counters (cheap reconciliation without walking
        # the registry), mirroring Tracer's.
        self.completions = 0
        self.drops = 0
        self.preemptions = 0
        self.evictions = 0
        self.steals = 0
        self.reservation_updates = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def install(self, loop, server=None, injector=None) -> None:
        """Attach this probe to a loop + server (+ optional injector).

        One probe observes exactly one run.  ``server=None`` supports
        multi-server (rack) runs: attach the loop here, then forward the
        probe to each replica with ``server.attach_telemetry(probe)``
        and register the rack via :meth:`register_rack`.
        """
        if self._loop is not None:
            raise TelemetryError("probe already installed; use one probe per run")
        self._loop = loop
        self._server = server
        self._injector = injector
        self._last_scrape_at = loop.now
        loop.attach_telemetry(self)
        if server is not None:
            server.attach_telemetry(self)
        self.tail_monitor.register_gauges(self.registry)
        self.scrape(loop.now)

    def register_netstack(self, nic) -> None:
        """Add a NIC whose in-flight packet count is sampled each scrape."""
        self._netstack_nics.append(nic)

    def register_rack(self, rack) -> None:
        """Sample a ``repro.rack`` rack every scrape: per-replica queue
        depth / in-flight / routing counts, balancer spill and staleness
        counters, and the stale-view error gauge."""
        self._rack = rack

    @property
    def now(self) -> float:
        if self._loop is None:
            raise TelemetryError("probe not installed")
        return self._loop.now

    # ------------------------------------------------------------------
    # push hooks (called from policies / DARC)
    # ------------------------------------------------------------------
    def on_complete(self, request, worker) -> None:
        """``request`` finished application processing on ``worker``."""
        tid = request.type_id
        self.registry.counter(
            "repro_requests_completed_total",
            "Requests completed by the server, by type.",
            type=tid,
        ).inc()
        latency = self.now - request.arrival_time
        self.registry.histogram(
            "repro_request_latency_us",
            "End-to-end request latency (arrival to completion), by type.",
            type=tid,
        ).observe(latency)
        self.tail_monitor.observe(tid, latency)
        self.completions += 1

    def on_drop(self, request) -> None:
        """A scheduling policy's flow control rejected ``request``."""
        self.registry.counter(
            "repro_requests_dropped_total",
            "Requests rejected by policy flow control, by type.",
            type=request.type_id,
        ).inc()
        self.drops += 1

    def on_preempt(self, request, worker, overhead_us: float) -> None:
        """A preemptive policy sliced ``request`` off ``worker``."""
        self.registry.counter(
            "repro_preemptions_total",
            "Time-sharing quantum preemptions.",
        ).inc()
        self.registry.counter(
            "repro_preempt_overhead_us_total",
            "Cumulative worker time burned on preemption costs (us).",
        ).inc(overhead_us)
        self.preemptions += 1

    def on_evict(self, request, worker, requeued: bool) -> None:
        """``worker`` crashed under ``request``; progress was lost."""
        self.registry.counter(
            "repro_evictions_total",
            "In-flight requests evicted by worker crashes.",
            requeued="true" if requeued else "false",
        ).inc()
        self.evictions += 1

    def on_steal(self, request, thief, victim_worker_id: int, cost_us: float) -> None:
        """An idle worker stole the head of a victim's queue."""
        self.registry.counter(
            "repro_steals_total",
            "Successful work-steal operations.",
        ).inc()
        self.registry.counter(
            "repro_steal_cost_us_total",
            "Cumulative cross-core coordination time spent stealing (us).",
        ).inc(cost_us)
        self.steals += 1

    def on_reservation(self, reservation, reserved_counts: Dict[int, int], n_alive: int) -> None:
        """DARC installed a new reservation (Algorithm 2 output).

        ``reserved`` gauges the workers a type's group owns outright;
        ``yielding`` gauges the owned workers that shorter groups may
        steal — the cores the group has conditionally given up, which is
        the non-work-conserving lever Fig. 7 visualizes.
        """
        stealable: set = set()
        for alloc in reservation.allocations:
            stealable.update(alloc.stealable)
        for alloc in reservation.allocations:
            yielding = sum(1 for widx in alloc.reserved if widx in stealable)
            for tid in sorted(alloc.type_ids):
                self.registry.gauge(
                    "repro_darc_reserved_cores",
                    "Workers currently guaranteed to the type's group.",
                    type=tid,
                ).set(len(alloc.reserved))
                self.registry.gauge(
                    "repro_darc_yielding_cores",
                    "Guaranteed workers the group currently yields to "
                    "shorter groups (stealable by them).",
                    type=tid,
                ).set(yielding)
        spillway = reservation.spillway_worker
        self.registry.gauge(
            "repro_darc_spillway_worker",
            "Worker id of the shared spillway core (-1 when none).",
        ).set(-1 if spillway is None else spillway)
        self.registry.gauge(
            "repro_darc_alive_workers",
            "Workers the reservation was computed over.",
        ).set(n_alive)
        self.registry.counter(
            "repro_darc_reservation_updates_total",
            "Algorithm 2 reservation recomputations installed.",
        ).inc()
        self.reservation_updates += 1

    def on_fault(self, kind: str, **payload: Any) -> None:
        """A fault-injection event fired (crash/recover/slowdown/...)."""
        self.registry.counter(
            "repro_fault_events_total",
            "Fault-plan events executed, by kind.",
            kind=kind,
        ).inc()

    # ------------------------------------------------------------------
    # the scrape loop (piggybacked on executed events)
    # ------------------------------------------------------------------
    def on_loop_event(self, loop) -> None:
        """Notified by the event loop after every executed event."""
        now = loop.now
        if (
            self._last_scrape_at is not None
            and now - self._last_scrape_at < self.scrape_interval_us
        ):
            return
        self._last_scrape_at = now
        self.scrape(now)

    def scrape(self, now: float) -> None:
        """Sample every pull source and append to the timeline."""
        self._pull_engine(now)
        self._pull_server(now)
        self._pull_scheduler(now)
        self._pull_recorder(now)
        self._pull_faults(now)
        self._pull_netstack(now)
        self._pull_rack(now)
        self.registry.collect(now)
        self.timeline.record(now, self.registry)
        self.scrapes += 1

    def finalize(self) -> None:
        """Take the closing scrape (idempotent; run end / export time)."""
        if self._finalized or self._loop is None:
            return
        self._finalized = True
        self.scrape(self._loop.now)

    # ------------------------------------------------------------------
    # pull sources
    # ------------------------------------------------------------------
    def _pull_engine(self, now: float) -> None:
        loop = self._loop
        if loop is None:
            return
        self.registry.counter(
            "repro_sim_events_processed_total",
            "Events executed by the discrete-event loop.",
        ).set_total(loop.events_processed)
        self.registry.gauge(
            "repro_sim_pending_events",
            "Events in the loop heap (including lazily cancelled ones).",
        ).set(loop.pending_count)

    def _pull_server(self, now: float) -> None:
        server = self._server
        if server is None:
            return
        self.registry.counter(
            "repro_server_received_total",
            "Requests that reached Server.ingress.",
        ).set_total(server.received)
        self.registry.counter(
            "repro_dispatcher_drops_total",
            "Requests dropped by the dispatcher's inbound queue (NIC ring).",
        ).set_total(server.dispatcher_drops)
        busy = free = failed = slowed = 0
        for w in server.workers:
            if w.failed:
                failed += 1
            elif w.current is not None:
                busy += 1
            else:
                free += 1
            if not w.failed and w.speed_factor != 1.0:
                slowed += 1
        self.registry.gauge(
            "repro_workers_busy", "Workers currently serving a request."
        ).set(busy)
        self.registry.gauge(
            "repro_workers_free", "Workers currently idle."
        ).set(free)
        self.registry.gauge(
            "repro_workers_failed", "Workers currently crashed."
        ).set(failed)
        self.registry.gauge(
            "repro_workers_slowed",
            "Live workers currently running degraded (speed_factor != 1).",
        ).set(slowed)

    def _pull_scheduler(self, now: float) -> None:
        server = self._server
        if server is None:
            return
        scheduler = server.scheduler
        self.registry.gauge(
            "repro_scheduler_pending",
            "Requests queued at the scheduler (not being served).",
        ).set(scheduler.pending_count())
        for label_key, label_value, depth in _queue_depths(scheduler):
            self.registry.gauge(
                "repro_queue_depth",
                "Scheduler queue depth, by typed queue / worker queue.",
                **{label_key: label_value},
            ).set(depth)

    def _pull_recorder(self, now: float) -> None:
        server = self._server
        if server is None:
            return
        recorder = server.recorder
        self.registry.counter(
            "repro_recorder_completions_total",
            "Completion rows booked by the Recorder.",
        ).set_total(recorder.completed)
        self.registry.counter(
            "repro_recorder_drops_total",
            "Drops booked by the Recorder (policy + dispatcher).",
        ).set_total(recorder.dropped)
        for key, value in sorted(recorder.orphan_counters().items()):
            self.registry.counter(
                "repro_recorder_orphans_total",
                "Orphan-request ledger (resilience layer), by kind.",
                kind=key,
            ).set_total(value)

    def _pull_faults(self, now: float) -> None:
        injector = self._injector
        if injector is None:
            return
        for key, value in sorted(injector.counters().items()):
            self.registry.counter(
                "repro_fault_injector_total",
                "Fault-injector lifetime counters, by kind.",
                kind=key,
            ).set_total(value)

    def _pull_netstack(self, now: float) -> None:
        for index, nic in enumerate(self._netstack_nics):
            self.registry.gauge(
                "repro_net_in_flight_packets",
                "Packets queued in the NIC, by nic index.",
                nic=index,
            ).set(nic.pending())

    def _pull_rack(self, now: float) -> None:
        rack = self._rack
        if rack is None:
            return
        registry = self.registry
        balancer = rack.balancer
        for index, server in enumerate(rack.servers):
            registry.gauge(
                "repro_rack_replica_pending",
                "Requests queued at the replica's scheduler, by server.",
                server=index,
            ).set(server.pending)
            registry.gauge(
                "repro_rack_replica_in_flight",
                "Requests being served on the replica, by server.",
                server=index,
            ).set(server.in_flight)
            registry.counter(
                "repro_rack_replica_received_total",
                "Requests the replica's ingress accepted, by server.",
                server=index,
            ).set_total(server.received)
            registry.counter(
                "repro_rack_routes_total",
                "Requests the balancer routed to the replica, by server.",
                server=index,
            ).set_total(balancer.route_counts[index])
        registry.counter(
            "repro_rack_routed_total",
            "Requests the rack balancer routed in total.",
        ).set_total(balancer.routed)
        registry.counter(
            "repro_rack_spills_total",
            "Requests routed outside their preferred replica set.",
        ).set_total(getattr(balancer, "spills", 0))
        registry.gauge(
            "repro_rack_unreachable_replicas",
            "Replicas currently partitioned away from the balancer.",
        ).set(len(balancer.unreachable))
        views = rack.views
        registry.counter(
            "repro_rack_view_stale_reads_total",
            "Balancer load reads served from a stale snapshot.",
        ).set_total(views.stale_reads)
        registry.gauge(
            "repro_rack_view_error",
            "Mean absolute error of stale load views vs. the true load.",
        ).set(views.mean_error())

    # ------------------------------------------------------------------
    # reconciliation
    # ------------------------------------------------------------------
    def counter_totals(self) -> Dict[str, int]:
        """The aggregate push counters as a plain dict."""
        return {
            "completions": self.completions,
            "drops": self.drops,
            "preemptions": self.preemptions,
            "evictions": self.evictions,
            "steals": self.steals,
            "reservation_updates": self.reservation_updates,
        }

    def reconcile(self, recorder) -> Dict[str, Any]:
        """Conservation check against a Recorder's ledger.

        Every server-side completion fires the push hook exactly once,
        and the recorder books it either as a row or (behind a
        resilience layer, for orphaned attempts) as a late completion::

            completions_total == recorder.completed + recorder.late_completions
            drops_total + dispatcher_drops == recorder.dropped

        The registry's per-type counter families must agree with the
        aggregate push counters (they are incremented at the same sites).
        """
        if self._server is not None:
            dispatcher_drops = self._server.dispatcher_drops
        elif self._rack is not None:
            dispatcher_drops = sum(s.dispatcher_drops for s in self._rack.servers)
        else:
            dispatcher_drops = 0
        expected_complete = recorder.completed + recorder.late_completions
        family_completions = self.registry.family_total(
            "repro_requests_completed_total"
        )
        family_drops = self.registry.family_total("repro_requests_dropped_total")
        ok = (
            self.completions == expected_complete
            and self.drops + dispatcher_drops == recorder.dropped
            and family_completions == self.completions
            and family_drops == self.drops
        )
        return {
            "ok": ok,
            "telemetry_completions": self.completions,
            "recorder_complete": recorder.completed,
            "recorder_late_completions": recorder.late_completions,
            "telemetry_drops": self.drops,
            "dispatcher_drops": dispatcher_drops,
            "recorder_dropped": recorder.dropped,
            "orphans": dict(sorted(recorder.orphan_counters().items())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TelemetryProbe(series={len(self.registry)}, "
            f"scrapes={self.scrapes}, completions={self.completions})"
        )


def _queue_depths(scheduler) -> List[Tuple[str, str, int]]:
    """Queue-depth gauges for every queue shape a policy exposes.

    * ``queues`` dict  — typed queues (DARC, FixedPriority, DRR, ...):
      one gauge per type id;
    * ``queues`` list  — per-worker FIFOs (d-FCFS / work stealing): one
      gauge per worker index;
    * ``queue`` deque  — c-FCFS's single central queue;
    * ``central`` / ``typed`` — TimeSharing's two disciplines.
    """
    out: List[Tuple[str, str, int]] = []
    queues = getattr(scheduler, "queues", None)
    if isinstance(queues, dict):
        for tid in sorted(queues):
            out.append(("type", str(tid), len(queues[tid])))
    elif isinstance(queues, list):
        for index, queue in enumerate(queues):
            out.append(("worker", str(index), len(queue)))
    central = getattr(scheduler, "queue", None)
    if central is not None:
        out.append(("queue", "central", len(central)))
    ts_central = getattr(scheduler, "central", None)
    ts_typed = getattr(scheduler, "typed", None)
    if ts_central is not None and getattr(scheduler, "mode", None) == "single":
        out.append(("queue", "central", len(ts_central)))
    if isinstance(ts_typed, dict) and getattr(scheduler, "mode", None) == "multi":
        for tid in sorted(ts_typed):
            out.append(("type", str(tid), len(ts_typed[tid])))
    return out
