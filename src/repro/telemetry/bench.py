"""Benchmark artifact aggregation and regression gating.

CI produces a family of ``BENCH_*.json`` artifacts — pytest-benchmark
documents (``BENCH_analyze.json``, ``BENCH_chaos.json``,
``BENCH_timeseries.json``) and the self-profiler's
``BENCH_profile.json``.  This module folds them into one flat
``BENCH_summary.json`` (benchmark name → metric → value) so the perf
trajectory is a single diffable file, and compares a summary against a
checked-in ``bench-baseline.json``, failing on any metric that
regresses beyond the baseline's tolerance (default 25%).

Comparison is direction-aware: wall-clock / memory metrics (suffixes
``_s``, ``_us``, ``_bytes``, or containing ``time``) regress when they
*grow*; throughput metrics (containing ``per_sec``) regress when they
*shrink*.  Metrics with no recognisable direction are informational
only — recorded, never gated.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..errors import TelemetryError

SUMMARY_KIND = "repro-bench-summary"
BASELINE_KIND = "repro-bench-baseline"
SUMMARY_VERSION = 1

#: Default allowed fractional regression before the gate fails.
DEFAULT_TOLERANCE = 0.25

#: pytest-benchmark stats worth trending (the rest is noise at rounds=1).
_PYTEST_STATS = ("mean", "min", "max", "stddev")


def _load_json(path: str) -> Any:
    try:
        with open(path) as fp:
            return json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"cannot read benchmark file {path}: {exc}") from exc


def _flatten_numeric(prefix: str, value: Any, out: Dict[str, float]) -> None:
    """Collect numeric leaves of nested extra_info dicts."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten_numeric(f"{prefix}.{key}", value[key], out)


def summarize_file(path: str) -> Dict[str, Dict[str, float]]:
    """One ``BENCH_*.json`` → ``{benchmark name: {metric: value}}``.

    Understands both document shapes CI produces:

    * pytest-benchmark (``{"benchmarks": [{"name", "stats", ...}]}``) —
      stats become ``time_<stat>_s`` metrics, numeric ``extra_info``
      leaves ride along verbatim;
    * the self-profiler (``{"kind": "repro-profile", ...}``) — one
      benchmark named after the file, top-level throughput/heap metrics.
    """
    doc = _load_json(path)
    stem = os.path.splitext(os.path.basename(path))[0]
    out: Dict[str, Dict[str, float]] = {}
    if isinstance(doc, dict) and doc.get("kind") == "repro-profile":
        metrics: Dict[str, float] = {
            "time_wall_s": float(doc.get("wall_s", 0.0)),
            "events": float(doc.get("events", 0)),
            "events_per_sec": float(doc.get("events_per_sec", 0.0)),
            "peak_heap_bytes": float(doc.get("peak_heap_bytes", 0)),
            "sim_time_us": float(doc.get("sim_time_us", 0.0)),
        }
        out[stem] = metrics
        return out
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        for bench in doc["benchmarks"]:
            name = bench.get("name", stem)
            metrics = {}
            stats = bench.get("stats", {})
            for stat in _PYTEST_STATS:
                if stat in stats and isinstance(stats[stat], (int, float)):
                    metrics[f"time_{stat}_s"] = float(stats[stat])
            for key in sorted(bench.get("extra_info", {})):
                _flatten_numeric(key, bench["extra_info"][key], metrics)
            out[f"{stem}::{name}"] = metrics
        return out
    raise TelemetryError(f"unrecognised benchmark document: {path}")


def aggregate(paths: List[str]) -> Dict[str, Any]:
    """Fold many artifacts into one ``BENCH_summary.json`` document."""
    benchmarks: Dict[str, Dict[str, float]] = {}
    for path in sorted(paths):
        for name, metrics in summarize_file(path).items():
            if name in benchmarks:
                raise TelemetryError(f"duplicate benchmark name {name!r} ({path})")
            benchmarks[name] = metrics
    return {
        "kind": SUMMARY_KIND,
        "version": SUMMARY_VERSION,
        "sources": [os.path.basename(p) for p in sorted(paths)],
        "benchmarks": {k: benchmarks[k] for k in sorted(benchmarks)},
    }


def discover(root: str = ".") -> List[str]:
    """Every ``BENCH_*.json`` under ``root`` except the summary itself."""
    found = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    return [p for p in found if os.path.basename(p) != "BENCH_summary.json"]


def metric_direction(metric: str) -> int:
    """-1 = lower is better, +1 = higher is better, 0 = ungated."""
    if "per_sec" in metric or "speedup" in metric:
        return 1
    if metric.endswith(("_s", "_us", "_bytes")) or "time" in metric:
        return -1
    return 0


def compare(
    summary: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Diff a summary against a baseline.

    Returns ``(regressions, report)``: ``report`` has one row per
    comparable metric (including improvements and ungated metrics);
    ``regressions`` is the gating subset whose relative change exceeds
    the tolerance in the unfavourable direction.
    """
    if baseline.get("kind") != BASELINE_KIND:
        raise TelemetryError(
            f"baseline kind is {baseline.get('kind')!r}, expected {BASELINE_KIND!r}"
        )
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", DEFAULT_TOLERANCE))
    report: List[Dict[str, Any]] = []
    regressions: List[Dict[str, Any]] = []
    current = summary.get("benchmarks", {})
    for name in sorted(baseline.get("benchmarks", {})):
        base_metrics = baseline["benchmarks"][name]
        cur_metrics = current.get(name)
        if cur_metrics is None:
            row = {"benchmark": name, "metric": "*", "status": "missing"}
            report.append(row)
            regressions.append(row)
            continue
        for metric in sorted(base_metrics):
            base_value = float(base_metrics[metric])
            if metric not in cur_metrics:
                row = {
                    "benchmark": name,
                    "metric": metric,
                    "status": "missing",
                    "baseline": base_value,
                }
                report.append(row)
                regressions.append(row)
                continue
            value = float(cur_metrics[metric])
            direction = metric_direction(metric)
            if base_value != 0.0:
                change = (value - base_value) / abs(base_value)
            else:
                change = 0.0 if value == 0.0 else float("inf")
            # higher-better: regressed when change < -tol; lower-better:
            # regressed when change > +tol.  Folding via the sign:
            regressed = direction != 0 and (change * direction) < -tolerance
            row = {
                "benchmark": name,
                "metric": metric,
                "baseline": base_value,
                "value": value,
                "change": change,
                "direction": direction,
                "status": "regressed" if regressed else "ok",
            }
            report.append(row)
            if regressed:
                regressions.append(row)
    return regressions, report


def make_baseline(
    summary: Dict[str, Any], tolerance: float = DEFAULT_TOLERANCE
) -> Dict[str, Any]:
    """Turn a summary into a checked-in baseline (gated metrics only)."""
    benchmarks: Dict[str, Dict[str, float]] = {}
    for name in sorted(summary.get("benchmarks", {})):
        gated = {
            metric: value
            for metric, value in sorted(summary["benchmarks"][name].items())
            if metric_direction(metric) != 0
        }
        if gated:
            benchmarks[name] = gated
    return {
        "kind": BASELINE_KIND,
        "tolerance": tolerance,
        "benchmarks": benchmarks,
    }


def write_json(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
