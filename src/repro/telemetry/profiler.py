"""The simulator self-profiler: wall-clock attribution of hot paths.

Everything else in :mod:`repro.telemetry` lives strictly on virtual
time.  The profiler is the one deliberate exception: it measures how
long the *simulator itself* takes — per-handler-type cumulative wall
time, events per wall-second, peak heap — so regressions in the
simulation engine show up as numbers, not vibes.

It is opt-in, wraps event execution from the outside
(``EventLoop.attach_profiler``), and never touches simulated state, so
a profiled run still produces the exact same virtual-time results; it
just runs a little slower while being measured.  The wall-clock and
allocation-tracking calls below are the *only* allowlisted impurity in
the telemetry package — every line is pragma-tagged for ``repro-lint``
(R002/R009) and ``repro-analyze`` (A301).

Output is ``BENCH_profile.json`` (same ``BENCH_*`` family the chaos and
analyze benchmarks use, aggregated by ``repro-metrics bench``).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from typing import Any, Dict, List, Optional

from ..errors import TelemetryError
from ..sim.units import US_PER_SECOND

#: Output schema identifier.
PROFILE_KIND = "repro-profile"
PROFILE_VERSION = 1


class HandlerStats:
    """Accumulated wall time for one handler type (``fn.__qualname__``)."""

    __slots__ = ("name", "calls", "cum_s", "alloc_bytes")

    def __init__(self, name: str):
        self.name = name
        self.calls = 0
        self.cum_s = 0.0
        #: Net bytes the handler allocated and retained, summed over
        #: calls (positive per-call deltas only; a call that frees more
        #: than it allocates contributes zero).  Only populated when the
        #: profiler tracks the heap.
        self.alloc_bytes = 0

    def as_dict(self) -> Dict[str, Any]:
        mean_us = (self.cum_s / self.calls) * US_PER_SECOND if self.calls else 0.0
        return {
            "name": self.name,
            "calls": self.calls,
            "cum_s": self.cum_s,
            "mean_us": mean_us,
            "alloc_bytes": self.alloc_bytes,
        }


class SelfProfiler:
    """Attributes simulator wall time to event-handler types.

    Usage::

        profiler = SelfProfiler()
        loop.attach_profiler(profiler)
        profiler.start()
        loop.run()
        report = profiler.stop(loop)
        profiler.write("BENCH_profile.json", report)

    ``track_heap=True`` additionally snapshots peak heap usage and
    per-handler allocation deltas via ``tracemalloc`` (slower; off by
    default).
    """

    def __init__(self, track_heap: bool = False):
        self.track_heap = track_heap
        self._handlers: Dict[str, HandlerStats] = {}
        self._started_at: Optional[float] = None
        self._wall_s = 0.0
        self._events = 0
        self._peak_heap = 0
        self._tracing_heap = False
        #: True while heap deltas should be sampled around each event —
        #: a plain flag so the per-event path pays one attribute test,
        #: not an ``is_tracing()`` call, when heap tracking is off.
        self._heap_live = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started_at is not None:
            raise TelemetryError("profiler already started")
        if self.track_heap and not tracemalloc.is_tracing():
            tracemalloc.start()  # repro-analyze: disable=A301
            self._tracing_heap = True
        self._heap_live = self.track_heap and tracemalloc.is_tracing()
        self._started_at = time.perf_counter()  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301

    def run_event(self, event) -> None:
        """Execute one event under timing (called by the event loop)."""
        fn = event.fn
        name = getattr(fn, "__qualname__", None) or repr(fn)
        stats = self._handlers.get(name)
        if stats is None:
            stats = HandlerStats(name)
            self._handlers[name] = stats
        heap_live = self._heap_live
        if heap_live:
            heap_before = tracemalloc.get_traced_memory()[0]  # repro-analyze: disable=A301
        t0 = time.perf_counter()  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
        try:
            fn(*event.args)
        finally:
            stats.cum_s += time.perf_counter() - t0  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
            stats.calls += 1
            self._events += 1
            if heap_live:
                delta = tracemalloc.get_traced_memory()[0] - heap_before  # repro-analyze: disable=A301
                if delta > 0:
                    stats.alloc_bytes += delta

    def stop(self, loop=None) -> Dict[str, Any]:
        """Finish timing and return the report dict."""
        if self._started_at is None:
            raise TelemetryError("profiler not started")
        self._wall_s = time.perf_counter() - self._started_at  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
        self._started_at = None
        if self.track_heap and tracemalloc.is_tracing():
            _, self._peak_heap = tracemalloc.get_traced_memory()  # repro-analyze: disable=A301
            if self._tracing_heap:
                tracemalloc.stop()  # repro-analyze: disable=A301
                self._tracing_heap = False
        self._heap_live = False
        return self.report(loop)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, loop=None, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        handlers: List[Dict[str, Any]] = [
            stats.as_dict()
            for stats in sorted(
                self._handlers.values(), key=lambda s: (-s.cum_s, s.name)
            )
        ]
        wall = self._wall_s
        return {
            "kind": PROFILE_KIND,
            "version": PROFILE_VERSION,
            "meta": meta or {},
            "wall_s": wall,
            "events": self._events,
            "events_per_sec": self._events / wall if wall > 0 else 0.0,
            "peak_heap_bytes": self._peak_heap,
            "sim_time_us": loop.now if loop is not None else 0.0,
            "handlers": handlers,
        }

    @staticmethod
    def write(path: str, report: Dict[str, Any]) -> None:
        with open(path, "w") as fp:
            json.dump(report, fp, indent=2, sort_keys=True)
            fp.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SelfProfiler(events={self._events}, "
            f"handlers={len(self._handlers)}, wall_s={self._wall_s:.3f})"
        )
