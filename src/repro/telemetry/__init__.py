"""Virtual-time telemetry for the Persephone reproduction.

The aggregate observability plane: a Prometheus-style metrics registry
(:mod:`~repro.telemetry.registry`), a change-compressed scrape timeline
(:mod:`~repro.telemetry.timeline`), the :class:`TelemetryProbe` that
wires both into a run (:mod:`~repro.telemetry.probe`), exporters for
Prometheus text / JSONL / a static HTML dashboard
(:mod:`~repro.telemetry.export`), the opt-in wall-clock self-profiler
(:mod:`~repro.telemetry.profiler`), benchmark-artifact aggregation
(:mod:`~repro.telemetry.bench`) and the ``repro-metrics`` CLI
(:mod:`~repro.telemetry.cli`).

Everything except the explicitly-allowlisted self-profiler runs on
**virtual time** only — the purity rules in :mod:`repro.lint` (R009)
and :mod:`repro.analyze` (A301) enforce it statically, and
``tests/telemetry/test_determinism.py`` enforces it dynamically
(bit-identical run digests with metrics on or off).
"""

from .probe import DEFAULT_SCRAPE_INTERVAL_US, TelemetryProbe
from .profiler import SelfProfiler
from .registry import (
    COUNTER,
    DEFAULT_BOUNDS,
    GAUGE,
    HISTOGRAM,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_spaced_bounds,
    series_key,
)
from .timeline import MetricsTimeline, SeriesTrack

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BOUNDS",
    "DEFAULT_SCRAPE_INTERVAL_US",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsTimeline",
    "SelfProfiler",
    "SeriesTrack",
    "TelemetryProbe",
    "log_spaced_bounds",
    "series_key",
]
