"""``repro-metrics`` — inspect, convert and gate telemetry artifacts.

Usage::

    repro-metrics summary run.metrics.jsonl       # final values + recon
    repro-metrics export run.metrics.jsonl out.prom
    repro-metrics dashboard run.metrics.jsonl out.html
    repro-metrics profile --out BENCH_profile.json  # run a profiled
                                                    # smoke experiment
    repro-metrics compare a.metrics.jsonl b.metrics.jsonl --tolerance 0.1
    repro-metrics bench --root . --baseline bench-baseline.json

Exit codes: 0 ok, 1 reconciliation / drift / regression failure,
2 usage or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..errors import TelemetryError
from . import bench as bench_mod
from .export import dashboard_html, prometheus_text, read_metrics


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-metrics",
        description="Virtual-time metrics for the Persephone reproduction: "
        "summarize, re-export, render, profile, diff and gate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("summary", help="print a metrics digest")
    p.add_argument("path", help="metrics JSONL written with --metrics")
    p.add_argument(
        "--family", action="append", default=None,
        help="only show series of this family (repeatable)",
    )

    p = sub.add_parser("export", help="re-export the final registry as "
                       "Prometheus text")
    p.add_argument("path")
    p.add_argument("out", help="output .prom path")

    p = sub.add_parser("dashboard", help="re-render the static HTML dashboard")
    p.add_argument("path")
    p.add_argument("out", help="output .html path")

    p = sub.add_parser(
        "profile",
        help="run a profiled figure4-style smoke experiment and write "
        "BENCH_profile.json",
    )
    p.add_argument("--out", default="BENCH_profile.json")
    p.add_argument("--n-requests", type=int, default=6000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--utilization", type=float, default=0.95)
    p.add_argument(
        "--heap", action="store_true",
        help="also measure peak heap and per-handler allocations via a "
        "second, tracemalloc-instrumented run of the same seed (timing "
        "numbers always come from the uninstrumented run)",
    )
    p.add_argument("--top", type=int, default=12, help="handlers to print")

    p = sub.add_parser("compare", help="diff two runs' metrics and flag drift")
    p.add_argument("a", help="baseline metrics JSONL")
    p.add_argument("b", help="candidate metrics JSONL")
    p.add_argument(
        "--tolerance", type=float, default=0.0,
        help="relative drift allowed per series (0 = exact)",
    )
    p.add_argument(
        "--counters-only", action="store_true",
        help="compare monotonic counter series only (gauges are "
        "load-dependent snapshots)",
    )

    p = sub.add_parser(
        "bench",
        help="aggregate BENCH_*.json into BENCH_summary.json and gate "
        "against a baseline",
    )
    p.add_argument("--root", default=".", help="directory holding BENCH_*.json")
    p.add_argument("--out", default="BENCH_summary.json")
    p.add_argument("--baseline", default=None, help="bench-baseline.json to gate against")
    p.add_argument(
        "--write-baseline", default=None,
        help="write a fresh baseline from this aggregation and exit",
    )
    p.add_argument(
        "--tolerance", type=float, default=None,
        help="override the baseline's tolerance",
    )
    return parser


def _fmt_counters(counters: dict) -> str:
    return ", ".join(f"{key}={value}" for key, value in counters.items())


def cmd_summary(args: argparse.Namespace) -> int:
    doc = read_metrics(args.path)
    lines = [f"metrics: {args.path}"]
    if doc.meta:
        lines.append("meta: " + _fmt_counters(doc.meta))
    span = doc.timeline.times[-1] if doc.timeline.times else 0.0
    lines.append(
        f"scrapes: {doc.timeline.n_scrapes} over {span:.0f} us virtual, "
        f"{len(doc.timeline.series)} series"
    )
    if doc.counters:
        lines.append("push counters: " + _fmt_counters(doc.counters))
    wanted = set(args.family) if args.family else None
    lines.append("final values:")
    for key, track in doc.timeline.series.items():
        if wanted is not None and track.family not in wanted:
            continue
        if track.last_value is not None:
            lines.append(f"  {key} = {track.last_value:g}")
    status = 0
    if doc.reconciliation is not None:
        verdict = "OK" if doc.reconciliation.get("ok") else "MISMATCH"
        lines.append(f"telemetry/recorder reconciliation: {verdict}")
        if not doc.reconciliation.get("ok"):
            lines.append("  " + _fmt_counters(doc.reconciliation))
            status = 1
    print("\n".join(lines))
    return status


def cmd_export(args: argparse.Namespace) -> int:
    doc = read_metrics(args.path)
    if doc.registry is None:
        print("error: no registry dump in this metrics file", file=sys.stderr)
        return 2
    with open(args.out, "w") as fp:
        fp.write(prometheus_text(doc.registry))
    print(f"wrote {args.out}: {len(doc.registry)} series")
    return 0


def cmd_dashboard(args: argparse.Namespace) -> int:
    doc = read_metrics(args.path)
    with open(args.out, "w") as fp:
        fp.write(dashboard_html(doc.timeline, meta=doc.meta))
    print(
        f"wrote {args.out}: {len(doc.timeline.series)} series over "
        f"{doc.timeline.n_scrapes} scrapes"
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    # Imported lazily: experiments.common itself imports repro.telemetry.
    from ..experiments.common import run_once
    from ..systems.persephone import PersephoneStaticSystem
    from ..workload.presets import high_bimodal
    from .profiler import SelfProfiler

    def profiled_run(track_heap):
        profiler = SelfProfiler(track_heap=track_heap)
        system = PersephoneStaticSystem(
            n_reserved=1, n_workers=14, name="DARC-static(1)"
        )
        profiler.start()
        result = run_once(
            system,
            high_bimodal(),
            args.utilization,
            n_requests=args.n_requests,
            seed=args.seed,
            profiler=profiler,
        )
        return system, profiler.stop(result.server.loop)

    system, report = profiled_run(track_heap=False)
    if args.heap:
        # Heap observation distorts wall time badly (tracemalloc makes
        # every allocation an order of magnitude slower), so it gets its
        # own run.  Same seed means the identical event sequence: the
        # allocation numbers describe exactly the run that was timed.
        _, heap_report = profiled_run(track_heap=True)
        report["peak_heap_bytes"] = heap_report["peak_heap_bytes"]
        allocs = {h["name"]: h["alloc_bytes"] for h in heap_report["handlers"]}
        for row in report["handlers"]:
            row["alloc_bytes"] = allocs.get(row["name"], 0)
    report["meta"] = {
        "system": system.name,
        "workload": "high_bimodal",
        "utilization": args.utilization,
        "n_requests": args.n_requests,
        "seed": args.seed,
    }
    SelfProfiler.write(args.out, report)
    print(
        f"wrote {args.out}: {report['events']} events in "
        f"{report['wall_s']:.3f}s wall "
        f"({report['events_per_sec']:.0f} events/s, "
        f"{report['sim_time_us']:.0f} us simulated)"
    )
    if report["peak_heap_bytes"]:
        print(f"peak heap: {report['peak_heap_bytes']} bytes")
    print(f"{'handler':<58} {'calls':>8} {'cum_s':>9} {'mean_us':>9}")
    for row in report["handlers"][: args.top]:
        print(
            f"{row['name']:<58} {row['calls']:>8} "
            f"{row['cum_s']:>9.4f} {row['mean_us']:>9.2f}"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    doc_a = read_metrics(args.a)
    doc_b = read_metrics(args.b)
    final_a = doc_a.timeline.final_values()
    final_b = doc_b.timeline.final_values()
    counter_families: Dict[str, bool] = {}
    if args.counters_only:
        for doc in (doc_a, doc_b):
            if doc.registry is None:
                print(
                    "error: --counters-only needs registry dumps in both files",
                    file=sys.stderr,
                )
                return 2
            for name, kind, _help, _series in doc.registry.families():
                counter_families[name] = kind == "counter"

    def keep(doc, key: str) -> bool:
        if not args.counters_only:
            return True
        family = doc.timeline.series[key].family
        return counter_families.get(family, False)

    drift: List[str] = []
    for key in sorted(set(final_a) | set(final_b)):
        in_a, in_b = key in final_a, key in final_b
        if not in_a:
            if keep(doc_b, key):
                drift.append(f"only in {args.b}: {key} = {final_b[key]:g}")
            continue
        if not in_b:
            if keep(doc_a, key):
                drift.append(f"only in {args.a}: {key} = {final_a[key]:g}")
            continue
        if not keep(doc_a, key):
            continue
        va, vb = final_a[key], final_b[key]
        if va == vb:
            continue
        denom = max(abs(va), abs(vb))
        rel = abs(vb - va) / denom if denom else 0.0
        if rel > args.tolerance:
            drift.append(f"{key}: {va:g} -> {vb:g} (drift {rel:.1%})")
    common = len(set(final_a) & set(final_b))
    print(
        f"compared {common} common series "
        f"({len(final_a)} in a, {len(final_b)} in b), "
        f"tolerance {args.tolerance:.1%}"
    )
    if drift:
        for line in drift:
            print("  " + line)
        print(f"DRIFT: {len(drift)} series differ")
        return 1
    print("OK: no metric drift")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    paths = bench_mod.discover(args.root)
    if not paths:
        print(f"error: no BENCH_*.json under {args.root}", file=sys.stderr)
        return 2
    summary = bench_mod.aggregate(paths)
    bench_mod.write_json(args.out, summary)
    n_metrics = sum(len(m) for m in summary["benchmarks"].values())
    print(
        f"wrote {args.out}: {len(summary['benchmarks'])} benchmark(s), "
        f"{n_metrics} metric(s) from {len(paths)} artifact(s)"
    )
    if args.write_baseline:
        baseline = bench_mod.make_baseline(
            summary,
            tolerance=(
                args.tolerance
                if args.tolerance is not None
                else bench_mod.DEFAULT_TOLERANCE
            ),
        )
        bench_mod.write_json(args.write_baseline, baseline)
        print(f"wrote baseline {args.write_baseline}")
        return 0
    if args.baseline:
        baseline = bench_mod._load_json(args.baseline)
        regressions, report = bench_mod.compare(
            summary, baseline, tolerance=args.tolerance
        )
        gated = [r for r in report if r.get("direction")]
        print(f"gated {len(gated)} directional metric(s) against {args.baseline}")
        if regressions:
            for row in regressions:
                if row["status"] == "missing":
                    print(f"  MISSING {row['benchmark']} :: {row['metric']}")
                else:
                    print(
                        f"  REGRESSED {row['benchmark']} :: {row['metric']}: "
                        f"{row['baseline']:g} -> {row['value']:g} "
                        f"({row['change']:+.1%})"
                    )
            print(f"FAIL: {len(regressions)} regression(s)")
            return 1
        print("OK: no benchmark regressions")
    return 0


_COMMANDS = {
    "summary": cmd_summary,
    "export": cmd_export,
    "dashboard": cmd_dashboard,
    "profile": cmd_profile,
    "compare": cmd_compare,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
