"""The metrics registry: Counters, Gauges and Histograms on virtual time.

The registry is the *aggregate* counterpart of :mod:`repro.trace`: where
the tracer answers "what happened to request X", the registry answers
"what did the system look like" — totals, levels and distributions, each
identified by a metric *family* (name, kind, help text) and a sorted
label set, exactly as the Prometheus exposition format models them.

Everything here lives on **virtual time**: values are updated by
instrumentation hooks and pull sources driven from simulated events, and
are timestamped with ``EventLoop.now`` by the scrape loop
(:class:`~repro.telemetry.probe.TelemetryProbe`).  No wall clock, no
randomness, no event scheduling — attaching telemetry cannot perturb a
run (``tests/telemetry/test_determinism.py`` proves digests identical
with it on or off).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import TelemetryError

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_KINDS = (COUNTER, GAUGE, HISTOGRAM)


def series_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Canonical ``name{k="v",...}`` identity of one labelled series."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


def _freeze_labels(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple((key, str(labels[key])) for key in sorted(labels))


def log_spaced_bounds(
    lo_exp: int = -1, hi_exp: int = 7, per_decade: int = 3
) -> Tuple[float, ...]:
    """Fixed log-spaced histogram bucket bounds, ``10**(k/per_decade)``
    from ``10**lo_exp`` to ``10**hi_exp`` inclusive.

    The defaults cover 0.1 us to 10 s — the full span from sub-dispatch
    costs to badly stalled tails — in 25 buckets (plus overflow).
    """
    if per_decade < 1:
        raise TelemetryError(f"per_decade must be >= 1, got {per_decade}")
    if hi_exp <= lo_exp:
        raise TelemetryError(f"need hi_exp > lo_exp, got {lo_exp}..{hi_exp}")
    return tuple(
        10.0 ** (k / per_decade)
        for k in range(lo_exp * per_decade, hi_exp * per_decade + 1)
    )


#: The default latency-histogram bounds (microseconds).
DEFAULT_BOUNDS = log_spaced_bounds()


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "labels", "value")

    kind = COUNTER

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.key} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def set_total(self, value: float) -> None:
        """Adopt an externally maintained running total (pull sources).

        The total may repeat but never move backwards.
        """
        if value < self.value:
            raise TelemetryError(
                f"counter {self.key} cannot decrease "
                f"({self.value} -> {value})"
            )
        self.value = value

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    def sample_items(self) -> Iterator[Tuple[str, float]]:
        yield self.key, self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.key}={self.value})"


class Gauge:
    """An instantaneous level; goes up and down."""

    __slots__ = ("name", "labels", "value")

    kind = GAUGE

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    def sample_items(self) -> Iterator[Tuple[str, float]]:
        yield self.key, self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.key}={self.value})"


class Histogram:
    """A distribution over fixed log-spaced (or caller-chosen) buckets.

    Buckets are *fixed at construction* — never rebalanced — so two runs
    observing the same values produce identical bucket vectors, and the
    memory footprint is constant regardless of sample count.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum")

    kind = HISTOGRAM

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...] = (),
        bounds: Optional[Tuple[float, ...]] = None,
    ):
        if bounds is None:
            bounds = DEFAULT_BOUNDS
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise TelemetryError(f"histogram {name} needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise TelemetryError(f"histogram {name} bounds must be ascending")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bucket counts; the final slot is the overflow (+Inf) bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.bucket_counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    @property
    def key(self) -> str:
        return series_key(self.name, self.labels)

    def sample_items(self) -> Iterator[Tuple[str, float]]:
        """Timeline view: the derived ``_count`` and ``_sum`` series."""
        yield series_key(self.name + "_count", self.labels), float(self.count)
        yield series_key(self.name + "_sum", self.labels), self.sum

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.key}, n={self.count}, sum={self.sum:.1f})"


#: A pull source: called at every scrape with (registry, virtual_now).
SourceFn = Callable[["MetricsRegistry", float], None]


class MetricsRegistry:
    """Get-or-create home for every metric of one run.

    Families and series are kept in insertion order (deterministic —
    instrumentation sites fire in event order), and label sets are
    sorted, so exports are byte-stable across same-seed runs.
    """

    def __init__(self) -> None:
        #: family name -> (kind, help)
        self._families: Dict[str, Tuple[str, str]] = {}
        #: series key -> metric object
        self._series: Dict[str, object] = {}
        #: family name -> series keys in creation order
        self._family_series: Dict[str, List[str]] = {}
        self._sources: List[SourceFn] = []

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def _register_family(self, kind: str, name: str, help_text: str) -> None:
        family = self._families.get(name)
        if family is None:
            self._families[name] = (kind, help_text)
            self._family_series[name] = []
        elif family[0] != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {family[0]}, "
                f"requested as {kind}"
            )
        elif help_text and not family[1]:
            self._families[name] = (kind, help_text)

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        frozen = _freeze_labels(labels)
        key = series_key(name, frozen)
        metric = self._series.get(key)
        if metric is None:
            self._register_family(COUNTER, name, help)
            metric = Counter(name, frozen)
            self._series[key] = metric
            self._family_series[name].append(key)
        elif metric.kind != COUNTER:
            raise TelemetryError(f"series {key} is a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        frozen = _freeze_labels(labels)
        key = series_key(name, frozen)
        metric = self._series.get(key)
        if metric is None:
            self._register_family(GAUGE, name, help)
            metric = Gauge(name, frozen)
            self._series[key] = metric
            self._family_series[name].append(key)
        elif metric.kind != GAUGE:
            raise TelemetryError(f"series {key} is a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Tuple[float, ...]] = None,
        **labels: object,
    ) -> Histogram:
        frozen = _freeze_labels(labels)
        key = series_key(name, frozen)
        metric = self._series.get(key)
        if metric is None:
            self._register_family(HISTOGRAM, name, help)
            metric = Histogram(name, frozen, bounds=bounds)
            self._series[key] = metric
            self._family_series[name].append(key)
        elif metric.kind != HISTOGRAM:
            raise TelemetryError(f"series {key} is a {metric.kind}, not a histogram")
        return metric

    # ------------------------------------------------------------------
    # pull sources + collection
    # ------------------------------------------------------------------
    def register_source(self, source: SourceFn) -> None:
        """Register a pull callback run at every scrape, in order."""
        self._sources.append(source)

    def collect(self, now: float) -> None:
        """Run every pull source against the current simulated state."""
        for source in self._sources:
            source(self, now)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def families(self) -> List[Tuple[str, str, str, List[object]]]:
        """``(name, kind, help, [series...])`` in registration order."""
        return [
            (name, kind, help_text, [self._series[k] for k in self._family_series[name]])
            for name, (kind, help_text) in self._families.items()
        ]

    def series(self) -> List[object]:
        """Every metric series in registration order."""
        return list(self._series.values())

    def get(self, key: str):
        """Series by canonical key, or None."""
        return self._series.get(key)

    def sample_items(self) -> Iterator[Tuple[str, str, float]]:
        """``(series_key, family_name, value)`` for the timeline: one
        entry per counter/gauge, two (``_count``/``_sum``) per histogram."""
        for name in self._families:
            for key in self._family_series[name]:
                metric = self._series[key]
                for item_key, value in metric.sample_items():
                    yield item_key, name, value

    def family_total(self, name: str) -> float:
        """Sum of every series value in one counter/gauge family."""
        keys = self._family_series.get(name)
        if not keys:
            return 0.0
        return sum(self._series[k].value for k in keys)

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MetricsRegistry(families={len(self._families)}, "
            f"series={len(self._series)}, sources={len(self._sources)})"
        )
