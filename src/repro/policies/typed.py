"""Type-aware non-preemptive baselines from Table 5.

These policies know the per-type mean service times up front (ground
truth from the workload spec) — the "oracle" configuration the paper's
Table 5 discusses.  DARC in :mod:`repro.core` instead *learns* the same
information online.

* :class:`FixedPriority` — strict priority by ascending mean service time,
  fully work conserving (DARC-static with 0 reserved cores, §5.3).
* :class:`ShortestJobFirst` — non-preemptive SJF on actual service times.
* :class:`EarliestDeadlineFirst` — deadline = arrival + factor * type mean.
* :class:`DeficitRoundRobin` — fair sharing across typed queues.
* :class:`StaticPartitioning` — hard per-type worker partitions, no
  stealing, no work conservation.
* :class:`CSCQ` — cycle stealing with central queue [42]: two classes,
  the short class may steal the long class's workers, never the reverse.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SchedulingError
from ..server.worker import Worker
from ..workload.request import Request, RequestTypeSpec
from .base import PolicyTraits, Scheduler


def _specs_by_id(type_specs: Sequence[RequestTypeSpec]) -> Dict[int, RequestTypeSpec]:
    by_id = {spec.type_id: spec for spec in type_specs}
    if len(by_id) != len(type_specs):
        raise ConfigurationError("duplicate type ids in type_specs")
    return by_id


class FixedPriority(Scheduler):
    """Strict non-preemptive priority: shortest mean service time first.

    Work conserving: any idle worker takes the highest-priority pending
    request.  Equivalent to DARC-static with zero reserved cores.
    """

    traits = PolicyTraits(
        name="FP",
        app_aware=True,
        typed_queues=True,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Request priority independent of service time",
        example_system="",
        comments="Inflexible with rapid workload changes",
    )

    def __init__(self, type_specs: Sequence[RequestTypeSpec]):
        super().__init__()
        self._specs = _specs_by_id(type_specs)
        #: Type ids in priority order (ascending mean service time).
        self.priority_order = [
            spec.type_id
            for spec in sorted(type_specs, key=lambda s: s.mean_service_time)
        ]
        self.queues: Dict[int, Deque[Request]] = {
            tid: deque() for tid in self.priority_order
        }

    def _queue_for(self, request: Request) -> Deque[Request]:
        tid = request.effective_type()
        queue = self.queues.get(tid)
        if queue is None:
            raise SchedulingError(f"request {request.rid} has unregistered type {tid}")
        return queue

    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None and not self.pending_count():
            self.begin_service(worker, request)
            return
        self._queue_for(request).append(request)
        if worker is not None:
            self.on_worker_free(worker)

    def on_worker_free(self, worker: Worker) -> None:
        for tid in self.priority_order:
            queue = self.queues[tid]
            if queue:
                self.begin_service(worker, queue.popleft())
                return

    def pending_count(self) -> int:
        total = 0
        for q in self.queues.values():
            total += len(q)
        return total


class ShortestJobFirst(Scheduler):
    """Non-preemptive SJF using the request's actual service time.

    This is an oracle policy (real schedulers cannot see exact service
    times, §1) included as an upper-bound comparison point.
    """

    traits = PolicyTraits(
        name="SJF",
        app_aware=True,
        typed_queues=False,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Custom",
        example_system="",
        comments="Needs exact service times (oracle here)",
    )

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[Tuple[float, int, Request]] = []

    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None and not self._heap:
            self.begin_service(worker, request)
            return
        heapq.heappush(self._heap, (request.service_time, request.rid, request))
        if worker is not None:
            self.on_worker_free(worker)

    def on_worker_free(self, worker: Worker) -> None:
        if self._heap:
            _, _, request = heapq.heappop(self._heap)
            self.begin_service(worker, request)

    def pending_count(self) -> int:
        return len(self._heap)


class EarliestDeadlineFirst(Scheduler):
    """Non-preemptive EDF with per-type relative deadlines.

    Each request's deadline is ``arrival + deadline_factor * type_mean`` —
    i.e. a slowdown-style SLO.  Ties break FIFO.
    """

    traits = PolicyTraits(
        name="EDF",
        app_aware=True,
        typed_queues=False,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Request priority independent of service time",
        example_system="",
        comments="Can lead to priority inversion",
    )

    def __init__(self, type_specs: Sequence[RequestTypeSpec], deadline_factor: float = 10.0):
        super().__init__()
        if deadline_factor <= 0:
            raise ConfigurationError(f"deadline_factor must be > 0, got {deadline_factor}")
        self._specs = _specs_by_id(type_specs)
        self.deadline_factor = deadline_factor
        self._heap: List[Tuple[float, int, Request]] = []

    def _deadline(self, request: Request) -> float:
        spec = self._specs.get(request.effective_type())
        mean = spec.mean_service_time if spec else request.service_time
        return request.arrival_time + self.deadline_factor * mean

    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None and not self._heap:
            self.begin_service(worker, request)
            return
        heapq.heappush(self._heap, (self._deadline(request), request.rid, request))
        if worker is not None:
            self.on_worker_free(worker)

    def on_worker_free(self, worker: Worker) -> None:
        if self._heap:
            _, _, request = heapq.heappop(self._heap)
            self.begin_service(worker, request)

    def pending_count(self) -> int:
        return len(self._heap)


class DeficitRoundRobin(Scheduler):
    """Deficit round robin across typed queues (Table 5's (D)(W)RR row).

    Each typed queue accumulates ``quantum_us`` of deficit per visit and
    may dispatch while its head's service time fits in the deficit.
    Weights scale each queue's quantum.
    """

    traits = PolicyTraits(
        name="DRR",
        app_aware=True,
        typed_queues=True,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Request flows with fairness requirements",
        example_system="",
        comments="Fairness across types, not tail-optimal",
    )

    def __init__(
        self,
        type_specs: Sequence[RequestTypeSpec],
        quantum_us: float = 10.0,
        weights: Optional[Dict[int, float]] = None,
    ):
        super().__init__()
        if quantum_us <= 0:
            raise ConfigurationError(f"quantum_us must be > 0, got {quantum_us}")
        self._specs = _specs_by_id(type_specs)
        self.quantum_us = quantum_us
        self.weights = weights or {}
        self.order = [s.type_id for s in type_specs]
        self.queues: Dict[int, Deque[Request]] = {tid: deque() for tid in self.order}
        self.deficits: Dict[int, float] = {tid: 0.0 for tid in self.order}
        self._cursor = 0

    def on_request(self, request: Request) -> None:
        tid = request.effective_type()
        queue = self.queues.get(tid)
        if queue is None:
            raise SchedulingError(f"request {request.rid} has unregistered type {tid}")
        queue.append(request)
        worker = self.first_free_worker()
        if worker is not None:
            self.on_worker_free(worker)

    def on_worker_free(self, worker: Worker) -> None:
        if not self.pending_count():
            return
        n = len(self.order)
        # At most two full rotations: one may only add deficit, the second
        # must then find a dispatchable head (deficit >= smallest head).
        for _ in range(2 * n):
            tid = self.order[self._cursor]
            queue = self.queues[tid]
            if queue:
                weight = self.weights.get(tid, 1.0)
                head = queue[0]
                if self.deficits[tid] >= head.service_time:
                    self.deficits[tid] -= head.service_time
                    self.begin_service(worker, queue.popleft())
                    return
                self.deficits[tid] += self.quantum_us * weight
                # A queue that still cannot afford its head keeps its
                # deficit for the next rotation.
            else:
                # Empty queues do not bank deficit (standard DRR).
                self.deficits[tid] = 0.0
            self._cursor = (self._cursor + 1) % n
        # Pathological case: a single head larger than accumulated deficit
        # after two rotations; force progress to stay work conserving.
        for tid in self.order:
            if self.queues[tid]:
                self.deficits[tid] = 0.0
                self.begin_service(worker, self.queues[tid].popleft())
                return

    def pending_count(self) -> int:
        total = 0
        for q in self.queues.values():
            total += len(q)
        return total


class StaticPartitioning(Scheduler):
    """Hard partitions: each type owns a fixed worker set, no stealing.

    ``allocation`` maps type id to a worker count; if omitted, workers are
    split proportionally to the types' CPU demand shares (Eq. 1) with at
    least one worker per type.
    """

    traits = PolicyTraits(
        name="SP",
        app_aware=True,
        typed_queues=True,
        work_conserving=False,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Different request types with different SLOs",
        example_system="",
        comments="No latency guarantees; cannot absorb bursts",
    )

    def __init__(
        self,
        type_specs: Sequence[RequestTypeSpec],
        allocation: Optional[Dict[int, int]] = None,
    ):
        super().__init__()
        self._spec_list = sorted(type_specs, key=lambda s: s.mean_service_time)
        self._specs = _specs_by_id(type_specs)
        self.allocation = allocation
        self.queues: Dict[int, Deque[Request]] = {
            s.type_id: deque() for s in type_specs
        }
        self.worker_sets: Dict[int, List[Worker]] = {}
        self._type_of_worker: Dict[int, int] = {}

    def on_bound(self) -> None:
        n_workers = len(self.workers)
        n_types = len(self._spec_list)
        if n_types > n_workers:
            raise ConfigurationError(
                f"StaticPartitioning needs >= 1 worker per type "
                f"({n_types} types, {n_workers} workers)"
            )
        if self.allocation is None:
            total_demand = sum(
                s.mean_service_time * s.ratio for s in self._spec_list
            )
            counts: Dict[int, int] = {}
            for spec in self._spec_list:
                share = spec.mean_service_time * spec.ratio / total_demand
                counts[spec.type_id] = max(1, round(share * n_workers))
            # Trim overflow from the largest allocations, then grow into
            # any remaining workers.
            while sum(counts.values()) > n_workers:
                biggest = max(counts, key=lambda t: counts[t])
                if counts[biggest] == 1:
                    raise ConfigurationError("cannot fit one worker per type")
                counts[biggest] -= 1
            while sum(counts.values()) < n_workers:
                smallest = min(counts, key=lambda t: counts[t])
                counts[smallest] += 1
            self.allocation = counts
        if sum(self.allocation.values()) != n_workers:
            raise ConfigurationError(
                f"allocation {self.allocation} does not cover {n_workers} workers"
            )
        cursor = 0
        for spec in self._spec_list:
            count = self.allocation[spec.type_id]
            workers = self.workers[cursor : cursor + count]
            cursor += count
            self.worker_sets[spec.type_id] = workers
            for w in workers:
                self._type_of_worker[w.worker_id] = spec.type_id

    def on_request(self, request: Request) -> None:
        tid = request.effective_type()
        if tid not in self.queues:
            raise SchedulingError(f"request {request.rid} has unregistered type {tid}")
        for worker in self.worker_sets[tid]:
            if worker.is_free:
                self.begin_service(worker, request)
                return
        self.queues[tid].append(request)

    def on_worker_free(self, worker: Worker) -> None:
        tid = self._type_of_worker[worker.worker_id]
        queue = self.queues[tid]
        if queue:
            self.begin_service(worker, queue.popleft())

    def pending_count(self) -> int:
        return sum(len(q) for q in self.queues.values())


class CSCQ(Scheduler):
    """Cycle Stealing with Central Queue (Harchol-Balter et al. [42]).

    Types are split into a *short* class and a *long* class at
    ``threshold_us`` mean service time.  Short requests run on the short
    workers and may steal idle long workers; long requests only ever run
    on long workers.  Within each class, FCFS.
    """

    traits = PolicyTraits(
        name="CSCQ",
        app_aware=True,
        typed_queues=True,
        work_conserving=False,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Mix of short and long requests with the same priority",
        example_system="",
        comments="Optimal for average latency",
    )

    def __init__(
        self,
        type_specs: Sequence[RequestTypeSpec],
        threshold_us: float,
        n_short_workers: int,
    ):
        super().__init__()
        if n_short_workers < 1:
            raise ConfigurationError(f"n_short_workers must be >= 1, got {n_short_workers}")
        self._specs = _specs_by_id(type_specs)
        self.threshold_us = threshold_us
        self.n_short_workers = n_short_workers
        self.short_types = {
            s.type_id for s in type_specs if s.mean_service_time <= threshold_us
        }
        self.short_queue: Deque[Request] = deque()
        self.long_queue: Deque[Request] = deque()
        self.short_workers: List[Worker] = []
        self.long_workers: List[Worker] = []

    def on_bound(self) -> None:
        if self.n_short_workers >= len(self.workers):
            raise ConfigurationError(
                f"n_short_workers={self.n_short_workers} leaves no long workers "
                f"out of {len(self.workers)}"
            )
        self.short_workers = self.workers[: self.n_short_workers]
        self.long_workers = self.workers[self.n_short_workers :]
        for w in self.short_workers:
            w.tags["cscq_class"] = "short"
        for w in self.long_workers:
            w.tags["cscq_class"] = "long"

    def _is_short(self, request: Request) -> bool:
        return request.effective_type() in self.short_types

    def on_request(self, request: Request) -> None:
        if self._is_short(request):
            for worker in self.short_workers:
                if worker.is_free:
                    self.begin_service(worker, request)
                    return
            for worker in self.long_workers:  # cycle stealing
                if worker.is_free:
                    self.begin_service(worker, request)
                    return
            self.short_queue.append(request)
        else:
            for worker in self.long_workers:
                if worker.is_free:
                    self.begin_service(worker, request)
                    return
            self.long_queue.append(request)

    def on_worker_free(self, worker: Worker) -> None:
        short_queue = self.short_queue
        if worker.tags.get("cscq_class") == "short":
            if short_queue:
                self.begin_service(worker, short_queue.popleft())
        else:
            # Long workers prefer their own class, then donate to shorts.
            if self.long_queue:
                self.begin_service(worker, self.long_queue.popleft())
            elif short_queue:
                self.begin_service(worker, short_queue.popleft())

    def pending_count(self) -> int:
        return len(self.short_queue) + len(self.long_queue)
