"""Preemptive Shortest-Remaining-Processing-Time (Table 5).

SRPT is optimal for *mean* response time [Schrage 1968] and is what the
datacenter-transport works the paper builds on (pFabric, Homa)
approximate in the network.  A CPU cannot implement it at microsecond
scale — it needs exact remaining times and free preemption — so this is
an *oracle upper bound*: the extension benchmark measures how close DARC
gets without preemption or clairvoyance.

``preempt_cost_us`` optionally charges each preemption, turning the
oracle into "SRPT with real interrupts" for the same study as Fig. 10.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..server.worker import Worker
from ..workload.request import Request
from .base import PolicyTraits, Scheduler


class ShortestRemainingProcessingTime(Scheduler):
    """Preemptive SRPT with exact (oracle) remaining times."""

    traits = PolicyTraits(
        name="SRPT",
        app_aware=True,
        typed_queues=False,
        work_conserving=True,
        preemptive=True,
        prevents_hol_blocking=True,
        ideal_workload="Heavy-tailed",
        example_system="pFabric/Homa (network)",
        comments="Oracle; can starve long RPCs",
    )

    def __init__(self, preempt_cost_us: float = 0.0):
        super().__init__()
        if preempt_cost_us < 0:
            raise ConfigurationError(f"preempt_cost_us must be >= 0, got {preempt_cost_us}")
        self.preempt_cost_us = preempt_cost_us
        self.preemptions = 0
        self._heap: List[Tuple[float, int, Request]] = []
        #: worker_id -> (request, slice_start, finish_event)
        self._running: Dict[int, Tuple[Request, float, object]] = {}

    # ------------------------------------------------------------------
    # queue helpers
    # ------------------------------------------------------------------
    def _push(self, request: Request) -> None:
        heapq.heappush(self._heap, (request.remaining_time, request.rid, request))

    def _pop(self) -> Optional[Request]:
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def pending_count(self) -> int:
        return len(self._heap)

    def _longest_running(self) -> Optional[int]:
        """Worker running the request with the most remaining time."""
        best_wid = None
        best_remaining = -1.0
        now = self.loop.now
        for wid, (request, start, _) in self._running.items():
            remaining = request.remaining_time - (now - start)
            if remaining > best_remaining:
                best_remaining = remaining
                best_wid = wid
        return best_wid

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None:
            self._start(worker, request)
            return
        # All busy: preempt iff the newcomer beats the worst running
        # request's *remaining* time.
        victim_wid = self._longest_running()
        if victim_wid is not None:
            victim, start, finish_event = self._running[victim_wid]
            victim_remaining = victim.remaining_time - (self.loop.now - start)
            if request.remaining_time < victim_remaining:
                # Queue the newcomer first: zero-cost preemption refills
                # the freed worker synchronously from the heap.
                self._push(request)
                self._preempt(victim_wid)
                return
        self._push(request)

    def _preempt(self, worker_id: int) -> None:
        request, start, finish_event = self._running.pop(worker_id)
        finish_event.cancel()
        worker = self.workers[worker_id]
        now = self.loop.now
        consumed = now - start
        request.remaining_time -= consumed
        request.preemption_count += 1
        self.preemptions += 1
        cost = self.preempt_cost_us
        if cost > 0:
            request.overhead_time += cost
            self.schedule_service_event(worker, cost, self._preempt_done, worker, request, cost)
        else:
            worker.end(now)
            self._push(request)
            self.on_worker_free(worker)

    def _preempt_done(self, worker: Worker, request: Request, cost: float) -> None:
        worker.end(self.loop.now, overhead=cost)
        self._push(request)
        self.on_worker_free(worker)

    def _start(self, worker: Worker, request: Request) -> None:
        now = self.loop.now
        if request.dispatch_time is None:
            request.dispatch_time = now
        worker.begin(request, now)
        finish_event = self.schedule_service_event(
            worker, request.remaining_time, self._finish, worker, request
        )
        self._running[worker.worker_id] = (request, now, finish_event)

    def on_worker_crash(self, worker: Worker, requeue: bool = True):
        """Crash: drop the running-bookkeeping entry; the base class
        cancels the registered finish event and evicts the request."""
        self._running.pop(worker.worker_id, None)
        return super().on_worker_crash(worker, requeue=requeue)

    def _finish(self, worker: Worker, request: Request) -> None:
        now = self.loop.now
        self._running.pop(worker.worker_id, None)
        worker.end(now)
        worker.completed += 1
        request.remaining_time = 0.0
        request.finish_time = now
        if self._on_complete is not None:
            self._on_complete(request)
        self.completion_hook(worker, request)
        self.on_worker_free(worker)

    def on_worker_free(self, worker: Worker) -> None:
        if not worker.is_free:
            return
        request = self._pop()
        if request is not None:
            self._start(worker, request)
