"""Preemptive time sharing — the Shinjuku model (§2 "TS", §5, Fig. 10).

Shinjuku preempts running requests every quantum (5 µs in the paper's
tuning) using Dune-based user-level interrupts.  Each preemption costs
the worker real time: the paper measured ≈2000 cycles (≈1 µs at 2 GHz)
and Fig. 10 decomposes the cost into a propagation *delay* plus a
preemption *overhead*.  This module models:

* ``quantum_us`` — slice length;
* ``preempt_overhead_us`` — worker time burned per preemption;
* ``preempt_delay_us`` — extra time the request keeps the core after the
  quantum expires before the interrupt lands (Fig. 10's "TS 4 µs" = 2 µs
  delay + 2 µs overhead);
* two queue disciplines, matching Shinjuku's policies (§5.1):

  - ``single``: one central queue; preempted requests re-enter at the
    *tail* (processor sharing across everything);
  - ``multi``: one queue per request type; preempted requests re-enter at
    the *head* of their queue; queues are picked by a Borrowed-Virtual-
    Time-like rule (least virtual time, weighted).

With ``preempt_overhead_us = preempt_delay_us = 0`` this is the ideal
"TS 0 µs" system of Fig. 10.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, SchedulingError
from ..server.worker import Worker
from ..workload.request import Request, RequestTypeSpec
from .base import PolicyTraits, Scheduler


class TimeSharing(Scheduler):
    """Quantum-based preemptive scheduling with explicit preemption costs."""

    traits = PolicyTraits(
        name="TS",
        app_aware=True,
        typed_queues=True,
        work_conserving=True,
        preemptive=True,
        prevents_hol_blocking=True,
        ideal_workload="Heavy-tailed without priorities",
        example_system="Shinjuku",
        comments="Preemption overheads cap sustainable load at us scale",
    )

    def __init__(
        self,
        quantum_us: float = 5.0,
        preempt_overhead_us: float = 1.0,
        preempt_delay_us: float = 0.0,
        mode: str = "single",
        type_specs: Optional[Sequence[RequestTypeSpec]] = None,
        weights: Optional[Dict[int, float]] = None,
        queue_capacity: Optional[int] = None,
        trigger: str = "timer",
    ):
        super().__init__()
        if quantum_us <= 0:
            raise ConfigurationError(f"quantum_us must be > 0, got {quantum_us}")
        if preempt_overhead_us < 0 or preempt_delay_us < 0:
            raise ConfigurationError("preemption costs must be >= 0")
        if mode not in ("single", "multi"):
            raise ConfigurationError(f"mode must be 'single' or 'multi', got {mode!r}")
        if mode == "multi" and not type_specs:
            raise ConfigurationError("multi-queue mode requires type_specs")
        if trigger not in ("timer", "demand"):
            raise ConfigurationError(
                f"trigger must be 'timer' or 'demand', got {trigger!r}"
            )
        self.quantum_us = quantum_us
        self.preempt_overhead_us = preempt_overhead_us
        self.preempt_delay_us = preempt_delay_us
        self.mode = mode
        #: "timer" preempts at every quantum boundary (the real Shinjuku);
        #: "demand" preempts only when queued work exists — past its
        #: quantum a request runs on until a new arrival blocks, which is
        #: the model behind the paper's §2/Fig. 10 simulations ("a
        #: preemption event can be triggered as soon as a short request
        #: is blocked in the queue").  Frequency stays capped at one
        #: preemption per quantum per worker.
        self.trigger = trigger
        self.weights = weights or {}
        self.queue_capacity = queue_capacity
        self.preemptions = 0
        #: worker_id -> (request, slice_start, completion_event) for
        #: requests running past their quantum in demand mode.
        self._overdue: Dict[int, tuple] = {}

        self.central: Deque[Request] = deque()
        self.typed: Dict[int, Deque[Request]] = {}
        self.vtimes: Dict[int, float] = {}
        if type_specs:
            for spec in type_specs:
                self.typed[spec.type_id] = deque()
                self.vtimes[spec.type_id] = 0.0

    # ------------------------------------------------------------------
    # queue discipline
    # ------------------------------------------------------------------
    def _enqueue(self, request: Request, preempted: bool) -> bool:
        """Returns False when flow control drops the request."""
        if self.mode == "single":
            if (
                not preempted
                and self.queue_capacity is not None
                and len(self.central) >= self.queue_capacity
            ):
                return False
            # Shinjuku single-queue: preempted requests go to the *tail*
            # too — that is what shares the processor.
            self.central.append(request)
            return True
        tid = request.effective_type()
        queue = self.typed.get(tid)
        if queue is None:
            raise SchedulingError(f"request {request.rid} has unregistered type {tid}")
        if (
            not preempted
            and self.queue_capacity is not None
            and len(queue) >= self.queue_capacity
        ):
            return False
        if preempted:
            queue.appendleft(request)  # multi-queue: head of own queue
        else:
            queue.append(request)
        return True

    def _dequeue(self) -> Optional[Request]:
        if self.mode == "single":
            return self.central.popleft() if self.central else None
        # BVT-like: serve the non-empty queue with the smallest virtual
        # time; charge it the expected slice normalized by its weight.
        best_tid = None
        best_v = None
        for tid, queue in self.typed.items():
            if not queue:
                continue
            v = self.vtimes[tid]
            if best_v is None or v < best_v:
                best_v = v
                best_tid = tid
        if best_tid is None:
            return None
        request = self.typed[best_tid].popleft()
        expected = min(request.remaining_time, self.quantum_us)
        self.vtimes[best_tid] += expected / self.weights.get(best_tid, 1.0)
        return request

    def pending_count(self) -> int:
        if self.mode == "single":
            return len(self.central)
        total = 0
        for q in self.typed.values():
            total += len(q)
        return total

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None and not self.pending_count():
            self._start_slice(worker, request)
            return
        if not self._enqueue(request, preempted=False):
            self.drop(request)
            return
        if worker is not None:
            self.on_worker_free(worker)
            return
        if self.trigger == "demand" and self._overdue:
            self._preempt_most_overdue()

    def on_worker_free(self, worker: Worker) -> None:
        request = self._dequeue()
        if request is not None:
            self._start_slice(worker, request)

    def _start_slice(self, worker: Worker, request: Request) -> None:
        assert self.loop is not None
        now = self.loop.now
        if request.dispatch_time is None:
            request.dispatch_time = now
        worker.begin(request, now)
        if self.tracer is not None:
            self.tracer.on_dispatch(request, worker)
        slice_us = min(request.remaining_time, self.quantum_us)
        # A straggling core executes the slice speed_factor times slower;
        # slice_us stays nominal (it is what remaining_time is charged).
        wall = slice_us * worker.speed_factor
        if slice_us >= request.remaining_time:
            self.schedule_service_event(worker, wall, self._slice_finished, worker, request)
        elif self.trigger == "demand":
            self.schedule_service_event(
                worker, wall, self._quantum_boundary, worker, request, slice_us
            )
        else:
            cost = self.preempt_delay_us + self.preempt_overhead_us
            self.schedule_service_event(
                worker, wall + cost, self._slice_preempted, worker, request, slice_us, cost
            )

    # ------------------------------------------------------------------
    # demand-triggered preemption (§2 / Fig. 10 simulation model)
    # ------------------------------------------------------------------
    def _quantum_boundary(self, worker: Worker, request: Request, slice_us: float) -> None:
        """The quantum elapsed; preempt only if someone is waiting."""
        assert self.loop is not None
        if self.pending_count() > 0:
            cost = self.preempt_delay_us + self.preempt_overhead_us
            self.schedule_service_event(
                worker, cost, self._slice_preempted, worker, request, slice_us, cost
            )
            return
        # Nobody waits: run on, but stay preemptible the moment work
        # arrives.  Book the natural completion; a later preemption
        # cancels it.
        factor = worker.speed_factor
        completion = self.schedule_service_event(
            worker,
            (request.remaining_time - slice_us) * factor,
            self._overdue_finished,
            worker,
            request,
        )
        self._overdue[worker.worker_id] = (
            request,
            self.loop.now - slice_us * factor,
            completion,
            factor,
        )

    def _overdue_finished(self, worker: Worker, request: Request) -> None:
        self._overdue.pop(worker.worker_id, None)
        self._slice_finished(worker, request)

    def _preempt_most_overdue(self) -> None:
        """A blocked arrival interrupts the longest-running overdue
        request (capped at one preemption per arrival)."""
        assert self.loop is not None
        # Tie-break on worker id: two slices can start at the same
        # timestamp (e.g. a batch of frees after a crash), and without
        # the second key the victim would be whichever entered the dict
        # first — an ordering no line of code states.
        worker_id = min(self._overdue, key=lambda wid: (self._overdue[wid][1], wid))
        request, slice_start, completion, factor = self._overdue.pop(worker_id)
        completion.cancel()
        worker = self.workers[worker_id]
        consumed = (self.loop.now - slice_start) / factor
        cost = self.preempt_delay_us + self.preempt_overhead_us
        self.schedule_service_event(
            worker, cost, self._slice_preempted, worker, request, consumed, cost
        )

    def on_worker_crash(self, worker: Worker, requeue: bool = True):
        """Crash: clear demand-mode overdue state before the generic
        eviction (its completion event is the registered service event,
        so the base class cancels it)."""
        self._overdue.pop(worker.worker_id, None)
        return super().on_worker_crash(worker, requeue=requeue)

    def _slice_finished(self, worker: Worker, request: Request) -> None:
        assert self.loop is not None
        now = self.loop.now
        self._service_events.pop(worker.worker_id, None)
        worker.end(now)
        worker.completed += 1
        request.remaining_time = 0.0
        request.finish_time = now
        if self.tracer is not None:
            self.tracer.on_complete(request, worker)
        if self.telemetry is not None:
            self.telemetry.on_complete(request, worker)
        if self._on_complete is not None:
            self._on_complete(request)
        self.completion_hook(worker, request)
        self.on_worker_free(worker)

    def _slice_preempted(
        self, worker: Worker, request: Request, slice_us: float, cost: float
    ) -> None:
        assert self.loop is not None
        self._service_events.pop(worker.worker_id, None)
        worker.end(self.loop.now, overhead=cost)
        if self.tracer is not None:
            self.tracer.on_preempt(request, worker, cost)
        if self.telemetry is not None:
            self.telemetry.on_preempt(request, worker, cost)
        request.remaining_time -= slice_us
        request.preemption_count += 1
        request.overhead_time += cost
        self.preemptions += 1
        self._enqueue(request, preempted=True)
        self.on_worker_free(worker)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TimeSharing(q={self.quantum_us}us, o={self.preempt_overhead_us}us, "
            f"d={self.preempt_delay_us}us, mode={self.mode!r})"
        )
