"""First-come-first-served policies: c-FCFS, d-FCFS, and work stealing.

* :class:`CentralizedFCFS` (c-FCFS) — one shared FIFO feeding any idle
  worker; models ZygOS/Shenango's effective behaviour and the single
  dispatch queue of e.g. NGINX.
* :class:`DecentralizedFCFS` (d-FCFS) — per-worker FIFOs fed by an RSS
  hash; models IX/Arrakis and Shenango with stealing disabled.
* :class:`WorkStealingFCFS` — d-FCFS plus idle-worker stealing with a
  per-steal cost; models how Shenango *approximates* c-FCFS.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

import numpy as np

from ..errors import ConfigurationError
from ..server.worker import Worker
from ..workload.request import Request
from .base import PolicyTraits, Scheduler


class CentralizedFCFS(Scheduler):
    """Single shared queue, FIFO, work conserving, non-preemptive."""

    traits = PolicyTraits(
        name="c-FCFS",
        app_aware=False,
        typed_queues=False,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Light-tailed",
        example_system="ZygOS / Shenango",
        comments="Load imbalance free, but long requests block short ones",
    )

    def __init__(self, queue_capacity: Optional[int] = None):
        super().__init__()
        if queue_capacity is not None and queue_capacity < 1:
            raise ConfigurationError(f"queue_capacity must be >= 1, got {queue_capacity}")
        self.queue_capacity = queue_capacity
        self.queue: Deque[Request] = deque()

    def on_request(self, request: Request) -> None:
        worker = self.first_free_worker()
        if worker is not None:
            self.begin_service(worker, request)
            return
        if self.queue_capacity is not None and len(self.queue) >= self.queue_capacity:
            self.drop(request)
            return
        self.queue.append(request)

    def on_worker_free(self, worker: Worker) -> None:
        if self.queue:
            self.begin_service(worker, self.queue.popleft())

    def pending_count(self) -> int:
        return len(self.queue)


class DecentralizedFCFS(Scheduler):
    """Per-worker FIFOs fed by a hash, as RSS does in hardware.

    ``steering`` selects how arrivals map to workers:

    * ``"random"``       — uniform random, the standard model of RSS over
      many flows (requires ``rng``);
    * ``"round_robin"``  — deterministic rotation;
    * ``"rid_hash"``     — hash of the request id (deterministic but
      uneven over small windows, closest to per-flow RSS).
    """

    traits = PolicyTraits(
        name="d-FCFS",
        app_aware=False,
        typed_queues=False,
        work_conserving=False,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Light-tailed",
        example_system="IX / Arrakis",
        comments="Easy to implement; uncontrolled idleness under imbalance",
    )

    def __init__(
        self,
        steering: str = "random",
        rng: Optional[np.random.Generator] = None,
        queue_capacity: Optional[int] = None,
    ):
        super().__init__()
        if steering not in ("random", "round_robin", "rid_hash"):
            raise ConfigurationError(f"unknown steering {steering!r}")
        if steering == "random" and rng is None:
            raise ConfigurationError("steering='random' requires an rng")
        self.steering = steering
        self.rng = rng
        self.queue_capacity = queue_capacity
        self.queues: List[Deque[Request]] = []
        self._rr_next = 0

    def on_bound(self) -> None:
        self.queues = [deque() for _ in self.workers]

    def _steer(self, request: Request) -> int:
        n = len(self.workers)
        if self.steering == "random":
            assert self.rng is not None
            return int(self.rng.integers(0, n))
        if self.steering == "round_robin":
            idx = self._rr_next
            self._rr_next = (self._rr_next + 1) % n
            return idx
        # rid_hash: a small multiplicative hash; deterministic.
        return (request.rid * 2654435761) % n

    def on_request(self, request: Request) -> None:
        idx = self._steer(request)
        worker = self.workers[idx]
        if worker.is_free and not self.queues[idx]:
            self.begin_service(worker, request)
            return
        if self.queue_capacity is not None and len(self.queues[idx]) >= self.queue_capacity:
            self.drop(request)
            return
        self.queues[idx].append(request)

    def on_worker_free(self, worker: Worker) -> None:
        queue = self.queues[worker.worker_id - self.workers[0].worker_id]
        if queue:
            self.begin_service(worker, queue.popleft())

    def pending_count(self) -> int:
        return sum(len(q) for q in self.queues)


class WorkStealingFCFS(DecentralizedFCFS):
    """d-FCFS plus work stealing — the Shenango/ZygOS c-FCFS approximation.

    An idle worker whose own queue is empty steals the head of a victim
    queue.  ``steal_cost_us`` models the cross-core coordination cost of
    each successful steal (added to the stolen request's effective
    occupancy as overhead).  ``victim`` picks the victimization rule.
    """

    traits = PolicyTraits(
        name="ws-FCFS",
        app_aware=False,
        typed_queues=False,
        work_conserving=True,
        preemptive=False,
        prevents_hol_blocking=False,
        ideal_workload="Light-tailed",
        example_system="Shenango",
        comments="Approximates c-FCFS; stealing costs cross-core traffic",
    )

    def __init__(
        self,
        steering: str = "random",
        rng: Optional[np.random.Generator] = None,
        queue_capacity: Optional[int] = None,
        steal_cost_us: float = 0.0,
        victim: str = "longest",
    ):
        super().__init__(steering=steering, rng=rng, queue_capacity=queue_capacity)
        if steal_cost_us < 0:
            raise ConfigurationError(f"steal_cost_us must be >= 0, got {steal_cost_us}")
        if victim not in ("longest", "random"):
            raise ConfigurationError(f"unknown victim rule {victim!r}")
        if victim == "random" and rng is None:
            raise ConfigurationError("victim='random' requires an rng")
        self.steal_cost_us = steal_cost_us
        self.victim = victim
        self.steals = 0

    def on_request(self, request: Request) -> None:
        idx = self._steer(request)
        worker = self.workers[idx]
        if worker.is_free and not self.queues[idx]:
            self.begin_service(worker, request)
            return
        if self.queue_capacity is not None and len(self.queues[idx]) >= self.queue_capacity:
            self.drop(request)
            return
        self.queues[idx].append(request)
        # Stealing is also triggered by arrival: some *other* worker may be
        # idle while this queue just became non-empty.
        idle = self.first_free_worker()
        if idle is not None:
            self.on_worker_free(idle)

    def _pick_victim(self) -> Optional[int]:
        # Runs on every completion when the local queue is empty: the
        # random flavour needs the materialized index list (the RNG draw
        # must see the same candidate ordering), but the longest-queue
        # flavour scans without allocating.
        if self.victim == "random":
            non_empty = [  # repro-analyze: disable=A401
                i for i, q in enumerate(self.queues) if q
            ]
            if not non_empty:
                return None
            assert self.rng is not None
            return int(non_empty[self.rng.integers(0, len(non_empty))])
        best = None
        best_len = 0
        for i, q in enumerate(self.queues):
            qlen = len(q)
            if qlen > best_len:
                best = i
                best_len = qlen
        return best

    def on_worker_free(self, worker: Worker) -> None:
        my_idx = worker.worker_id - self.workers[0].worker_id
        if self.queues[my_idx]:
            self.begin_service(worker, self.queues[my_idx].popleft())
            return
        victim = self._pick_victim()
        if victim is None:
            return
        request = self.queues[victim].popleft()
        self.steals += 1
        if self.tracer is not None:
            self.tracer.on_decision(
                "steal",
                rid=request.rid,
                thief=worker.worker_id,
                victim=self.workers[victim].worker_id,
                cost_us=self.steal_cost_us,
            )
        if self.telemetry is not None:
            self.telemetry.on_steal(
                request, worker, self.workers[victim].worker_id, self.steal_cost_us
            )
        if self.steal_cost_us > 0:
            # The steal costs coordination time before service starts.
            now = self.loop.now
            request.overhead_time += self.steal_cost_us
            worker.begin(request, now)
            request.dispatch_time = now
            if self.tracer is not None:
                self.tracer.on_dispatch(request, worker)
            self.schedule_service_event(
                worker,
                request.remaining_time * worker.speed_factor + self.steal_cost_us,
                self._complete_stolen,
                worker,
                request,
            )
        else:
            self.begin_service(worker, request)

    def _complete_stolen(self, worker: Worker, request: Request) -> None:
        assert self.loop is not None
        now = self.loop.now
        self._service_events.pop(worker.worker_id, None)
        worker.end(now, overhead=self.steal_cost_us)
        worker.completed += 1
        request.remaining_time = 0.0
        request.finish_time = now
        if self.tracer is not None:
            self.tracer.on_complete(request, worker)
        if self.telemetry is not None:
            self.telemetry.on_complete(request, worker)
        if self._on_complete is not None:
            self._on_complete(request)
        self.completion_hook(worker, request)
        self.on_worker_free(worker)
