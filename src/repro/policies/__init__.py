"""Scheduling policies: the Table 1 / Table 5 comparison set.

DARC itself lives in :mod:`repro.core`; this package holds the baselines
and the shared :class:`Scheduler` interface.
"""

from .base import PolicyTraits, Scheduler
from .fcfs import CentralizedFCFS, DecentralizedFCFS, WorkStealingFCFS
from .srpt import ShortestRemainingProcessingTime
from .timesharing import TimeSharing
from .typed import (
    CSCQ,
    DeficitRoundRobin,
    EarliestDeadlineFirst,
    FixedPriority,
    ShortestJobFirst,
    StaticPartitioning,
)

__all__ = [
    "Scheduler",
    "PolicyTraits",
    "CentralizedFCFS",
    "DecentralizedFCFS",
    "WorkStealingFCFS",
    "TimeSharing",
    "ShortestRemainingProcessingTime",
    "FixedPriority",
    "ShortestJobFirst",
    "EarliestDeadlineFirst",
    "DeficitRoundRobin",
    "StaticPartitioning",
    "CSCQ",
]


def all_policy_traits():
    """Every policy's :class:`PolicyTraits`, for the Table 1/5 benchmarks."""
    from ..core.darc import DarcScheduler
    from ..core.static import DarcStatic

    classes = [
        DecentralizedFCFS,
        CentralizedFCFS,
        WorkStealingFCFS,
        TimeSharing,
        ShortestRemainingProcessingTime,
        FixedPriority,
        ShortestJobFirst,
        EarliestDeadlineFirst,
        DeficitRoundRobin,
        StaticPartitioning,
        CSCQ,
        DarcStatic,
        DarcScheduler,
    ]
    return [cls.traits for cls in classes]
