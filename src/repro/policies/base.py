"""Scheduler interface and policy metadata.

Every scheduling policy implements :class:`Scheduler`.  The server calls
``on_request`` when a request reaches the dispatcher and the base class
routes completions back through ``on_worker_free``.  Non-preemptive
policies only ever use :meth:`Scheduler.begin_service`; preemptive ones
(time sharing) manage their own slice events.

:class:`PolicyTraits` captures the taxonomy of Table 1 / Table 5 so the
table-reproduction benchmarks can generate those rows from code instead
of hand-writing them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import SchedulingError
from ..server.worker import Worker
from ..sim.engine import EventLoop
from ..sim.events import Event
from ..workload.request import Request

CompletionCallback = Callable[[Request], None]
DropCallback = Callable[[Request], None]


@dataclass(frozen=True)
class PolicyTraits:
    """Taxonomy bits from the paper's Table 1 and Table 5."""

    name: str
    app_aware: bool
    typed_queues: bool
    work_conserving: bool
    preemptive: bool
    prevents_hol_blocking: bool
    ideal_workload: str = ""
    example_system: str = ""
    comments: str = ""


class Scheduler(ABC):
    """Base class for all scheduling policies.

    Lifecycle: construct, then :meth:`bind` to an event loop and worker
    set, then feed requests via :meth:`on_request`.  ``on_complete`` /
    ``on_drop`` callbacks go to the metrics recorder.
    """

    traits: PolicyTraits

    def __init__(self) -> None:
        self.loop: Optional[EventLoop] = None
        self.workers: List[Worker] = []
        self._on_complete: Optional[CompletionCallback] = None
        self._on_drop: Optional[DropCallback] = None
        self._bound = False
        #: Optional :class:`~repro.trace.tracer.Tracer`; None when off,
        #: making every hook site a single ``is None`` test.
        self.tracer = None
        #: Optional :class:`~repro.telemetry.probe.TelemetryProbe`;
        #: same contract as the tracer (pure observer, None when off).
        self.telemetry = None
        #: worker_id -> the pending service event (completion, quantum
        #: boundary, ...) for the request currently on that core.  Fault
        #: injection cancels this event when the core crashes mid-service.
        self._service_events: Dict[int, Event] = {}

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind(
        self,
        loop: EventLoop,
        workers: List[Worker],
        on_complete: CompletionCallback,
        on_drop: Optional[DropCallback] = None,
    ) -> None:
        """Attach the policy to its execution environment."""
        if self._bound:
            raise SchedulingError(f"{type(self).__name__} already bound")
        if not workers:
            raise SchedulingError("need at least one worker")
        self.loop = loop
        self.workers = workers
        self._on_complete = on_complete
        self._on_drop = on_drop
        self._bound = True
        self.on_bound()

    def on_bound(self) -> None:
        """Hook for subclasses to build per-worker state after binding."""

    def attach_tracer(self, tracer) -> None:
        """Install (or detach, with ``None``) a request tracer.

        Subclasses with additional observable components (DARC's
        classifier) override this to forward the tracer to them.
        """
        self.tracer = tracer

    def attach_telemetry(self, telemetry) -> None:
        """Install (or detach, with ``None``) a telemetry probe.

        The probe's push hooks fire at the same sites as the tracer's
        (completion, drop, eviction, preemption, steal, reservation).
        """
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # the policy surface
    # ------------------------------------------------------------------
    @abstractmethod
    def on_request(self, request: Request) -> None:
        """A request reached the dispatcher; enqueue and/or dispatch it."""

    @abstractmethod
    def on_worker_free(self, worker: Worker) -> None:
        """``worker`` finished a request; give it more work if any."""

    def pending_count(self) -> int:
        """Number of requests currently queued (not being served).

        Subclasses with queues should override; used by idle detection
        and CPU-waste accounting.
        """
        return 0

    # ------------------------------------------------------------------
    # service helpers for non-preemptive policies
    # ------------------------------------------------------------------
    def schedule_service_event(
        self, worker: Worker, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule a service-lifecycle event for ``worker`` and remember
        it so a crash can cancel it.  All policies must book the events
        that advance an in-flight request through this helper."""
        assert self.loop is not None
        event = self.loop.call_after(delay, fn, *args)
        self._service_events[worker.worker_id] = event
        return event

    def begin_service(self, worker: Worker, request: Request) -> None:
        """Run ``request`` to completion on ``worker`` (non-preemptive)."""
        assert self.loop is not None
        now = self.loop.now
        request.dispatch_time = now
        worker.begin(request, now)
        if self.tracer is not None:
            self.tracer.on_dispatch(request, worker)
        occupancy = request.remaining_time * worker.speed_factor
        if worker.speed_factor != 1.0:
            # A straggling core holds the request longer than its nominal
            # service time; the surplus is degradation, not useful work.
            request.overhead_time += occupancy - request.remaining_time
        self.schedule_service_event(worker, occupancy, self._complete, worker, request)

    def _complete(self, worker: Worker, request: Request) -> None:
        assert self.loop is not None
        now = self.loop.now
        self._service_events.pop(worker.worker_id, None)
        worker.end(now)
        worker.completed += 1
        request.remaining_time = 0.0
        request.finish_time = now
        if self.tracer is not None:
            self.tracer.on_complete(request, worker)
        if self.telemetry is not None:
            self.telemetry.on_complete(request, worker)
        if self._on_complete is not None:
            self._on_complete(request)
        self.completion_hook(worker, request)
        self.on_worker_free(worker)

    def completion_hook(self, worker: Worker, request: Request) -> None:
        """Subclass hook invoked on completion before the worker is reused
        (DARC uses it for profiling)."""

    def drop(self, request: Request) -> None:
        """Flow control: reject ``request`` (bounded queue overflow)."""
        request.dropped = True
        if self.tracer is not None:
            self.tracer.on_drop(request)
        if self.telemetry is not None:
            self.telemetry.on_drop(request)
        if self._on_drop is not None:
            self._on_drop(request)

    # ------------------------------------------------------------------
    # fault handling (repro.faults drives these)
    # ------------------------------------------------------------------
    def on_worker_crash(self, worker: Worker, requeue: bool = True) -> Optional[Request]:
        """``worker`` died.  Abort its in-flight request (progress is
        lost), then requeue the victim through the normal arrival path or
        drop it, per policy.  Returns the victim, if any.

        Subclasses with extra per-worker service state (e.g. overdue
        timers) must clear it before delegating here.
        """
        assert self.loop is not None
        victim: Optional[Request] = None
        if worker.current is not None:
            event = self._service_events.pop(worker.worker_id, None)
            if event is not None:
                event.cancel()
            victim = worker.end(self.loop.now)
            if self.tracer is not None:
                self.tracer.on_evict(victim, worker, requeue)
            if self.telemetry is not None:
                self.telemetry.on_evict(victim, worker, requeue)
            # The crashed attempt is wasted occupancy, not service.
            victim.worker_id = None
            victim.dispatch_time = None
            victim.remaining_time = victim.service_time
        worker.fail()
        self.on_capacity_change()
        if victim is not None:
            if requeue:
                self.on_request(victim)
            else:
                self.drop(victim)
        return victim

    def on_worker_recover(self, worker: Worker) -> None:
        """A crashed core came back (clean restart, full speed)."""
        if not worker.failed:
            return
        worker.recover()
        self.on_capacity_change()
        self.on_worker_free(worker)

    def on_capacity_change(self) -> None:
        """Hook: the set of usable workers changed (crash/recover).

        The default policy reaction is nothing — dead cores are skipped
        because they are never free.  Capacity-aware policies (DARC)
        override this to re-partition the surviving cores.
        """

    def available_workers(self) -> List[Worker]:
        """Workers that have not crashed (busy or idle)."""
        return [w for w in self.workers if not w.failed]

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def free_workers(self) -> List[Worker]:
        return [w for w in self.workers if w.is_free]

    def first_free_worker(self) -> Optional[Worker]:
        for w in self.workers:
            if w.is_free:
                return w
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={len(self.workers)})"
