"""Chaos experiment: persephone vs shenango vs shinjuku through a
crash/recover episode.

A quarter of the way through the run, two of the eight cores crash; at
the halfway point they come back.  The open-loop client keeps sending at
70% of the *original* capacity, so the surviving six cores run at ~93%
while the outage lasts — enough pressure to expose how each system
re-absorbs the lost capacity:

* **Persephone (DARC)** re-runs Algorithm 2 over the surviving cores at
  the instant of each crash/recover (watch ``reservation_updates``
  jump), keeping short requests fenced off from long ones throughout;
* **Shenango (ws-FCFS)** steals its way around the dead cores' queues;
* **Shinjuku (TS)** keeps time-slicing the survivors, paying preemption
  overhead exactly when capacity is scarcest.

Outputs per-system windowed tail latency, goodput through the episode,
time-to-recover, and the orphan-request ledger (timeouts / retries /
late completions) from the resilience layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.tables import render_series, render_table
from ..sweep.stats import mean_ci
from ..faults.plan import FaultPlan
from ..faults.runner import ChaosResult, run_chaos
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shenango import ShenangoSystem
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import high_bimodal
from ..workload.resilience import RetryPolicy
from .common import collect_forensics, metrics_target, trace_target

N_WORKERS = 8
UTILIZATION = 0.70
#: Cores killed in the episode (the first two — for DARC these hold the
#: short-request reservation, the worst case for its typed fences).
CRASH_WORKERS = (0, 1)
#: SLO for goodput/TTR accounting: 10x the long requests' mean service.
SLO_LATENCY_US = 1000.0


def default_systems() -> List[SystemModel]:
    return [
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="Persephone"),
        ShenangoSystem(n_workers=N_WORKERS, name="Shenango"),
        ShinjukuSystem(n_workers=N_WORKERS, name="Shinjuku"),
    ]


def default_retry() -> RetryPolicy:
    return RetryPolicy(
        timeout_us=2.0 * SLO_LATENCY_US,
        max_retries=2,
        backoff_base_us=100.0,
        backoff_factor=2.0,
        jitter_frac=0.1,
    )


class ChaosExperimentResult:
    """Per-system chaos episodes plus the comparison tables."""

    def __init__(self, crash_at: float, recover_at: float, window_us: float):
        self.crash_at = crash_at
        self.recover_at = recover_at
        self.window_us = window_us
        #: system -> first replicate's episode (tables/series render these)
        self.results: Dict[str, ChaosResult] = {}
        #: system -> metric -> per-replicate values (multi-seed only)
        self.samples: Dict[str, Dict[str, List[float]]] = {}
        self.n_replicates = 1
        self.findings: Dict[str, float] = {}

    def render(self) -> str:
        parts = []
        headers = [
            "system",
            "TTR (us)",
            "viol (us)",
            "goodput (req/us)",
            "timeouts",
            "retries",
            "failures",
            "late",
            "resv updates",
        ]
        rows = []
        for name, res in self.results.items():
            ttr = res.time_to_recover()
            deg = res.degradation
            rows.append(
                [
                    name,
                    float("nan") if ttr is None else ttr,
                    deg.violation_time_us(),
                    float(deg.goodput.mean()) if len(deg.times) else 0.0,
                    res.recorder.timeouts,
                    res.recorder.retries,
                    res.recorder.failures,
                    res.recorder.late_completions,
                    getattr(res.scheduler, "reservation_updates", 0),
                ]
            )
        parts.append(
            render_table(
                headers,
                rows,
                precision=1,
                title=(
                    f"Chaos episode: crash w{list(CRASH_WORKERS)} @ "
                    f"{self.crash_at:.0f}us, recover @ {self.recover_at:.0f}us "
                    f"(SLO {SLO_LATENCY_US:.0f}us)"
                ),
            )
        )
        for name, res in self.results.items():
            deg = res.degradation
            if not len(deg.times):
                continue
            parts.append(
                render_series(
                    "t(us)",
                    list(deg.times),
                    {
                        "p99 latency (us)": list(deg.tail_latency),
                        "goodput (req/us)": list(deg.goodput),
                    },
                    precision=2,
                    title=f"Chaos [{name}]",
                )
            )
        return "\n\n".join(parts)


def episode_plan(n_requests: int, spec=None):
    """The crash/recover episode geometry for an ``n_requests``-long run.

    Pins the episode to the expected run length so the same story plays
    out at any ``--n-requests`` scale.  Returns ``(plan, crash_at,
    recover_at, window_us)``; shared by :func:`run` and the sweep runner
    so pooled chaos cells replay exactly the serial episode.
    """
    if spec is None:
        spec = high_bimodal()
    rate = UTILIZATION * spec.peak_load(N_WORKERS)
    expected_us = n_requests / rate
    crash_at = 0.25 * expected_us
    recover_at = 0.50 * expected_us
    window_us = expected_us / 50.0
    plan = FaultPlan.crash_recover(
        list(CRASH_WORKERS), crash_at=crash_at, recover_at=recover_at
    )
    return plan, crash_at, recover_at, window_us


def run(
    n_requests: int = 20_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    retry: Optional[RetryPolicy] = None,
    sanitize: "bool | str" = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> ChaosExperimentResult:
    """Run the crash/recover episode for every system.

    ``seeds`` replays each system's episode once per seed (derived
    per-cell seeds matching the pooled ``repro-sweep`` chaos cells);
    tables/series come from the first replicate while the headline
    findings (TTR, violation time, failures) become replicate means with
    ``±half-width`` companions.
    """
    if systems is None:
        systems = default_systems()
    if retry is None:
        retry = default_retry()
    spec = high_bimodal()
    plan, crash_at, recover_at, window_us = episode_plan(n_requests, spec)
    replicates: Sequence[int] = seeds if seeds else (seed,)

    result = ChaosExperimentResult(crash_at, recover_at, window_us)
    result.n_replicates = len(replicates)
    for system in systems:
        samples: Dict[str, List[float]] = {
            "ttr_us": [], "violation_us": [], "failures": []
        }
        for index, replicate in enumerate(replicates):
            if seeds is None:
                run_seed = seed
            else:
                from ..sweep.cells import derive_seed

                run_seed = derive_seed(
                    "chaos",
                    {
                        "system": system.name,
                        "workload": "high_bimodal",
                        "rho": UTILIZATION,
                        "n_requests": n_requests,
                    },
                    replicate,
                )
            suffix = () if len(replicates) == 1 else (f"seed{replicate}",)
            res = run_chaos(
                system,
                spec,
                UTILIZATION,
                plan,
                n_requests=n_requests,
                seed=run_seed,
                retry=retry,
                window_us=window_us,
                slo_latency_us=SLO_LATENCY_US,
                sanitize=sanitize,
                trace_path=trace_target(trace_dir, "chaos", system.name, *suffix),
                metrics_path=metrics_target(
                    metrics_dir, "chaos", system.name, *suffix
                ),
            )
            ttr = res.time_to_recover()
            samples["ttr_us"].append(float("nan") if ttr is None else ttr)
            samples["violation_us"].append(res.degradation.violation_time_us())
            samples["failures"].append(float(res.recorder.failures))
            if index > 0:
                continue
            result.results[system.name] = res
            updates = getattr(res.scheduler, "reservation_updates", None)
            if updates is not None:
                result.findings["darc_reservation_updates"] = float(updates)
        if len(replicates) > 1:
            result.samples[system.name] = samples
        for metric in ("ttr_us", "violation_us", "failures"):
            stat = mean_ci(samples[metric])
            result.findings[f"{metric} [{system.name}]"] = stat.mean
            if len(replicates) > 1:
                result.findings[f"{metric} halfwidth [{system.name}]"] = (
                    stat.half_width
                )
    collect_forensics(forensics_dir, trace_dir, "chaos")
    return result


def render(result: ChaosExperimentResult) -> str:
    return result.render()
