"""Figure 5 (§5.4.1–5.4.2): Perséphone vs Shenango vs Shinjuku on the
bimodal workloads.

(a) High Bimodal — Shinjuku multi-queue, 5 µs quantum.  Paper: DARC
    sustains 2.35x / 1.3x more load than Shenango / Shinjuku at a 20x
    slowdown target and reduces slowdown 10.2x / 1.75x at 75% load;
    Shinjuku tops out near 75% load.
(b) Extreme Bimodal — Shinjuku single-queue, 5 µs quantum.  Paper: DARC
    and Shinjuku sustain 1.4x more than Shenango at a 50x target; DARC
    reduces short-request slowdown up to 1.4x vs Shinjuku and sustains
    1.25x more load; Shinjuku tops out near 55%.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric, typed_latency_metric
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shenango import ShenangoSystem
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import extreme_bimodal, high_bimodal
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 14
DEFAULT_UTILIZATIONS = (0.2, 0.35, 0.5, 0.65, 0.75, 0.85, 0.95)
#: Figure 5's slowdown targets per sub-figure.
SLO_HIGH = 20.0
SLO_EXTREME = 50.0


def systems_for(workload_name: str) -> List[SystemModel]:
    """§5.4 system choices: Shinjuku's queue policy depends on workload."""
    shinjuku_mode = "single" if workload_name == "extreme_bimodal" else "multi"
    return [
        ShenangoSystem(n_workers=N_WORKERS, work_stealing=True, name="Shenango"),
        ShinjukuSystem(n_workers=N_WORKERS, quantum_us=5.0, mode=shinjuku_mode, name="Shinjuku"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="Persephone"),
    ]


def run_one_workload(
    workload_name: str,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
) -> FigureResult:
    spec = high_bimodal() if workload_name == "high_bimodal" else extreme_bimodal()
    slo = SLO_HIGH if workload_name == "high_bimodal" else SLO_EXTREME
    result = FigureResult(f"Figure 5 [{workload_name}]", utilizations)
    for system in systems if systems is not None else systems_for(workload_name):
        collect_sweep(
            result, system, spec, utilizations, experiment="figure5",
            workload=workload_name, n_requests=n_requests, seed=seed,
            seeds=seeds, sanitize=sanitize, trace_dir=trace_dir,
            metrics_dir=metrics_dir,
        )
    caps = result.capacities(slo, overall_slowdown_metric)
    for name, cap in caps.items():
        result.findings[f"capacity@{slo:g}x [{name}]"] = (
            cap if cap is not None else float("nan")
        )
    if caps.get("Persephone") and caps.get("Shenango"):
        result.findings["DARC vs Shenango capacity"] = caps["Persephone"] / caps["Shenango"]
    if caps.get("Persephone") and caps.get("Shinjuku"):
        result.findings["DARC vs Shinjuku capacity"] = caps["Persephone"] / caps["Shinjuku"]
    return result


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> Dict[str, FigureResult]:
    """Both sub-figures."""
    results = {
        "high_bimodal": run_one_workload(
            "high_bimodal", utilizations, n_requests=n_requests, seed=seed,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
            seeds=seeds,
        ),
        "extreme_bimodal": run_one_workload(
            "extreme_bimodal", utilizations, n_requests=n_requests, seed=seed,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
            seeds=seeds,
        ),
    }
    collect_forensics(forensics_dir, trace_dir, "figure5")
    return results


def render(results: Dict[str, FigureResult]) -> str:
    parts = []
    for result in results.values():
        parts.append(
            result.render_metric(overall_slowdown_metric, "overall p99.9 slowdown (x)")
        )
        parts.append(
            result.render_metric(typed_latency_metric(1), "long p99.9 latency (us)")
        )
        parts.append(result.render_findings())
    return "\n\n".join(parts)
