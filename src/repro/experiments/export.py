"""Result export: figures and summaries as CSV / plain dicts.

Experiment drivers return rich Python objects; these helpers flatten
them for spreadsheets, plotting scripts, and archival alongside
EXPERIMENTS.md.  No third-party dependencies — the CSV dialect is plain
comma-separated with a header row.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO

from ..analysis.slo import MetricFn, overall_slowdown_metric
from ..metrics.summary import RunSummary
from .common import RunResult
from .results import FigureResult


def summary_to_dict(summary: RunSummary) -> Dict[str, object]:
    """Flatten a RunSummary into JSON-able scalars."""
    out: Dict[str, object] = {
        "completed": summary.completed,
        "dropped": summary.dropped,
        "drop_rate": summary.drop_rate,
        "throughput_mrps": summary.throughput,
        "tail_pct": summary.pct,
        "overall_tail_slowdown": summary.overall_tail_slowdown,
        "overall_tail_latency_us": summary.overall_tail_latency,
        "overall_mean_latency_us": summary.overall_mean_latency,
    }
    for tid, ts in sorted(summary.per_type.items()):
        prefix = f"type{tid}_{ts.name}"
        out[f"{prefix}_count"] = ts.count
        out[f"{prefix}_tail_latency_us"] = ts.tail_latency
        out[f"{prefix}_tail_slowdown"] = ts.tail_slowdown
        out[f"{prefix}_mean_latency_us"] = ts.mean_latency
    return out


def result_to_dict(result: RunResult) -> Dict[str, object]:
    """Flatten a RunResult (run metadata + its summary)."""
    out: Dict[str, object] = {
        "system": result.system_name,
        "workload": result.spec.name,
        "utilization": result.utilization,
        "offered_rate_mrps": result.offered_rate,
        "mean_worker_utilization": result.util_report.mean_utilization,
        "idle_cores": result.util_report.idle_cores,
    }
    out.update(summary_to_dict(result.summary))
    return out


def _write_csv(fp: TextIO, rows: List[Dict[str, object]]) -> None:
    if not rows:
        return
    # Union of keys, first-row order first (stable, readable columns).
    columns: List[str] = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    fp.write(",".join(columns) + "\n")
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                cells.append(repr(value))
            else:
                cells.append(str(value))
        fp.write(",".join(cells) + "\n")


def figure_to_csv(
    figure: FigureResult,
    fp: Optional[TextIO] = None,
    metric: MetricFn = overall_slowdown_metric,
) -> str:
    """Write one row per (system, load point) with the full flat summary.

    Returns the CSV text (also written to ``fp`` when given).
    """
    rows: List[Dict[str, object]] = []
    for system_name, sweep in figure.sweeps.items():
        for result in sweep:
            row = result_to_dict(result)
            row["figure"] = figure.name
            row["metric"] = metric(result)
            rows.append(row)
    buf = io.StringIO()
    _write_csv(buf, rows)
    text = buf.getvalue()
    if fp is not None:
        fp.write(text)
    return text


def findings_to_csv(figure: FigureResult, fp: Optional[TextIO] = None) -> str:
    """The figure's derived findings as two-column CSV."""
    buf = io.StringIO()
    buf.write("finding,value\n")
    for key, value in figure.findings.items():
        shown = repr(value) if isinstance(value, float) else str(value)
        buf.write(f"\"{key}\",{shown}\n")
    text = buf.getvalue()
    if fp is not None:
        fp.write(text)
    return text
