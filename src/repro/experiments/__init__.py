"""Experiment drivers — one module per paper figure/table.

Each ``figureN`` module exposes ``run(...)`` returning a structured
result and ``render(result)`` producing the text analogue of the paper's
plot.  Scale knobs (``n_requests``, ``utilizations``) default to values
that keep pure-Python runtimes reasonable; crank them up for tighter
tails.
"""

from . import figure1, figure3, figure4, figure5, figure6, figure7, figure8, figure9, figure10, tables
from .common import (
    DEFAULT_N_REQUESTS,
    DEFAULT_WARMUP_FRAC,
    RunResult,
    run_once,
    run_sweep,
    run_trace,
)
from .results import FigureResult

__all__ = [
    "figure1",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "tables",
    "run_once",
    "run_sweep",
    "run_trace",
    "RunResult",
    "FigureResult",
    "DEFAULT_N_REQUESTS",
    "DEFAULT_WARMUP_FRAC",
]
