"""Figure 6 (§5.4.3): TPC-C across the three systems.

Five transaction types (Table 4), Shinjuku multi-queue with a 10 µs
quantum (its best TPC-C tuning).  Views: overall p99.9 slowdown plus
per-transaction p99.9 latency.

Paper findings at 85% load: Perséphone improves Payment / OrderStatus /
NewOrder p99.9 latency by 9.2x / 7x / 3.6x over Shenango's c-FCFS,
reduces overall slowdown up to 4.6x (up to 3.1x vs Shinjuku), and at a
10x overall-slowdown target sustains 1.2x / 1.05x more throughput than
Shenango / Shinjuku.  DARC's grouping is {Payment, OrderStatus},
{NewOrder}, {Delivery, StockLevel} with workers 1–2 / 3–8 / 9–14.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric, typed_latency_metric
from ..apps.tpcc import TXN_PROFILE
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shenango import ShenangoSystem
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import tpcc
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 14
SLO_SLOWDOWN = 10.0
DEFAULT_UTILIZATIONS = (0.3, 0.5, 0.65, 0.75, 0.85, 0.95)


def default_systems() -> List[SystemModel]:
    return [
        ShenangoSystem(n_workers=N_WORKERS, work_stealing=True, name="Shenango"),
        ShinjukuSystem(n_workers=N_WORKERS, quantum_us=10.0, mode="multi", name="Shinjuku"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="Persephone"),
    ]


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    spec = tpcc()
    result = FigureResult("Figure 6 [TPC-C]", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure6",
            workload="tpcc", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )

    caps = result.capacities(SLO_SLOWDOWN, overall_slowdown_metric)
    for name, cap in caps.items():
        result.findings[f"capacity@{SLO_SLOWDOWN:g}x [{name}]"] = (
            cap if cap is not None else float("nan")
        )
    persephone = result.sweeps.get("Persephone")
    shenango = result.sweeps.get("Shenango")
    if persephone and shenango:
        # Per-transaction improvement at the load point nearest 85%.
        target = min(
            range(len(result.utilizations)),
            key=lambda i: abs(result.utilizations[i] - 0.85),
        )
        for txn, (tid, _, _) in TXN_PROFILE.items():
            metric = typed_latency_metric(tid)
            ours = metric(persephone[target])
            theirs = metric(shenango[target])
            if ours > 0:
                result.findings[f"{txn} p99.9 improvement vs Shenango @~85%"] = (
                    theirs / ours
                )
        slow_ratio = overall_slowdown_metric(shenango[target]) / max(
            overall_slowdown_metric(persephone[target]), 1e-9
        )
        result.findings["overall slowdown improvement vs Shenango @~85%"] = slow_ratio
        if caps.get("Persephone") and caps.get("Shenango"):
            result.findings["capacity ratio vs Shenango"] = (
                caps["Persephone"] / caps["Shenango"]
            )
        if caps.get("Persephone") and caps.get("Shinjuku"):
            result.findings["capacity ratio vs Shinjuku"] = (
                caps["Persephone"] / caps["Shinjuku"]
            )
        # Record DARC's learned grouping at the highest load point.
        darc = persephone[-1].scheduler
        if getattr(darc, "reservation", None) is not None:
            for gi, alloc in enumerate(darc.reservation.allocations):
                result.findings[f"group {gi} reserved workers"] = float(
                    len(alloc.reserved)
                )
    collect_forensics(forensics_dir, trace_dir, "figure6")
    return result


def render(result: FigureResult) -> str:
    parts = [
        result.render_metric(overall_slowdown_metric, "overall p99.9 slowdown (x)")
    ]
    for txn, (tid, _, _) in TXN_PROFILE.items():
        parts.append(
            result.render_metric(typed_latency_metric(tid), f"{txn} p99.9 latency (us)")
        )
    parts.append(result.render_findings())
    return "\n\n".join(parts)
