"""Figure 8 (§5.4.4): the RocksDB service.

50% GETs (1.5 µs) / 50% SCANs (635 µs) over a 5000-key store — 420x
dispersion.  Shinjuku uses its multi-queue policy with a 15 µs quantum
(its best RocksDB tuning; ~75% sustainable load).

Paper findings: for a 20x slowdown target, DARC sustains 2.3x / 1.3x
higher throughput than Shenango / Shinjuku; DARC reserves 1 core for
GETs, idling 0.96 cores on average.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric
from ..apps.rocksdb import GET_TYPE, RocksDbLike
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shenango import ShenangoSystem
from ..systems.shinjuku import ShinjukuSystem
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 14
SLO_SLOWDOWN = 20.0
DEFAULT_UTILIZATIONS = (0.2, 0.35, 0.5, 0.65, 0.75, 0.85, 0.95)


def default_systems() -> List[SystemModel]:
    return [
        ShenangoSystem(n_workers=N_WORKERS, work_stealing=True, name="Shenango"),
        ShinjukuSystem(n_workers=N_WORKERS, quantum_us=15.0, mode="multi", name="Shinjuku"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="Persephone"),
    ]


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    store = RocksDbLike()
    spec = store.workload_spec()
    result = FigureResult("Figure 8 [RocksDB]", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure8",
            workload="rocksdb", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )
    caps = result.capacities(SLO_SLOWDOWN, overall_slowdown_metric)
    for name, cap in caps.items():
        result.findings[f"capacity@{SLO_SLOWDOWN:g}x [{name}]"] = (
            cap if cap is not None else float("nan")
        )
    if caps.get("Persephone") and caps.get("Shenango"):
        result.findings["DARC vs Shenango capacity"] = (
            caps["Persephone"] / caps["Shenango"]
        )
    if caps.get("Persephone") and caps.get("Shinjuku"):
        result.findings["DARC vs Shinjuku capacity"] = (
            caps["Persephone"] / caps["Shinjuku"]
        )
    persephone = result.sweeps.get("Persephone")
    if persephone:
        darc = persephone[-1].scheduler
        if getattr(darc, "reservation", None) is not None:
            result.findings["DARC reserved cores for GET"] = float(
                darc.reserved_count(GET_TYPE)
            )
            result.findings["DARC expected CPU waste (cores)"] = darc.expected_waste()
    collect_forensics(forensics_dir, trace_dir, "figure8")
    return result


def render(result: FigureResult) -> str:
    return (
        result.render_metric(overall_slowdown_metric, "overall p99.9 slowdown (x)")
        + "\n\n"
        + result.render_findings()
    )
