"""Shared result containers for figure/table drivers.

A :class:`FigureResult` holds, per system, an ordered load sweep of
:class:`~repro.experiments.common.RunResult` plus figure-specific derived
numbers, and renders itself as the text analogue of the paper's plot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..analysis.slo import MetricFn, capacity_at_slo
from ..analysis.tables import render_series
from ..sweep.stats import CIStat, mean_ci
from .common import RunResult


class FigureResult:
    """Sweeps keyed by system name, with helpers to tabulate them.

    Single-seed drivers fill ``sweeps`` directly; multi-seed drivers
    call :meth:`add_replicated`, which additionally stores every
    replicate so the tabulation helpers can put Student-t confidence
    intervals on each point (``mean±half-width`` cells once at least two
    seeds replicated a point).
    """

    #: CI level used for replicated tables.
    CONFIDENCE = 0.95

    def __init__(self, name: str, utilizations: Sequence[float]):
        self.name = name
        self.utilizations = list(utilizations)
        self.sweeps: Dict[str, List[RunResult]] = {}
        #: system name -> replicate seed -> sweep (one RunResult per
        #: load point); filled by :meth:`add_replicated`.
        self.replicates: Dict[str, Dict[int, List[RunResult]]] = {}
        #: Free-form derived findings, filled in by the driver.
        self.findings: Dict[str, float] = {}

    def add_sweep(self, system_name: str, sweep: List[RunResult]) -> None:
        self.sweeps[system_name] = sweep

    def add_replicated(
        self, system_name: str, replicates: Mapping[int, List[RunResult]]
    ) -> None:
        """Store a multi-seed sweep; the first replicate also lands in
        ``sweeps`` so single-seed consumers keep working unchanged."""
        stored = {int(k): list(v) for k, v in replicates.items()}
        if not stored:
            raise ValueError(f"no replicates for {system_name!r}")
        self.replicates[system_name] = stored
        self.sweeps[system_name] = next(iter(stored.values()))

    @property
    def n_replicates(self) -> int:
        return max((len(r) for r in self.replicates.values()), default=1)

    def series(self, metric: MetricFn) -> Dict[str, List[float]]:
        """Evaluate ``metric`` at every point of every sweep (replicated
        systems evaluate to the replicate mean)."""
        return {
            name: [stat.mean for stat in stats]
            for name, stats in self.series_ci(metric).items()
        }

    def series_ci(self, metric: MetricFn) -> Dict[str, List[CIStat]]:
        """Per-point replicate statistics for ``metric``.

        Systems added via :meth:`add_sweep` yield degenerate ``n=1``
        intervals, so mixed figures still tabulate uniformly.
        """
        out: Dict[str, List[CIStat]] = {}
        for name, sweep in self.sweeps.items():
            reps = self.replicates.get(name)
            stats: List[CIStat] = []
            for i in range(len(sweep)):
                if reps:
                    values = [metric(r[i]) for r in reps.values() if i < len(r)]
                else:
                    values = [metric(sweep[i])]
                stats.append(mean_ci(values, confidence=self.CONFIDENCE))
            out[name] = stats
        return out

    def capacities(self, slo: float, metric: MetricFn) -> Dict[str, Optional[float]]:
        """Per-system max utilization meeting the SLO.

        Replicated systems qualify a point on its replicate-*mean*
        metric, and any dropped request in any replicate disqualifies
        the point (mirroring
        :func:`repro.analysis.slo.capacity_at_slo`).
        """
        out: Dict[str, Optional[float]] = {}
        for name, sweep in self.sweeps.items():
            reps = self.replicates.get(name)
            if not reps or len(reps) == 1:
                out[name] = capacity_at_slo(sweep, slo, metric)
                continue
            best: Optional[float] = None
            stats = self.series_ci(metric)[name]
            for i, rho in enumerate(self.utilizations[: len(sweep)]):
                if any(
                    i < len(r) and r[i].summary.drop_rate > 0
                    for r in reps.values()
                ):
                    continue
                value = stats[i].mean
                if value == value and value <= slo:
                    if best is None or rho > best:
                        best = rho
            out[name] = best
        return out

    def render_metric(
        self, metric: MetricFn, label: str, precision: int = 1
    ) -> str:
        if self.replicates and self.n_replicates > 1:
            series = {
                name: [stat.format(precision) for stat in stats]
                for name, stats in self.series_ci(metric).items()
            }
            label = (
                f"{label} (mean±{self.CONFIDENCE:.0%} CI, "
                f"{self.n_replicates} seeds)"
            )
        else:
            series = self.series(metric)
        return render_series(
            "load",
            self.utilizations,
            series,
            precision=precision,
            title=f"{self.name}: {label}",
        )

    def render_findings(self) -> str:
        if not self.findings:
            return ""
        lines = [f"{self.name}: findings"]
        for key, value in self.findings.items():
            shown = f"{value:.2f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key} = {shown}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FigureResult({self.name!r}, systems={sorted(self.sweeps)})"


def collect_sweep(
    result: FigureResult,
    system,
    spec,
    utilizations: Sequence[float],
    experiment: str,
    workload: Optional[str] = None,
    n_requests: int = 60_000,
    seed: int = 1,
    seeds: Optional[Sequence[int]] = None,
    sanitize: "bool | str" = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> None:
    """Run one system's sweep into ``result``, single- or multi-seed.

    Without ``seeds`` this is the legacy path: one raw-seed sweep, byte-
    identical to what the drivers have always produced.  With ``seeds``
    every load point is replicated under the *derived* per-cell seeds
    (:func:`repro.experiments.common.run_replicated_sweep`), matching
    the pooled ``repro-sweep`` cells for ``experiment``/``workload``.
    """
    from .common import run_replicated_sweep, run_sweep

    if seeds is None:
        result.add_sweep(
            system.name,
            run_sweep(
                system, spec, utilizations, n_requests=n_requests,
                sanitize=sanitize, trace_dir=trace_dir,
                metrics_dir=metrics_dir, seeds=(seed,),
            ),
        )
        return
    result.add_replicated(
        system.name,
        run_replicated_sweep(
            system, spec, utilizations, seeds, experiment=experiment,
            workload=workload, n_requests=n_requests, sanitize=sanitize,
            trace_dir=trace_dir, metrics_dir=metrics_dir,
        ),
    )
