"""Shared result containers for figure/table drivers.

A :class:`FigureResult` holds, per system, an ordered load sweep of
:class:`~repro.experiments.common.RunResult` plus figure-specific derived
numbers, and renders itself as the text analogue of the paper's plot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.slo import MetricFn, capacity_at_slo
from ..analysis.tables import render_series
from .common import RunResult


class FigureResult:
    """Sweeps keyed by system name, with helpers to tabulate them."""

    def __init__(self, name: str, utilizations: Sequence[float]):
        self.name = name
        self.utilizations = list(utilizations)
        self.sweeps: Dict[str, List[RunResult]] = {}
        #: Free-form derived findings, filled in by the driver.
        self.findings: Dict[str, float] = {}

    def add_sweep(self, system_name: str, sweep: List[RunResult]) -> None:
        self.sweeps[system_name] = sweep

    def series(self, metric: MetricFn) -> Dict[str, List[float]]:
        """Evaluate ``metric`` at every point of every sweep."""
        return {
            name: [metric(r) for r in sweep] for name, sweep in self.sweeps.items()
        }

    def capacities(self, slo: float, metric: MetricFn) -> Dict[str, Optional[float]]:
        """Per-system max utilization meeting the SLO."""
        return {
            name: capacity_at_slo(sweep, slo, metric)
            for name, sweep in self.sweeps.items()
        }

    def render_metric(
        self, metric: MetricFn, label: str, precision: int = 1
    ) -> str:
        return render_series(
            "load",
            self.utilizations,
            self.series(metric),
            precision=precision,
            title=f"{self.name}: {label}",
        )

    def render_findings(self) -> str:
        if not self.findings:
            return ""
        lines = [f"{self.name}: findings"]
        for key, value in self.findings.items():
            shown = f"{value:.2f}" if isinstance(value, float) else str(value)
            lines.append(f"  {key} = {shown}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FigureResult({self.name!r}, systems={sorted(self.sweeps)})"
