"""Figure 3 (§5.2): DARC vs c-FCFS vs d-FCFS inside Perséphone.

High Bimodal on the 14-worker testbed model.  Three views: overall p99.9
slowdown, short-request p99.9 latency, long-request p99.9 latency, as a
function of offered load.

Paper findings: DARC improves slowdown over c-FCFS by up to 15.7x and
sustains 2.3x more throughput at a 20 µs short-request SLO, at the cost
of up to 4.2x higher latency for long requests; DARC reserves 1 core;
average CPU waste ≈ 0.86 core.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric, typed_latency_metric
from ..systems.base import SystemModel
from ..systems.persephone import (
    PersephoneCfcfsSystem,
    PersephoneDfcfsSystem,
    PersephoneSystem,
)
from ..workload.presets import high_bimodal
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 14
SHORT_TYPE = 0
LONG_TYPE = 1
#: §5.2 evaluates throughput at a 20 us short-request tail-latency SLO.
SHORT_LATENCY_SLO_US = 20.0
DEFAULT_UTILIZATIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95)


def default_systems() -> List[SystemModel]:
    return [
        PersephoneDfcfsSystem(n_workers=N_WORKERS, name="d-FCFS"),
        PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="DARC"),
    ]


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    spec = high_bimodal()
    result = FigureResult("Figure 3", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure3",
            workload="high_bimodal", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )

    # Headline ratios at the highest common load point.
    darc = result.sweeps.get("DARC")
    cfcfs = result.sweeps.get("c-FCFS")
    if darc and cfcfs:
        slow_ratio = max(
            overall_slowdown_metric(c) / overall_slowdown_metric(d)
            for c, d in zip(cfcfs, darc)
            if overall_slowdown_metric(d) > 0
        )
        result.findings["max slowdown improvement (DARC over c-FCFS)"] = slow_ratio
        long_metric = typed_latency_metric(LONG_TYPE)
        long_costs = [
            long_metric(d) / long_metric(c)
            for c, d in zip(cfcfs, darc)
            if long_metric(c) > 0
        ]
        result.findings["max long-request latency cost (DARC/c-FCFS)"] = max(long_costs)
        short_metric = typed_latency_metric(SHORT_TYPE)
        caps = result.capacities(SHORT_LATENCY_SLO_US, short_metric)
        if caps.get("DARC") and caps.get("c-FCFS"):
            result.findings[
                f"capacity ratio @ short p99.9 <= {SHORT_LATENCY_SLO_US:g}us"
            ] = caps["DARC"] / caps["c-FCFS"]
        last_darc = darc[-1]
        waste = getattr(last_darc.scheduler, "expected_waste", None)
        if waste is not None:
            result.findings["DARC expected CPU waste (cores)"] = last_darc.scheduler.expected_waste()
            result.findings["DARC reserved cores for SHORT"] = float(
                last_darc.scheduler.reserved_count(SHORT_TYPE)
            )
    collect_forensics(forensics_dir, trace_dir, "figure3")
    return result


def render(result: FigureResult) -> str:
    parts = [
        result.render_metric(overall_slowdown_metric, "overall p99.9 slowdown (x)"),
        result.render_metric(typed_latency_metric(SHORT_TYPE), "short p99.9 latency (us)"),
        result.render_metric(typed_latency_metric(LONG_TYPE), "long p99.9 latency (us)"),
        result.render_findings(),
    ]
    return "\n\n".join(parts)
