"""Rack experiment: balancer × system × utilization grid (ROADMAP 3).

Does DARC's idling-is-ideal reservation still win when a front-end
balancer spreads load across a rack of servers?  For every balancer in
the catalogue this driver sweeps all three systems over utilization on
a ≥16-server rack (each replica a full 8-core SystemModel) and reports
the rack-level p99.9 slowdown plus DARC-vs-baseline ratios *per
balancer* — the two-level composition RackSched argues for, with the
balancer's information staleness fixed at :data:`STALENESS_US`.

``trace_dir`` records a full rack trace per grid point — every
replica's spans (worker ids remapped to rack-global) plus the
balancer's routing-decision log — via
:class:`~repro.rack.tracing.RackTracer`; ``metrics_dir`` works as on
single-server drivers (the probe has a rack pull source), and
``forensics_dir`` folds the traces into a blame/herding store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric
from ..rack.rack import RackResult, run_rack
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shenango import ShenangoSystem
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import high_bimodal
from .common import collect_forensics, metrics_target, trace_target
from .results import FigureResult

#: Rack geometry: 16 replicas x 8 cores = 128 cores.
N_SERVERS = 16
N_WORKERS = 8

DEFAULT_UTILIZATIONS = (0.5, 0.7, 0.85)
#: Catalogue slice swept by default (>= 3 balancers, incl. affinity).
DEFAULT_BALANCERS = ("pow2", "jsq-stale", "sed", "type-affinity", "session")
#: Balancer view staleness (us) — roughly one RTT of piggybacked state.
STALENESS_US = 50.0
WORKLOAD = "high_bimodal"


def default_systems() -> List[SystemModel]:
    """The three intra-server disciplines, sized for a rack replica."""
    return [
        ShenangoSystem(n_workers=N_WORKERS, work_stealing=True, name="Shenango"),
        ShinjukuSystem(n_workers=N_WORKERS, quantum_us=5.0, mode="multi", name="Shinjuku"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="Persephone"),
    ]


def _run_grid_point(
    system: SystemModel,
    balancer: str,
    rho: float,
    n_requests: int,
    seed: int,
    n_servers: int,
    staleness_us: float,
    sanitize: "bool | str",
    metrics_dir: Optional[str],
    trace_dir: Optional[str] = None,
    seed_suffix: Optional[int] = None,
) -> RackResult:
    name_parts: List[object] = [
        "rack", balancer, system.name, f"rho{round(rho * 100):03d}"
    ]
    if seed_suffix is not None:
        name_parts.append(f"seed{seed_suffix}")
    return run_rack(
        system,
        high_bimodal(),
        balancer=balancer,
        n_servers=n_servers,
        utilization=rho,
        n_requests=n_requests,
        seed=seed,
        staleness_us=staleness_us,
        sanitize=sanitize,
        metrics_path=metrics_target(metrics_dir, *name_parts),
        trace_path=trace_target(trace_dir, *name_parts),
        trace_meta={"experiment": "rack"},
    )


def _findings(result: FigureResult, utilizations: Sequence[float]) -> None:
    """DARC-vs-baseline tail-slowdown ratios at the highest load point."""
    rho = utilizations[-1]
    series = result.series(overall_slowdown_metric)
    darc = series.get("Persephone")
    if not darc or darc[-1] != darc[-1] or darc[-1] <= 0:
        return
    for baseline in ("Shenango", "Shinjuku"):
        values = series.get(baseline)
        if values and values[-1] == values[-1]:
            result.findings[f"DARC vs {baseline} p99.9 slowdown @{rho:g}"] = (
                values[-1] / darc[-1]
            )


def run(
    n_requests: int = 20_000,
    seed: int = 1,
    sanitize: "bool | str" = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    n_servers: int = N_SERVERS,
    balancers: Sequence[str] = DEFAULT_BALANCERS,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    staleness_us: float = STALENESS_US,
    forensics_dir: Optional[str] = None,
) -> Dict[str, FigureResult]:
    """The full grid: one :class:`FigureResult` per balancer.

    With ``seeds`` every grid point replicates under derived per-cell
    seeds matching the ``repro-sweep`` rack cells (CI tables); without,
    one raw-seed run per point.  ``n_requests`` is the *total* arrival
    count per point (the rack splits it among replicas).
    """
    results: Dict[str, FigureResult] = {}
    for balancer in balancers:
        result = FigureResult(f"Rack [{balancer}]", utilizations)
        for system in default_systems():
            if seeds is None:
                sweep = [
                    _run_grid_point(
                        system, balancer, rho, n_requests, seed, n_servers,
                        staleness_us, sanitize, metrics_dir,
                        trace_dir=trace_dir,
                    )
                    for rho in utilizations
                ]
                result.add_sweep(system.name, sweep)
            else:
                from ..sweep.cells import derive_seed

                replicates: Dict[int, List[RackResult]] = {}
                for replicate in seeds:
                    replicates[replicate] = [
                        _run_grid_point(
                            system, balancer, rho, n_requests,
                            derive_seed(
                                "rack",
                                {
                                    "system": system.name,
                                    "workload": WORKLOAD,
                                    "balancer": balancer,
                                    "rho": rho,
                                    "n_requests": n_requests,
                                    "n_servers": n_servers,
                                },
                                replicate,
                            ),
                            n_servers, staleness_us, sanitize, metrics_dir,
                            trace_dir=trace_dir, seed_suffix=replicate,
                        )
                        for rho in utilizations
                    ]
                result.add_replicated(system.name, replicates)
        _findings(result, utilizations)
        results[balancer] = result
    collect_forensics(forensics_dir, trace_dir, "rack")
    return results


def render(results: Dict[str, FigureResult]) -> str:
    parts = []
    for result in results.values():
        parts.append(
            result.render_metric(
                overall_slowdown_metric, "rack p99.9 slowdown (x)"
            )
        )
        findings = result.render_findings()
        if findings:
            parts.append(findings)
    ratio_lines = ["Rack: DARC advantage by balancer (tail-slowdown ratio)"]
    for balancer, result in results.items():
        ratios = [
            f"{key.split('DARC vs ')[1].split(' ')[0]} {value:.2f}x"
            for key, value in result.findings.items()
            if key.startswith("DARC vs")
        ]
        if ratios:
            ratio_lines.append(f"  {balancer:14s} vs " + ", vs ".join(ratios))
    if len(ratio_lines) > 1:
        parts.append("\n".join(ratio_lines))
    return "\n\n".join(parts)
