"""Figure 7 (§5.5): reacting to sudden workload changes.

Two request types A and B, four phases at a constant 80% server
utilization:

1. B is short (1 µs), A is long (100 µs), 50/50 — DARC gives B 1
   dedicated core (stealing the other 13) and A the other 13;
2. service times invert (A becomes short) — deliberate misclassification
   of the existing profile, forcing re-profiling and a reservation flip;
3. the mix shifts to 99.5% A / 0.5% B — A's CPU demand rises and DARC
   reserves it a second core;
4. only A requests remain — pending/straggler B requests fall back to
   the spillway core.

The paper runs 5 s phases; the simulation default is shorter but long
enough for the profiler to transition (~the paper's 500 ms adaptation).
Outputs per-type p99.9 latency over time windows plus the guaranteed-core
timeline, for DARC and a c-FCFS baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import render_series
from ..sweep.stats import mean_ci
from ..metrics.recorder import Recorder
from ..metrics.summary import RunSummary
from ..metrics.timeseries import AllocationTimeline, WindowedStats
from ..server.config import ServerConfig
from ..server.server import Server
from ..sim.engine import EventLoop
from ..sim.randomness import RngRegistry
from ..sim.units import US_PER_MS
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneCfcfsSystem, PersephoneSystem
from ..workload.arrivals import PoissonArrivals
from ..workload.generator import OpenLoopGenerator
from ..workload.phases import Phase, PhaseSchedule
from ..workload.spec import TypedClass, WorkloadSpec
from ..workload.distributions import Fixed
from .common import collect_forensics, metrics_target, trace_target

N_WORKERS = 14
UTILIZATION = 0.80
TYPE_A = 0
TYPE_B = 1
DEFAULT_PHASE_US = 150.0 * US_PER_MS
SHORT_US = 1.0
LONG_US = 100.0


def _spec(name: str, a_us: float, b_us: float, a_ratio: float) -> WorkloadSpec:
    classes = [TypedClass("A", a_ratio, Fixed(a_us))]
    if a_ratio < 1.0:
        classes.append(TypedClass("B", 1.0 - a_ratio, Fixed(b_us)))
    return WorkloadSpec(name, classes)


def default_phases(phase_us: float = DEFAULT_PHASE_US) -> List[Phase]:
    return [
        Phase(_spec("phase1", LONG_US, SHORT_US, 0.5), phase_us, UTILIZATION),
        Phase(_spec("phase2", SHORT_US, LONG_US, 0.5), phase_us, UTILIZATION),
        Phase(_spec("phase3", SHORT_US, LONG_US, 0.995), phase_us, UTILIZATION),
        Phase(_spec("phase4", SHORT_US, LONG_US, 1.0), phase_us, UTILIZATION),
    ]


class Figure7Result:
    """Time series per system: latency per type + core allocation.

    Multi-seed runs keep the first replicate's time series (the plot)
    and collect per-replicate scalar samples (overall tail latency,
    reservation updates) so :meth:`render` can report them as
    ``mean±CI`` across seeds.
    """

    def __init__(self, window_us: float, phase_boundaries: List[float]):
        self.window_us = window_us
        self.phase_boundaries = phase_boundaries
        #: system -> type_id -> (times, p99.9 latency per window)
        self.latency_series: Dict[str, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        #: system -> type_id -> (times, guaranteed cores)
        self.alloc_series: Dict[str, Dict[int, Tuple[np.ndarray, np.ndarray]]] = {}
        self.summaries: Dict[str, RunSummary] = {}
        self.reservation_updates: Dict[str, int] = {}
        #: system -> overall p99.9 latency per replicate (multi-seed only)
        self.tail_latency_samples: Dict[str, List[float]] = {}
        #: system -> reservation updates per replicate (multi-seed only)
        self.update_samples: Dict[str, List[float]] = {}
        self.n_replicates = 1

    def render(self) -> str:
        parts = []
        for system, by_type in self.latency_series.items():
            for tid, (times, values) in sorted(by_type.items()):
                label = "A" if tid == TYPE_A else "B"
                series = {"p99.9 latency (us)": list(values)}
                alloc = self.alloc_series.get(system, {}).get(tid)
                if alloc is not None:
                    series["guaranteed cores"] = list(alloc[1])
                parts.append(
                    render_series(
                        "t(us)",
                        list(times),
                        series,
                        precision=1,
                        title=f"Figure 7 [{system}] type {label}",
                    )
                )
        for system, updates in self.reservation_updates.items():
            parts.append(f"{system}: {updates} reservation updates")
        if self.n_replicates > 1:
            lines = [f"Figure 7: replicate stats ({self.n_replicates} seeds)"]
            for system, samples in self.tail_latency_samples.items():
                stat = mean_ci(samples)
                lines.append(
                    f"  overall p99.9 latency [{system}] = {stat.format(1)} us"
                )
            for system, samples in self.update_samples.items():
                stat = mean_ci(samples)
                lines.append(
                    f"  reservation updates [{system}] = {stat.format(1)}"
                )
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _run_system(
    system: SystemModel,
    phases: List[Phase],
    seed: int,
    window_us: float,
    sanitize: bool = False,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> Tuple[Recorder, object, EventLoop]:
    rngs = RngRegistry(seed=seed)
    loop = EventLoop()
    scheduler = system.make_scheduler(phases[0].spec, rngs)
    recorder = Recorder()
    server = Server(loop, scheduler, config=system.make_config(), recorder=recorder)
    if sanitize:
        from ..lint.sanitizer import SimSanitizer

        SimSanitizer().attach(loop, server)
    tracer = None
    if trace_path is not None:
        from ..trace import Tracer

        tracer = Tracer()
        tracer.install(loop, server)
    telemetry = None
    if metrics_path is not None:
        from ..telemetry import TelemetryProbe

        telemetry = TelemetryProbe()
        telemetry.install(loop, server)
    rate = UTILIZATION * phases[0].spec.peak_load(N_WORKERS)
    generator = OpenLoopGenerator(
        loop,
        phases[0].spec,
        PoissonArrivals(rate),
        server.ingress,
        type_rng=rngs.stream("types"),
        service_rng=rngs.stream("service"),
        arrival_rng=rngs.stream("arrivals"),
        limit=None,
    )
    schedule = PhaseSchedule(loop, generator, phases, N_WORKERS)
    total = schedule.total_duration_us
    generator.start()
    schedule.start()
    loop.call_at(total, generator.stop)
    loop.run()
    if tracer is not None and trace_path is not None:
        from ..trace.export import write_trace

        write_trace(
            trace_path,
            tracer,
            recorder=recorder,
            meta={"experiment": "figure7", "system": system.name, "seed": seed},
        )
    if telemetry is not None:
        from ..telemetry.export import write_metrics

        write_metrics(
            metrics_path,
            telemetry,
            recorder=recorder,
            meta={"experiment": "figure7", "system": system.name, "seed": seed},
        )
    return recorder, scheduler, loop


def run(
    phases: Optional[List[Phase]] = None,
    seed: int = 1,
    window_us: float = 10.0 * US_PER_MS,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> Figure7Result:
    """Run the phased experiment; ``seeds`` replicates each system run.

    The time series come from the first replicate (derived seeds match
    the pooled ``repro-sweep`` figure7 cells); scalar stats across all
    replicates land in ``tail_latency_samples``/``update_samples``.
    """
    if phases is None:
        phases = default_phases()
    if systems is None:
        systems = [
            PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS"),
            PersephoneSystem(
                n_workers=N_WORKERS,
                oracle=False,
                min_samples=500,
                ema_alpha=0.1,
                name="DARC",
            ),
        ]
    replicates: Sequence[int] = seeds if seeds else (seed,)
    boundaries = list(np.cumsum([p.duration_us for p in phases]))
    result = Figure7Result(window_us, boundaries)
    result.n_replicates = len(replicates)
    stats = WindowedStats(window_us)
    for system in systems:
        for index, replicate in enumerate(replicates):
            if seeds is None:
                run_seed = seed
            else:
                from ..sweep.cells import derive_seed

                run_seed = derive_seed(
                    "figure7",
                    {"system": system.name, "workload": "phased"},
                    replicate,
                )
            first = index == 0
            suffix = () if len(replicates) == 1 else (f"seed{replicate}",)
            recorder, scheduler, loop = _run_system(
                system, phases, run_seed, window_us, sanitize=sanitize,
                trace_path=trace_target(
                    trace_dir, "figure7", system.name, *suffix
                ),
                metrics_path=metrics_target(
                    metrics_dir, "figure7", system.name, *suffix
                ),
            )
            duration = loop.now
            cols = recorder.columns()
            summary = RunSummary(recorder, duration_us=duration, warmup_frac=0.0)
            updates = getattr(scheduler, "reservation_updates", 0)
            if len(replicates) > 1:
                result.tail_latency_samples.setdefault(system.name, []).append(
                    summary.overall_tail_latency
                )
                result.update_samples.setdefault(system.name, []).append(
                    float(updates)
                )
            if not first:
                continue
            result.latency_series[system.name] = {
                tid: stats.series(cols, type_id=tid) for tid in (TYPE_A, TYPE_B)
            }
            result.summaries[system.name] = summary
            log = getattr(scheduler, "reservation_log", None)
            if log is not None:
                timeline = AllocationTimeline(log)
                times = result.latency_series[system.name][TYPE_A][0]
                result.alloc_series[system.name] = {
                    tid: (times, timeline.sample(times, tid))
                    for tid in (TYPE_A, TYPE_B)
                }
                result.reservation_updates[system.name] = updates
    collect_forensics(forensics_dir, trace_dir, "figure7")
    return result
