"""Table reproductions.

* Table 1 — the four §2 policies and their taxonomy bits;
* Table 3 — the bimodal workload definitions;
* Table 4 — the TPC-C transaction profile;
* Table 5 — the full related-work policy comparison.

All rows are generated from code (policy ``traits`` metadata and workload
presets), so the tables cannot drift from the implementation.
"""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.tables import render_table
from ..core.darc import DarcScheduler
from ..policies import all_policy_traits
from ..policies.base import PolicyTraits
from ..policies.fcfs import CentralizedFCFS, DecentralizedFCFS
from ..policies.timesharing import TimeSharing
from ..workload.presets import extreme_bimodal, high_bimodal, tpcc

#: The Table 1 subset, in the paper's row order.
TABLE1_POLICIES = (
    DecentralizedFCFS.traits,
    CentralizedFCFS.traits,
    TimeSharing.traits,
    DarcScheduler.traits,
)


def table1_rows() -> List[List[object]]:
    """Table 1: typed queues / non work conserving / non preemptive."""
    return [
        [
            t.name,
            t.typed_queues,
            not t.work_conserving,
            not t.preemptive,
            t.example_system,
        ]
        for t in TABLE1_POLICIES
    ]


def render_table1() -> str:
    return render_table(
        ["Policy", "Typed queues", "Non work conserving", "Non preemptive", "Example"],
        table1_rows(),
        title="Table 1: policy taxonomy",
    )


def table3_rows() -> List[List[object]]:
    """Table 3: the bimodal workload definitions, from the presets."""
    rows = []
    for spec in (high_bimodal(), extreme_bimodal()):
        short, long = spec.classes
        rows.append(
            [
                spec.name,
                short.distribution.mean(),
                short.ratio,
                long.distribution.mean(),
                long.ratio,
                spec.dispersion(),
            ]
        )
    return rows


def render_table3() -> str:
    return render_table(
        ["Workload", "Short (us)", "Short ratio", "Long (us)", "Long ratio", "Dispersion"],
        table3_rows(),
        title="Table 3: bimodal workloads",
    )


def table4_rows() -> List[List[object]]:
    """Table 4: the TPC-C mix, with dispersion relative to Payment."""
    spec = tpcc()
    base = spec.classes[0].distribution.mean()
    return [
        [c.name, c.distribution.mean(), c.ratio, c.distribution.mean() / base]
        for c in spec.classes
    ]


def render_table4() -> str:
    return render_table(
        ["Transaction", "Runtime (us)", "Ratio", "Dispersion"],
        table4_rows(),
        title="Table 4: TPC-C transactions",
    )


def table5_rows(traits: Sequence[PolicyTraits] = ()) -> List[List[object]]:
    """Table 5: the extended policy comparison, from traits metadata."""
    source = traits if traits else all_policy_traits()
    return [
        [
            t.name,
            t.app_aware,
            not t.preemptive,
            not t.work_conserving,
            t.prevents_hol_blocking,
            t.ideal_workload,
            t.comments,
        ]
        for t in source
    ]


def render_table5() -> str:
    return render_table(
        [
            "Policy",
            "App aware",
            "Non preemptive",
            "Non work conserving",
            "Prevents HOL",
            "Ideal workload",
            "Comments",
        ],
        table5_rows(),
        title="Table 5: policy comparison",
    )


def render_all() -> str:
    return "\n\n".join(
        [render_table1(), render_table3(), render_table4(), render_table5()]
    )
