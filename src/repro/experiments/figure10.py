"""Figure 10 (§6): how preemption overheads erode time sharing.

The Fig. 1 workload and 16-worker ideal system, with single-queue
preemptive systems of varying cost: "TS 0 µs" (instant, free preemption),
"TS 1 µs", "TS 2 µs", and "TS 4 µs" (2 µs propagation + 2 µs preemption),
compared against DARC.

Paper findings: the ideal TS 0 µs performs similarly or better than
DARC; at 1 µs of overhead, TS already sustains ~30% less load than the
ideal for a 10x short-request slowdown target — idling beats preemption
once preemption stops being free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..analysis.slo import max_typed_slowdown_metric
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneSystem
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import figure1_workload
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 16
SLO_SLOWDOWN = 10.0
DEFAULT_UTILIZATIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95)
#: (label, propagation delay us, preemption overhead us) per Fig. 10.
TS_VARIANTS: Tuple[Tuple[str, float, float], ...] = (
    ("TS 0us", 0.0, 0.0),
    ("TS 1us", 0.5, 0.5),
    ("TS 2us", 1.0, 1.0),
    ("TS 4us", 2.0, 2.0),
)


def default_systems() -> List[SystemModel]:
    systems: List[SystemModel] = [
        # §6: "a preemption event can be triggered as soon as a short
        # request is blocked in the queue" — demand-triggered preemption.
        # Typed queues (BVT) are used so the blocked short actually runs
        # once a worker is freed; with one FIFO queue it would still wait
        # behind requeued longs and even the zero-cost system would be far
        # from ideal, contradicting the paper's "TS 0us ~ DARC" result.
        ShinjukuSystem(
            n_workers=N_WORKERS,
            quantum_us=5.0,
            preempt_delay_us=delay,
            preempt_overhead_us=overhead,
            mode="multi",
            trigger="demand",
            name=label,
        )
        for label, delay, overhead in TS_VARIANTS
    ]
    systems.append(PersephoneSystem(n_workers=N_WORKERS, oracle=True, name="DARC"))
    return systems


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    spec = figure1_workload()
    result = FigureResult("Figure 10 [preemption overheads]", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure10",
            workload="figure1", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )
    caps = result.capacities(SLO_SLOWDOWN, max_typed_slowdown_metric)
    for name, cap in caps.items():
        result.findings[f"capacity@{SLO_SLOWDOWN:g}x [{name}]"] = (
            cap if cap is not None else float("nan")
        )
    ideal = caps.get("TS 0us")
    one_us = caps.get("TS 1us")
    if ideal and one_us:
        result.findings["load lost by TS 1us vs ideal"] = 1.0 - one_us / ideal
    collect_forensics(forensics_dir, trace_dir, "figure10")
    return result


def render(result: FigureResult) -> str:
    return (
        result.render_metric(
            max_typed_slowdown_metric, "p99.9 slowdown of the worst type (x)"
        )
        + "\n\n"
        + result.render_findings()
    )
