"""Shared experiment machinery.

:func:`run_once` assembles loop + server + generator for one (system,
workload, load) point, runs it to completion, and returns a
:class:`RunResult` bundling the summary, utilization and the scheduler
(for policy-specific introspection like DARC's reservation log).

Loads are expressed as *utilization* — a fraction of the workload's peak
rate ``W / E[S]`` — which is how the paper's x-axes are scaled.
"""

from __future__ import annotations

import os
import re
import warnings
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..metrics.recorder import Recorder
from ..metrics.summary import RunSummary
from ..metrics.utilization import UtilizationReport
from ..server.server import Server
from ..sim.engine import EventLoop
from ..sim.randomness import RngRegistry
from ..systems.base import SystemModel
from ..workload.arrivals import PoissonArrivals
from ..workload.generator import OpenLoopGenerator
from ..workload.spec import WorkloadSpec

#: Default request count per load point — large enough for a stable
#: p99.9 on the common types while keeping pure-Python runtimes sane.
DEFAULT_N_REQUESTS = 40_000

#: §5.1: "we discard the first 10% of samples to remove warm-up effects".
DEFAULT_WARMUP_FRAC = 0.10


class RunResult:
    """Everything one simulated run produced."""

    def __init__(
        self,
        system_name: str,
        spec: WorkloadSpec,
        utilization: float,
        offered_rate: float,
        summary: RunSummary,
        util_report: UtilizationReport,
        scheduler,
        server: Server,
        tracer=None,
        trace_path: Optional[str] = None,
        sanitizer=None,
        telemetry=None,
        metrics_path: Optional[str] = None,
    ):
        self.system_name = system_name
        self.spec = spec
        #: Offered load as a fraction of peak.
        self.utilization = utilization
        #: Offered arrival rate in req/us (== Mrps).
        self.offered_rate = offered_rate
        self.summary = summary
        self.util_report = util_report
        self.scheduler = scheduler
        self.server = server
        #: The run's :class:`~repro.trace.tracer.Tracer`, when traced.
        self.tracer = tracer
        #: Where the trace document was written, when requested.
        self.trace_path = trace_path
        #: The run's :class:`~repro.lint.sanitizer.SimSanitizer`, when
        #: sanitized — carries ``tiebreak_hazards`` in shadow mode.
        self.sanitizer = sanitizer
        #: The run's :class:`~repro.telemetry.probe.TelemetryProbe`,
        #: when metrics were collected.
        self.telemetry = telemetry
        #: Extensionless base path the metrics exports were written to
        #: (``.prom``/``.jsonl``/``.html`` siblings), when requested.
        self.metrics_path = metrics_path

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RunResult({self.system_name!r}, rho={self.utilization:.2f}, "
            f"p{self.summary.pct} slowdown={self.summary.overall_tail_slowdown:.1f})"
        )


def run_once(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float,
    n_requests: int = DEFAULT_N_REQUESTS,
    seed: int = 1,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
    pct: float = 99.9,
    max_sim_time_us: Optional[float] = None,
    sanitize: "bool | str" = False,
    tracer=None,
    trace_path: Optional[str] = None,
    trace_meta: Optional[Dict[str, Any]] = None,
    telemetry=None,
    metrics_path: Optional[str] = None,
    metrics_meta: Optional[Dict[str, Any]] = None,
    profiler=None,
) -> RunResult:
    """Simulate one load point and summarize it.

    The run generates exactly ``n_requests`` arrivals, then drains the
    server (every generated request completes unless dropped by flow
    control).  ``max_sim_time_us`` optionally caps the drain for badly
    overloaded configurations.

    ``sanitize=True`` attaches a
    :class:`~repro.lint.sanitizer.SimSanitizer` that asserts simulation
    invariants (time monotonicity, request conservation, worker
    exclusivity, DARC reservation rules) after every event, raising
    :class:`~repro.errors.SanitizerViolation` on the first breakage.
    ``sanitize="shadow"`` additionally turns on the tie-break shadow
    check: same-timestamp sibling events are detected and their
    handlers' observable write sets compared, recording (never raising)
    hazards in ``result.sanitizer.tiebreak_hazards``.

    ``trace_path`` (or an explicit ``tracer``) turns on per-request span
    tracing (:mod:`repro.trace`).  The tracer observes the run without
    scheduling events or drawing randomness, so a traced run's measured
    results are bit-identical to an untraced one; with ``trace_path``
    the full trace document (Perfetto-loadable JSON) is written there,
    with ``trace_meta`` merged into its metadata.

    ``metrics_path`` (or an explicit ``telemetry`` probe) turns on the
    virtual-time metrics plane (:mod:`repro.telemetry`); like the
    tracer, the probe observes without perturbing, and with
    ``metrics_path`` (extensionless base) the Prometheus text, JSONL
    timeline and HTML dashboard are written as ``.prom``/``.jsonl``/
    ``.html`` siblings.  ``profiler`` attaches a
    :class:`~repro.telemetry.profiler.SelfProfiler` that attributes the
    simulator's own wall-clock cost per handler (caller starts/stops
    it).
    """
    if utilization <= 0:
        raise ConfigurationError(f"utilization must be > 0, got {utilization}")
    if n_requests < 1:
        raise ConfigurationError(f"n_requests must be >= 1, got {n_requests}")
    if trace_path is not None and tracer is None:
        from ..trace import Tracer

        tracer = Tracer()
    if metrics_path is not None and telemetry is None:
        from ..telemetry import TelemetryProbe

        telemetry = TelemetryProbe()

    rngs = RngRegistry(seed=seed)
    loop = EventLoop()
    scheduler = system.make_scheduler(spec, rngs)
    config = system.make_config()
    recorder = Recorder()
    server = Server(loop, scheduler, config=config, recorder=recorder)
    sanitizer = None
    if sanitize:
        from ..lint.sanitizer import SimSanitizer

        sanitizer = SimSanitizer(shadow_tiebreaks=(sanitize == "shadow"))
        sanitizer.attach(loop, server)
    if tracer is not None:
        tracer.install(loop, server)
    if telemetry is not None:
        telemetry.install(loop, server)
    if profiler is not None:
        loop.attach_profiler(profiler)

    rate = utilization * spec.peak_load(config.n_workers)
    generator = OpenLoopGenerator(
        loop,
        spec,
        PoissonArrivals(rate),
        server.ingress,
        type_rng=rngs.stream("types"),
        service_rng=rngs.stream("service"),
        arrival_rng=rngs.stream("arrivals"),
        limit=n_requests,
    )
    generator.start()
    loop.run(until=max_sim_time_us)

    summary = RunSummary(
        recorder,
        duration_us=loop.now,
        type_specs=spec.type_specs(),
        warmup_frac=warmup_frac,
        pct=pct,
    )
    util_report = server.utilization()
    if tracer is not None and trace_path is not None:
        from ..trace.export import write_trace

        meta: Dict[str, Any] = {
            "system": system.name,
            "workload": spec.name,
            "utilization": utilization,
            "n_requests": n_requests,
            "seed": seed,
        }
        if trace_meta:
            meta.update(trace_meta)
        write_trace(trace_path, tracer, recorder=recorder, meta=meta)
    if telemetry is not None and metrics_path is not None:
        from ..telemetry.export import write_metrics

        meta = {
            "system": system.name,
            "workload": spec.name,
            "utilization": utilization,
            "n_requests": n_requests,
            "seed": seed,
        }
        if metrics_meta:
            meta.update(metrics_meta)
        write_metrics(metrics_path, telemetry, recorder=recorder, meta=meta)
    elif telemetry is not None:
        telemetry.finalize()
    return RunResult(
        system.name,
        spec,
        utilization,
        rate,
        summary,
        util_report,
        scheduler,
        server,
        tracer=tracer,
        trace_path=trace_path,
        sanitizer=sanitizer,
        telemetry=telemetry,
        metrics_path=metrics_path,
    )


def run_trace(
    system: SystemModel,
    spec: WorkloadSpec,
    trace,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
    pct: float = 99.9,
    seed: int = 1,
) -> RunResult:
    """Replay a recorded arrival trace through ``system``.

    Comparing systems on the *same* trace removes arrival-sampling noise
    from the comparison (common random numbers): any difference in the
    summaries is purely scheduling.  ``spec`` supplies type names and
    the peak-load normalization; the trace supplies every arrival.
    """
    from ..workload.trace import TraceReplayer

    rngs = RngRegistry(seed=seed)
    loop = EventLoop()
    scheduler = system.make_scheduler(spec, rngs)
    config = system.make_config()
    recorder = Recorder()
    server = Server(loop, scheduler, config=config, recorder=recorder)
    replayer = TraceReplayer(loop, trace, server.ingress)
    replayer.start()
    loop.run()
    offered_rate = trace.offered_rate()
    utilization = offered_rate / spec.peak_load(config.n_workers)
    summary = RunSummary(
        recorder,
        duration_us=loop.now,
        type_specs=spec.type_specs(),
        warmup_frac=warmup_frac,
        pct=pct,
    )
    return RunResult(
        system.name,
        spec,
        utilization,
        offered_rate,
        summary,
        server.utilization(),
        scheduler,
        server,
    )


def _slug(text: str) -> str:
    """A filesystem-safe token for trace filenames."""
    return re.sub(r"[^A-Za-z0-9.-]+", "-", text).strip("-")


def trace_target(trace_dir: Optional[str], *parts: Any) -> Optional[str]:
    """Deterministic trace path inside ``trace_dir`` (created on demand)
    built from the given name parts, or None when tracing is off."""
    if trace_dir is None:
        return None
    os.makedirs(trace_dir, exist_ok=True)
    slug = "_".join(s for s in (_slug(str(p)) for p in parts) if s)
    return os.path.join(trace_dir, f"{slug}.trace.json")


def metrics_target(metrics_dir: Optional[str], *parts: Any) -> Optional[str]:
    """Deterministic *extensionless* metrics base path inside
    ``metrics_dir`` (created on demand), or None when metrics are off.
    :func:`repro.telemetry.export.write_metrics` appends the
    ``.prom``/``.jsonl``/``.html`` suffixes."""
    if metrics_dir is None:
        return None
    os.makedirs(metrics_dir, exist_ok=True)
    slug = "_".join(s for s in (_slug(str(p)) for p in parts) if s)
    return os.path.join(metrics_dir, f"{slug}.metrics")


def collect_forensics(
    forensics_dir: Optional[str],
    trace_dir: Optional[str],
    experiment: str,
) -> List[str]:
    """Fold a driver's trace exports into its forensics store.

    Drivers call this once, after their last simulated event — forensics
    is post-hoc, so it cannot perturb results.  No-op when
    ``forensics_dir`` is None; raises
    :class:`~repro.errors.UsageError` when forensics was requested
    without tracing.  Returns the registered run ids.
    """
    from ..forensics.collect import collect_directory

    return collect_directory(forensics_dir, trace_dir, experiment=experiment)


def run_sweep(
    system: SystemModel,
    spec: WorkloadSpec,
    utilizations: Sequence[float],
    n_requests: int = DEFAULT_N_REQUESTS,
    seed: Optional[int] = None,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
    pct: float = 99.9,
    sanitize: "bool | str" = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
) -> List[RunResult]:
    """One :func:`run_once` per (load point, seed).

    ``seeds`` replicates every load point under each listed seed;
    results are ordered load-major, seed-minor.  Systems compared at the
    same points with the same seeds stay paired (common random numbers).
    The legacy single-``seed`` parameter is deprecated — pass
    ``seeds=(s,)`` instead; when neither is given, ``seeds=(1,)``.

    ``trace_dir`` traces every point, writing one
    ``<system>_<workload>_rho<load>[_seed<s>].trace.json`` per point
    (the seed suffix appears only for multi-seed sweeps, keeping legacy
    single-seed filenames stable); ``metrics_dir`` likewise collects
    telemetry per point.
    """
    if seed is not None:
        if seeds is not None:
            raise ConfigurationError(
                "pass either seeds=... or the deprecated seed=..., not both"
            )
        warnings.warn(
            "run_sweep(seed=...) is deprecated; pass seeds=(seed,) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        seeds = (seed,)
    if seeds is None:
        seeds = (1,)
    if not seeds:
        raise ConfigurationError("run_sweep needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds in {list(seeds)!r}")
    multi = len(seeds) > 1
    results: List[RunResult] = []
    for rho in utilizations:
        for s in seeds:
            name_parts: List[Any] = [
                system.name, spec.name, f"rho{round(rho * 100):03d}"
            ]
            if multi:
                name_parts.append(f"seed{s}")
            results.append(
                run_once(
                    system,
                    spec,
                    rho,
                    n_requests=n_requests,
                    seed=s,
                    warmup_frac=warmup_frac,
                    pct=pct,
                    sanitize=sanitize,
                    trace_path=trace_target(trace_dir, *name_parts),
                    metrics_path=metrics_target(metrics_dir, *name_parts),
                )
            )
    return results


def run_replicated_sweep(
    system: SystemModel,
    spec: WorkloadSpec,
    utilizations: Sequence[float],
    seeds: Sequence[int],
    experiment: str,
    workload: Optional[str] = None,
    n_requests: int = DEFAULT_N_REQUESTS,
    warmup_frac: float = DEFAULT_WARMUP_FRAC,
    pct: float = 99.9,
    sanitize: "bool | str" = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> Dict[int, List[RunResult]]:
    """Replicated sweep with **derived** per-cell seeds.

    Each ``(load point, replicate)`` runs under the seed
    :func:`repro.sweep.cells.derive_seed` produces for the matching
    sweep cell — so a serial multi-seed figure run and a pooled
    ``repro-sweep`` run of the same grid execute bit-identical cells.
    ``workload`` is the planner's workload token (defaults to
    ``spec.name``).  Returns ``{replicate: [RunResult per load point]}``
    in the order of ``seeds``.
    """
    from ..sweep.cells import derive_seed

    if not seeds:
        raise ConfigurationError("run_replicated_sweep needs at least one seed")
    token = spec.name if workload is None else workload
    multi = len(seeds) > 1
    replicates: Dict[int, List[RunResult]] = {}
    for replicate in seeds:
        sweep: List[RunResult] = []
        for rho in utilizations:
            cell_seed = derive_seed(
                experiment,
                {
                    "system": system.name,
                    "workload": token,
                    "rho": rho,
                    "n_requests": n_requests,
                },
                replicate,
            )
            name_parts: List[Any] = [
                system.name, token, f"rho{round(rho * 100):03d}"
            ]
            if multi:
                name_parts.append(f"seed{replicate}")
            sweep.append(
                run_once(
                    system,
                    spec,
                    rho,
                    n_requests=n_requests,
                    seed=cell_seed,
                    warmup_frac=warmup_frac,
                    pct=pct,
                    sanitize=sanitize,
                    trace_path=trace_target(trace_dir, *name_parts),
                    metrics_path=metrics_target(metrics_dir, *name_parts),
                )
            )
        replicates[replicate] = sweep
    return replicates
