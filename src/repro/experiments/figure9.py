"""Figure 9 (§5.6): DARC with a broken (random) request classifier.

High Bimodal on an 8-worker server (the paper's two-node Silver 4114
setup).  DARC-random pushes every request to a uniformly random typed
queue; each queue then holds an even mix of both types, so reservations
protect nothing and behaviour converges to c-FCFS — which is exactly the
desired failure mode (broken classifiers degrade gracefully, they don't
melt down).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..analysis.slo import overall_slowdown_metric
from ..core.classifier import RandomClassifier
from ..systems.base import SystemModel
from ..systems.persephone import PersephoneCfcfsSystem, PersephoneSystem
from ..workload.presets import high_bimodal
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 8
DEFAULT_UTILIZATIONS = (0.2, 0.35, 0.5, 0.65, 0.8, 0.9)


def _random_classifier_factory(spec, rngs):
    return RandomClassifier(n_types=spec.n_types, rng=rngs.stream("classifier"))


def default_systems() -> List[SystemModel]:
    return [
        PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS"),
        PersephoneSystem(n_workers=N_WORKERS, oracle=False, name="DARC"),
        PersephoneSystem(
            n_workers=N_WORKERS,
            oracle=False,
            classifier_factory=_random_classifier_factory,
            name="DARC-random",
        ),
    ]


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 50_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    spec = high_bimodal()
    result = FigureResult("Figure 9 [random classifier]", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure9",
            workload="high_bimodal", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )
    random_sweep = result.sweeps.get("DARC-random")
    cfcfs_sweep = result.sweeps.get("c-FCFS")
    if random_sweep and cfcfs_sweep:
        # Convergence check: mean |log-ratio| of the two slowdown curves.
        ratios = []
        for r_rand, r_cf in zip(random_sweep, cfcfs_sweep):
            a = overall_slowdown_metric(r_rand)
            b = overall_slowdown_metric(r_cf)
            if a > 0 and b > 0 and a == a and b == b:
                ratios.append(abs(np.log(a / b)))
        if ratios:
            result.findings["mean |log slowdown ratio| (DARC-random vs c-FCFS)"] = float(
                np.mean(ratios)
            )
    collect_forensics(forensics_dir, trace_dir, "figure9")
    return result


def render(result: FigureResult) -> str:
    return (
        result.render_metric(overall_slowdown_metric, "overall p99.9 slowdown (x)")
        + "\n\n"
        + result.render_findings()
    )
