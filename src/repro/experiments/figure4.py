"""Figure 4 (§5.3): how much non-work-conservation is useful?

DARC-static with 0–14 reserved cores at 95% load, on High Bimodal (a)
and Extreme Bimodal (b), with the c-FCFS slowdown as the reference line.

Paper findings: the best manual setting is 1 reserved core for High
Bimodal (4.4x improvement over c-FCFS) and 2 for Extreme Bimodal (1.5x)
— matching what DARC's reservation algorithm picks automatically.
0 reserved cores equals plain Fixed Priority; too many starve longs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.slo import overall_slowdown_metric
from ..analysis.tables import render_table
from ..sweep.stats import mean_ci
from ..systems.persephone import PersephoneCfcfsSystem, PersephoneStaticSystem
from ..workload.presets import extreme_bimodal, high_bimodal
from ..workload.spec import WorkloadSpec
from .common import (
    RunResult,
    collect_forensics,
    metrics_target,
    run_once,
    trace_target,
)

N_WORKERS = 14
UTILIZATION = 0.95
DEFAULT_RESERVED = tuple(range(0, 15))


class Figure4Result:
    """Per-workload slowdown as a function of reserved cores.

    Multi-seed runs additionally collect per-replicate slowdown samples;
    :meth:`slowdowns` then reports replicate means (``sweeps`` and
    ``references`` always hold the first replicate's runs).
    """

    def __init__(self, utilization: float):
        self.utilization = utilization
        #: workload name -> {n_reserved: RunResult}
        self.sweeps: Dict[str, Dict[int, RunResult]] = {}
        #: workload name -> c-FCFS reference RunResult
        self.references: Dict[str, RunResult] = {}
        #: workload name -> {n_reserved: [slowdown per replicate]}
        self.slowdown_samples: Dict[str, Dict[int, List[float]]] = {}
        #: workload name -> [c-FCFS slowdown per replicate]
        self.reference_samples: Dict[str, List[float]] = {}
        self.n_replicates = 1
        self.findings: Dict[str, float] = {}

    def slowdowns(self, workload: str) -> Dict[int, float]:
        samples = self.slowdown_samples.get(workload)
        if samples:
            return {k: mean_ci(v).mean for k, v in samples.items()}
        return {
            k: overall_slowdown_metric(r) for k, r in self.sweeps[workload].items()
        }

    def reference_slowdown(self, workload: str) -> float:
        samples = self.reference_samples.get(workload)
        if samples:
            return mean_ci(samples).mean
        return overall_slowdown_metric(self.references[workload])

    def best_reserved(self, workload: str) -> int:
        values = self.slowdowns(workload)
        return min(values, key=lambda k: values[k])

    def render(self) -> str:
        parts = []
        for workload, runs in self.sweeps.items():
            ref = self.reference_slowdown(workload)
            values = self.slowdowns(workload)
            rows = [[k, values[k], ref] for k in sorted(runs)]
            note = (
                f" (means over {self.n_replicates} seeds)"
                if self.n_replicates > 1
                else ""
            )
            parts.append(
                render_table(
                    ["reserved", "p99.9 slowdown", "c-FCFS ref"],
                    rows,
                    precision=1,
                    title=(
                        f"Figure 4 [{workload}] at {self.utilization:.0%} "
                        f"load{note}"
                    ),
                )
            )
        if self.findings:
            lines = ["Figure 4: findings"]
            for key, value in self.findings.items():
                lines.append(f"  {key} = {value:.2f}")
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _cell_seed(
    seeds: Optional[Sequence[int]],
    replicate: int,
    raw_seed: int,
    workload: str,
    choice: str,
    utilization: float,
    n_requests: int,
) -> int:
    """Raw seed on the legacy path, derived per-cell seed with ``seeds``
    (matching the pooled ``repro-sweep`` figure4 cells)."""
    if seeds is None:
        return raw_seed
    from ..sweep.cells import derive_seed

    return derive_seed(
        "figure4",
        {
            "system": choice,
            "workload": workload,
            "rho": utilization,
            "n_requests": n_requests,
        },
        replicate,
    )


def run(
    reserved_counts: Sequence[int] = DEFAULT_RESERVED,
    utilization: float = UTILIZATION,
    n_requests: int = 60_000,
    seed: int = 1,
    workloads: Optional[Dict[str, WorkloadSpec]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> Figure4Result:
    if workloads is None:
        workloads = {
            "high_bimodal": high_bimodal(),
            "extreme_bimodal": extreme_bimodal(),
        }
    replicates: Sequence[int] = seeds if seeds else (seed,)
    result = Figure4Result(utilization)
    result.n_replicates = len(replicates)
    cfcfs = PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS")
    for name, spec in workloads.items():
        ref_samples: List[float] = []
        samples: Dict[int, List[float]] = {}
        for index, replicate in enumerate(replicates):
            first = index == 0
            suffix = () if len(replicates) == 1 else (f"seed{replicate}",)
            ref = run_once(
                cfcfs, spec, utilization, n_requests=n_requests,
                seed=_cell_seed(
                    seeds, replicate, seed, name, "c-FCFS",
                    utilization, n_requests,
                ),
                sanitize=sanitize,
                trace_path=trace_target(
                    trace_dir, "figure4", name, "c-FCFS", *suffix
                ),
                metrics_path=metrics_target(
                    metrics_dir, "figure4", name, "c-FCFS", *suffix
                ),
            )
            ref_samples.append(overall_slowdown_metric(ref))
            if first:
                result.references[name] = ref
            runs: Dict[int, RunResult] = {}
            for k in reserved_counts:
                if k >= N_WORKERS:
                    continue  # must leave at least one worker for long requests
                system = PersephoneStaticSystem(n_reserved=k, n_workers=N_WORKERS)
                run_result = run_once(
                    system, spec, utilization, n_requests=n_requests,
                    seed=_cell_seed(
                        seeds, replicate, seed, name, f"reserved{k}",
                        utilization, n_requests,
                    ),
                    sanitize=sanitize,
                    trace_path=trace_target(
                        trace_dir, "figure4", name, f"reserved{k}", *suffix
                    ),
                    metrics_path=metrics_target(
                        metrics_dir, "figure4", name, f"reserved{k}", *suffix
                    ),
                )
                runs[k] = run_result
                samples.setdefault(k, []).append(
                    overall_slowdown_metric(run_result)
                )
            if first:
                result.sweeps[name] = runs
        if len(replicates) > 1:
            result.slowdown_samples[name] = samples
            result.reference_samples[name] = ref_samples
        best = result.best_reserved(name)
        ref_value = result.reference_slowdown(name)
        best_val = result.slowdowns(name)[best]
        result.findings[f"best reserved [{name}]"] = float(best)
        if best_val > 0:
            result.findings[f"improvement over c-FCFS [{name}]"] = (
                ref_value / best_val
            )
    collect_forensics(forensics_dir, trace_dir, "figure4")
    return result
