"""Figure 4 (§5.3): how much non-work-conservation is useful?

DARC-static with 0–14 reserved cores at 95% load, on High Bimodal (a)
and Extreme Bimodal (b), with the c-FCFS slowdown as the reference line.

Paper findings: the best manual setting is 1 reserved core for High
Bimodal (4.4x improvement over c-FCFS) and 2 for Extreme Bimodal (1.5x)
— matching what DARC's reservation algorithm picks automatically.
0 reserved cores equals plain Fixed Priority; too many starve longs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.slo import overall_slowdown_metric
from ..analysis.tables import render_table
from ..systems.persephone import PersephoneCfcfsSystem, PersephoneStaticSystem
from ..workload.presets import extreme_bimodal, high_bimodal
from ..workload.spec import WorkloadSpec
from .common import RunResult, metrics_target, run_once, trace_target

N_WORKERS = 14
UTILIZATION = 0.95
DEFAULT_RESERVED = tuple(range(0, 15))


class Figure4Result:
    """Per-workload slowdown as a function of reserved cores."""

    def __init__(self, utilization: float):
        self.utilization = utilization
        #: workload name -> {n_reserved: RunResult}
        self.sweeps: Dict[str, Dict[int, RunResult]] = {}
        #: workload name -> c-FCFS reference RunResult
        self.references: Dict[str, RunResult] = {}
        self.findings: Dict[str, float] = {}

    def slowdowns(self, workload: str) -> Dict[int, float]:
        return {
            k: overall_slowdown_metric(r) for k, r in self.sweeps[workload].items()
        }

    def best_reserved(self, workload: str) -> int:
        values = self.slowdowns(workload)
        return min(values, key=lambda k: values[k])

    def render(self) -> str:
        parts = []
        for workload, runs in self.sweeps.items():
            ref = overall_slowdown_metric(self.references[workload])
            rows = [
                [k, overall_slowdown_metric(r), ref]
                for k, r in sorted(runs.items())
            ]
            parts.append(
                render_table(
                    ["reserved", "p99.9 slowdown", "c-FCFS ref"],
                    rows,
                    precision=1,
                    title=f"Figure 4 [{workload}] at {self.utilization:.0%} load",
                )
            )
        if self.findings:
            lines = ["Figure 4: findings"]
            for key, value in self.findings.items():
                lines.append(f"  {key} = {value:.2f}")
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def run(
    reserved_counts: Sequence[int] = DEFAULT_RESERVED,
    utilization: float = UTILIZATION,
    n_requests: int = 60_000,
    seed: int = 1,
    workloads: Optional[Dict[str, WorkloadSpec]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> Figure4Result:
    if workloads is None:
        workloads = {
            "high_bimodal": high_bimodal(),
            "extreme_bimodal": extreme_bimodal(),
        }
    result = Figure4Result(utilization)
    cfcfs = PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS")
    for name, spec in workloads.items():
        result.references[name] = run_once(
            cfcfs, spec, utilization, n_requests=n_requests, seed=seed,
            sanitize=sanitize,
            trace_path=trace_target(trace_dir, "figure4", name, "c-FCFS"),
            metrics_path=metrics_target(metrics_dir, "figure4", name, "c-FCFS"),
        )
        runs: Dict[int, RunResult] = {}
        for k in reserved_counts:
            if k >= N_WORKERS:
                continue  # must leave at least one worker for long requests
            system = PersephoneStaticSystem(n_reserved=k, n_workers=N_WORKERS)
            runs[k] = run_once(
                system, spec, utilization, n_requests=n_requests, seed=seed,
                sanitize=sanitize,
                trace_path=trace_target(trace_dir, "figure4", name, f"reserved{k}"),
                metrics_path=metrics_target(
                    metrics_dir, "figure4", name, f"reserved{k}"
                ),
            )
        result.sweeps[name] = runs
        best = result.best_reserved(name)
        ref = overall_slowdown_metric(result.references[name])
        best_val = result.slowdowns(name)[best]
        result.findings[f"best reserved [{name}]"] = float(best)
        if best_val > 0:
            result.findings[f"improvement over c-FCFS [{name}]"] = ref / best_val
    return result
