"""Figure 1 (§2): the motivating policy simulation.

16 workers, the 99.5% × 0.5 µs + 0.5% × 500 µs mix, Poisson arrivals,
ideal system (no network/dispatch overheads).  Policies: d-FCFS, c-FCFS,
TS (5 µs quantum, 1 µs overhead — "an optimistically cheap time sharing
policy"), and DARC (oracle reservation).

Paper numbers at a 10x per-type slowdown SLO (peak = 5.34 Mrps):
c-FCFS ≈ 2.1 Mrps (~40% of peak), TS ≈ 3.7 Mrps (~70%), DARC ≈ 5.1 Mrps
(~95%); DARC reserves 1 worker (16-worker machine) for short requests.
At 5.1 Mrps, short p99.9 ≈ 9.87 µs vs 7738 µs (c-FCFS) and 161 µs (TS).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.slo import max_typed_slowdown_metric
from ..systems.base import SystemModel
from ..systems.persephone import (
    PersephoneCfcfsSystem,
    PersephoneDfcfsSystem,
    PersephoneSystem,
)
from ..systems.shinjuku import ShinjukuSystem
from ..workload.presets import figure1_workload
from .common import collect_forensics
from .results import FigureResult, collect_sweep

N_WORKERS = 16
SLO_SLOWDOWN = 10.0
DEFAULT_UTILIZATIONS = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)


def default_systems() -> List[SystemModel]:
    """The four Table 1 policies on an ideal 16-worker machine."""
    return [
        PersephoneDfcfsSystem(n_workers=N_WORKERS, name="d-FCFS"),
        PersephoneCfcfsSystem(n_workers=N_WORKERS, name="c-FCFS"),
        # §2: "TS ... with multiple queues for different request types and
        # interrupts at the microsecond scale ... 5us preemption frequency
        # and 1us overhead per preemption".
        ShinjukuSystem(
            n_workers=N_WORKERS,
            quantum_us=5.0,
            preempt_overhead_us=1.0,
            preempt_delay_us=0.0,
            mode="multi",
            trigger="demand",
            name="TS (5us, 1us)",
        ),
        PersephoneSystem(n_workers=N_WORKERS, oracle=True, name="DARC"),
    ]


def run(
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    n_requests: int = 60_000,
    seed: int = 1,
    systems: Optional[List[SystemModel]] = None,
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
    forensics_dir: Optional[str] = None,
) -> FigureResult:
    """Run the Fig. 1 sweep and derive its headline capacities.

    ``seeds`` replicates every point (derived per-cell seeds, CI
    tables); without it the single raw ``seed`` runs, as always.
    """
    spec = figure1_workload()
    result = FigureResult("Figure 1", utilizations)
    for system in systems if systems is not None else default_systems():
        collect_sweep(
            result, system, spec, utilizations, experiment="figure1",
            workload="figure1", n_requests=n_requests, seed=seed, seeds=seeds,
            sanitize=sanitize, trace_dir=trace_dir, metrics_dir=metrics_dir,
        )
    caps = result.capacities(SLO_SLOWDOWN, max_typed_slowdown_metric)
    peak_mrps = spec.peak_load(N_WORKERS)
    for name, cap in caps.items():
        result.findings[f"capacity@10x [{name}] (frac of peak)"] = (
            cap if cap is not None else float("nan")
        )
        result.findings[f"capacity@10x [{name}] (Mrps)"] = (
            cap * peak_mrps if cap is not None else float("nan")
        )
    if caps.get("DARC") and caps.get("c-FCFS"):
        result.findings["DARC vs c-FCFS capacity ratio"] = caps["DARC"] / caps["c-FCFS"]
    ts_name = "TS (5us, 1us)"
    if caps.get("DARC") and caps.get(ts_name):
        result.findings["DARC vs TS capacity ratio"] = caps["DARC"] / caps[ts_name]
    collect_forensics(forensics_dir, trace_dir, "figure1")
    return result


def render(result: FigureResult) -> str:
    body = result.render_metric(
        max_typed_slowdown_metric, "p99.9 slowdown of the worst type (x)"
    )
    return body + "\n\n" + result.render_findings()
