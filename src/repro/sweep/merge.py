"""Merge executed cells into replicated, confidence-intervalled output.

Aggregation here is a **pure function** of the cell results: grouping is
by parameter binding, statistics come from :mod:`repro.sweep.stats`, and
nothing reads the clock, the pid, or an RNG — the observer-purity
contract (lint R009 / analyzer A301) is enforced over this package, so a
merged document depends only on the cells that went in, never on how or
when they were executed.

Grouping model: cells that differ only in ``replicate`` are replicates
of one *group* (grid point).  Each group gets a per-metric
:class:`~repro.sweep.stats.CIStat`; groups that differ only in the
``system`` parameter are then comparable at matched load — they shared a
seed by construction (see :data:`repro.sweep.cells.PAIRED_KEYS`), so
system deltas are paired comparisons, not independent samples.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..analysis.tables import render_table
from .cells import CellResult
from .planner import ExperimentSpec, experiment_spec
from .stats import CIStat, mean_ci


class GroupStat(NamedTuple):
    """One grid point's replicated statistics."""

    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    #: replicate token -> outcome digest (determinism evidence).
    digests: Tuple[Tuple[int, str], ...]
    #: metric name -> CI over replicates.
    metrics: Dict[str, CIStat]

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def n_replicates(self) -> int:
        return len(self.digests)

    def metric(self, name: str) -> CIStat:
        return self.metrics.get(
            name, mean_ci(())
        )


class MergedSweep(NamedTuple):
    """The aggregated output of one sweep."""

    experiment: str
    confidence: float
    n_cells: int
    groups: Tuple[GroupStat, ...]
    #: "(workload, system)" -> capacity utilization (or None).
    capacities: Dict[str, Optional[float]]
    findings: Dict[str, float]

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": "repro-sweep-merged",
            "version": 1,
            "experiment": self.experiment,
            "confidence": self.confidence,
            "n_cells": self.n_cells,
            "groups": [
                {
                    "params": g.params_dict,
                    "replicates": g.n_replicates,
                    "digests": {str(r): d for r, d in g.digests},
                    "metrics": {
                        name: {
                            "n": stat.n,
                            "mean": stat.mean,
                            "std": stat.std,
                            "half_width": stat.half_width,
                            "low": stat.low,
                            "high": stat.high,
                        }
                        for name, stat in sorted(g.metrics.items())
                    },
                }
                for g in self.groups
            ],
            "capacities": dict(self.capacities),
            "findings": dict(self.findings),
        }

    def render(self) -> str:
        spec = experiment_spec(self.experiment)
        parts: List[str] = []
        if spec.kind in ("load_sweep", "reserved_grid"):
            parts.extend(self._render_load_tables(spec))
        else:
            parts.append(self._render_generic_table(spec))
        if self.capacities:
            lines = [f"{self.experiment}: capacities (mean over replicates)"]
            for key, cap in sorted(self.capacities.items()):
                shown = "-" if cap is None else f"{cap:.2f}"
                lines.append(f"  {key} = {shown}")
            parts.append("\n".join(lines))
        if self.findings:
            lines = [f"{self.experiment}: findings"]
            for key, value in sorted(self.findings.items()):
                lines.append(f"  {key} = {value:.2f}")
            parts.append("\n".join(lines))
        return "\n\n".join(p for p in parts if p)

    def _workloads(self) -> List[str]:
        seen: List[str] = []
        for group in self.groups:
            w = group.params_dict.get("workload", "")
            if w not in seen:
                seen.append(w)
        return seen

    def _render_load_tables(self, spec: ExperimentSpec) -> List[str]:
        parts: List[str] = []
        metric = spec.capacity_metric
        for workload in self._workloads():
            groups = [
                g for g in self.groups if g.params_dict.get("workload") == workload
            ]
            systems: List[str] = []
            rhos: List[float] = []
            for g in groups:
                p = g.params_dict
                if p.get("system") not in systems:
                    systems.append(p.get("system"))
                if p.get("rho") not in rhos:
                    rhos.append(p.get("rho"))
            rhos.sort()
            by_point = {
                (g.params_dict.get("system"), g.params_dict.get("rho")): g
                for g in groups
            }
            rows = []
            for rho in rhos:
                row: List[Any] = [rho]
                for system in systems:
                    g = by_point.get((system, rho))
                    row.append(g.metric(metric).format() if g else "-")
                rows.append(row)
            n_rep = max((g.n_replicates for g in groups), default=0)
            ci_note = (
                f", mean±{self.confidence:.0%} CI over {n_rep} seeds"
                if n_rep > 1
                else ""
            )
            parts.append(
                render_table(
                    ["load"] + systems,
                    rows,
                    precision=2,
                    title=(
                        f"{self.experiment} [{workload}]: {metric}{ci_note}"
                    ),
                )
            )
        return parts

    def _render_generic_table(self, spec: ExperimentSpec) -> str:
        metrics = [
            m
            for m in spec.table_metrics
            if any(m in g.metrics for g in self.groups)
        ]
        rows = []
        for group in self.groups:
            label = " ".join(
                f"{k}={v}"
                for k, v in group.params
                if k not in ("n_requests",)
            )
            rows.append([label] + [group.metric(m).format() for m in metrics])
        n_rep = max((g.n_replicates for g in self.groups), default=0)
        ci_note = (
            f" (mean±{self.confidence:.0%} CI over {n_rep} seeds)"
            if n_rep > 1
            else ""
        )
        return render_table(
            ["cell"] + metrics,
            rows,
            precision=2,
            title=f"{self.experiment}: replicated metrics{ci_note}",
        )


def _group_results(
    results: Sequence[CellResult],
) -> List[Tuple[Tuple[Tuple[str, Any], ...], List[CellResult]]]:
    """Group by parameter binding, preserving first-seen order."""
    order: List[Tuple[Tuple[str, Any], ...]] = []
    grouped: Dict[Tuple[Tuple[str, Any], ...], List[CellResult]] = {}
    for result in results:
        key = result.params
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(result)
    return [(key, grouped[key]) for key in order]


def merge_results(
    experiment: str,
    results: Sequence[CellResult],
    confidence: float = 0.95,
) -> MergedSweep:
    """Aggregate executed cells into one :class:`MergedSweep`."""
    spec = experiment_spec(experiment)
    groups: List[GroupStat] = []
    for params, replicates in _group_results(results):
        replicates = sorted(replicates, key=lambda r: r.replicate)
        names = sorted({name for r in replicates for name in r.metrics_dict})
        metrics = {
            name: mean_ci(
                [r.metrics_dict.get(name, float("nan")) for r in replicates],
                confidence=confidence,
            )
            for name in names
        }
        groups.append(
            GroupStat(
                experiment=experiment,
                params=params,
                digests=tuple((r.replicate, r.digest) for r in replicates),
                metrics=metrics,
            )
        )
    capacities = _capacities(spec, groups)
    findings = _findings(spec, capacities)
    findings.update(_rack_findings(spec, groups))
    return MergedSweep(
        experiment=experiment,
        confidence=confidence,
        n_cells=len(results),
        groups=tuple(groups),
        capacities=capacities,
        findings=findings,
    )


def _capacities(
    spec: ExperimentSpec, groups: Sequence[GroupStat]
) -> Dict[str, Optional[float]]:
    """Per (workload, system) capacity from replicate-mean metrics.

    Mirrors :func:`repro.analysis.slo.capacity_at_slo`: the highest load
    whose mean metric meets the workload's SLO, with any dropped request
    in any replicate disqualifying the point.
    """
    if spec.kind != "load_sweep" or not spec.slo:
        return {}
    capacities: Dict[str, Optional[float]] = {}
    pairs = sorted(
        {
            (g.params_dict.get("workload"), g.params_dict.get("system"))
            for g in groups
        }
    )
    for workload, system in pairs:
        slo = spec.slo.get(workload)
        if slo is None:
            continue
        best: Optional[float] = None
        for g in groups:
            p = g.params_dict
            if p.get("workload") != workload or p.get("system") != system:
                continue
            stat = g.metric(spec.capacity_metric)
            drops = g.metric("drop_rate")
            if drops.n and drops.mean > 0:
                continue
            if stat.n and stat.mean == stat.mean and stat.mean <= slo:
                rho = float(p.get("rho", float("nan")))
                if best is None or rho > best:
                    best = rho
        capacities[f"capacity@{slo:g} [{workload}/{system}]"] = best
    return capacities


def _rack_findings(
    spec: ExperimentSpec, groups: Sequence[GroupStat]
) -> Dict[str, float]:
    """Rack headline: DARC-vs-baseline tail slowdown, per balancer.

    Mirrors :func:`repro.experiments.rack._findings` — at the highest
    swept load point, the ratio of each baseline's mean tail slowdown
    (``spec.capacity_metric``) to Persephone's, computed separately for
    every balancer so the two-level composition's effect is visible.
    """
    if spec.kind != "rack":
        return {}
    metric = spec.capacity_metric
    rhos = sorted(
        {
            g.params_dict["rho"]
            for g in groups
            if g.params_dict.get("rho") is not None
        }
    )
    if not rhos:
        return {}
    rho = rhos[-1]
    findings: Dict[str, float] = {}
    balancers: List[str] = []
    for g in groups:
        b = g.params_dict.get("balancer")
        if b is not None and b not in balancers:
            balancers.append(b)
    for balancer in balancers:
        by_system: Dict[str, float] = {}
        for g in groups:
            p = g.params_dict
            if p.get("balancer") != balancer or p.get("rho") != rho:
                continue
            stat = g.metric(metric)
            if stat.n and stat.mean == stat.mean:
                by_system[p.get("system")] = stat.mean
        darc = by_system.get("Persephone")
        if not darc or darc <= 0:
            continue
        for system, value in sorted(by_system.items()):
            if system == "Persephone":
                continue
            findings[f"DARC vs {system} slowdown [{balancer}] @{rho:g}"] = (
                value / darc
            )
    return findings


def _findings(
    spec: ExperimentSpec, capacities: Mapping[str, Optional[float]]
) -> Dict[str, float]:
    """Headline ratios: DARC (Persephone) capacity vs each baseline."""
    findings: Dict[str, float] = {}
    by_pair: Dict[Tuple[str, str], float] = {}
    for key, cap in capacities.items():
        if cap is None or "[" not in key:
            continue
        inside = key[key.index("[") + 1 : key.rindex("]")]
        workload, _, system = inside.partition("/")
        by_pair[(workload, system)] = cap
    for (workload, system), cap in sorted(by_pair.items()):
        darc = by_pair.get((workload, "Persephone"))
        if system == "Persephone" or darc is None or cap == 0:
            continue
        findings[f"DARC vs {system} capacity [{workload}]"] = darc / cap
    return findings
