"""``repro.sweep`` — parallel experiment orchestration.

A sweep fans an experiment's (grid point × seed) space out into
independent *cells*, executes them serially or across a process pool,
checkpoints every completed cell to disk, and merges the results into
replicated tables with Student-t confidence intervals.  Determinism is
carried by the cells themselves — each derives its root seed from a
stable hash of its identity — so execution order, worker count and
resume boundaries cannot change any result.

The value-object layer (:mod:`~repro.sweep.cells`,
:mod:`~repro.sweep.stats`) imports eagerly; the orchestration layers
load on first attribute access to keep ``import repro.sweep`` free of
the experiments/systems import graph.
"""

from .cells import Cell, CellResult, PAIRED_KEYS, derive_seed, parse_seeds
from .stats import CIStat, mean_ci, t_critical

__all__ = [
    "Cell",
    "CellResult",
    "CIStat",
    "PAIRED_KEYS",
    "CellOutcome",
    "CheckpointStore",
    "MergedSweep",
    "SweepPlan",
    "derive_seed",
    "execute_cells",
    "experiment_spec",
    "mean_ci",
    "merge_results",
    "parse_seeds",
    "plan_experiment",
    "run_cell",
    "run_plan",
    "supported_experiments",
    "t_critical",
]

_LAZY = {
    "SweepPlan": ("planner", "SweepPlan"),
    "experiment_spec": ("planner", "experiment_spec"),
    "plan_experiment": ("planner", "plan_experiment"),
    "supported_experiments": ("planner", "supported_experiments"),
    "run_cell": ("runner", "run_cell"),
    "CellOutcome": ("executor", "CellOutcome"),
    "execute_cells": ("executor", "execute_cells"),
    "CheckpointStore": ("checkpoint", "CheckpointStore"),
    "MergedSweep": ("merge", "MergedSweep"),
    "merge_results": ("merge", "merge_results"),
    "run_plan": ("orchestrator", "run_plan"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)
