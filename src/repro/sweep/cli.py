"""``repro-sweep`` — plan, execute, inspect and merge parallel sweeps.

Usage::

    repro-sweep plan figure5 --seeds 1,2,3 --out sweeps/fig5
    repro-sweep run figure5 --seeds 1,2,3 --jobs 4 --out sweeps/fig5
    repro-sweep run figure5 --seeds 1,2,3 --jobs 4 --out sweeps/fig5 --resume
    repro-sweep status sweeps/fig5
    repro-sweep merge sweeps/fig5 --confidence 0.95

``plan`` only writes the expanded cell grid; ``run`` executes it
(resumably), checkpointing each cell as it completes, and merges once
everything is durable.  Exit codes: 0 ok, 1 failed/incomplete cells,
2 usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ConfigurationError, ReproError
from .cells import parse_seeds
from .checkpoint import CheckpointStore
from .orchestrator import merge_store, run_plan
from .planner import plan_experiment, supported_experiments


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Parallel experiment orchestration for the Persephone "
        "reproduction: deterministic fan-out, resumable checkpoints, "
        "multi-seed confidence intervals.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "experiment",
            choices=supported_experiments(),
            help="experiment grid to expand",
        )
        p.add_argument(
            "--seeds", default="1",
            help="comma-separated replicate seeds (default: 1); 3+ seeds "
            "turn on confidence intervals",
        )
        p.add_argument(
            "--n-requests", type=int, default=None,
            help="arrivals per cell (default: the experiment's own)",
        )
        p.add_argument(
            "--utilizations", default=None,
            help="comma-separated load points overriding the default grid",
        )
        p.add_argument(
            "--out", required=True, help="checkpoint directory for this sweep"
        )

    p = sub.add_parser("plan", help="expand the cell grid and write plan.json")
    add_grid_args(p)

    p = sub.add_parser("run", help="execute a sweep (resumably)")
    add_grid_args(p)
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock timeout in seconds (pool mode only)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="continue an existing checkpoint, skipping completed cells",
    )
    p.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after this many cells (for interrupt/resume testing)",
    )
    p.add_argument(
        "--trace", action="store_true", help="write per-cell trace artifacts"
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="write per-cell telemetry artifacts",
    )
    p.add_argument(
        "--confidence", type=float, default=0.95,
        help="CI level for merged tables (0.90/0.95/0.99)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    p = sub.add_parser("status", help="report a checkpoint's progress")
    p.add_argument("dir", help="checkpoint directory")

    p = sub.add_parser("merge", help="(re-)aggregate a checkpoint's results")
    p.add_argument("dir", help="checkpoint directory")
    p.add_argument("--confidence", type=float, default=0.95)
    return parser


def _build_plan(args: argparse.Namespace):
    utils = None
    if args.utilizations:
        utils = [float(u) for u in args.utilizations.split(",") if u.strip()]
    return plan_experiment(
        args.experiment,
        seeds=parse_seeds(args.seeds),
        n_requests=args.n_requests,
        utilizations=utils,
    )


def cmd_plan(args: argparse.Namespace) -> int:
    plan = _build_plan(args)
    store = CheckpointStore(args.out)
    store.init(plan, resume=False)
    print(
        f"planned {args.experiment}: {len(plan.cells)} cells "
        f"({len(plan.seeds)} seed(s)) -> {store.plan_path}"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    plan = _build_plan(args)
    observe = tuple(
        name
        for name, enabled in (("trace", args.trace), ("metrics", args.metrics))
        if enabled
    )
    progress = None if args.quiet else print
    run = run_plan(
        plan,
        args.out,
        jobs=args.jobs,
        resume=args.resume,
        timeout_s=args.timeout,
        observe=observe,
        confidence=args.confidence,
        max_cells=args.max_cells,
        progress=progress,
    )
    if run.n_failed:
        failed = [o for o in run.outcomes if not o.ok]
        for outcome in failed:
            print(
                f"FAILED {outcome.cell.cell_id}: {outcome.status} "
                f"({outcome.error})",
                file=sys.stderr,
            )
        return 1
    if run.merged is None:
        remaining = len(run.store.pending_cells(run.plan))
        print(
            f"stopped with {remaining} cell(s) pending; rerun with --resume "
            "to finish"
        )
        return 1
    print()
    print(run.merged.render())
    print(f"\nmerged {run.merged.n_cells} cells -> {run.store.merged_path}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    store = CheckpointStore(args.dir)
    status = store.status()
    print(
        f"{status['experiment']} @ {status['root']}: "
        f"{status['completed']}/{status['total']} cells complete, "
        f"{status['failed']} failed, seeds {status['seeds']}"
    )
    for cell_id, error in status["failures"].items():
        print(f"  FAILED {cell_id}: {error}")
    if status["merged"]:
        print(f"  merged: {store.merged_path}")
    return 0 if status["pending"] == 0 and status["failed"] == 0 else 1


def cmd_merge(args: argparse.Namespace) -> int:
    merged = merge_store(args.dir, confidence=args.confidence)
    print(merged.render())
    print(f"\nmerged {merged.n_cells} cells -> "
          f"{CheckpointStore(args.dir).merged_path}")
    return 0


_COMMANDS = {
    "plan": cmd_plan,
    "run": cmd_run,
    "status": cmd_status,
    "merge": cmd_merge,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ConfigurationError, ReproError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
