"""Cell execution: turn one :class:`~repro.sweep.cells.Cell` into a
:class:`~repro.sweep.cells.CellResult`.

:func:`run_cell` dispatches on the experiment registry by *name*, so a
cell is runnable from any process that can import :mod:`repro` — the
pool executor ships cell documents, not live objects, and stays
compatible with every ``multiprocessing`` start method.

Every cell's digest comes from
:func:`repro.lint.determinism.digest_outcome` (or its chaos variant) —
the same fingerprint the determinism checker uses — which is what lets
the determinism tests pin that serial, pooled and resumed executions of
one cell are bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.units import US_PER_MS
from .cells import Cell, CellResult
from .planner import SELFTEST, experiment_spec


def _summary_metrics(summary) -> Dict[str, float]:
    """Reduce a :class:`~repro.metrics.summary.RunSummary` to the flat
    floats the replication layer aggregates."""
    return {
        "completed": float(summary.completed),
        "dropped": float(summary.dropped),
        "drop_rate": float(summary.drop_rate),
        "throughput": float(summary.throughput),
        "overall_tail_slowdown": float(summary.overall_tail_slowdown),
        "overall_tail_latency": float(summary.overall_tail_latency),
        "overall_mean_latency": float(summary.overall_mean_latency),
        "overall_mean_slowdown": float(summary.overall_mean_slowdown),
        "max_typed_slowdown": float(summary.max_typed_slowdown()),
        "total_preemptions": float(summary.total_preemptions),
        "total_overhead_us": float(summary.total_overhead_us),
    }


def _cell_paths(
    cell: Cell, artifact_dir: Optional[str], observe: Tuple[str, ...]
) -> Tuple[Optional[str], Optional[str], Tuple[str, ...]]:
    """Per-cell trace/metrics targets inside ``artifact_dir``."""
    if artifact_dir is None or not observe:
        return None, None, ()
    os.makedirs(artifact_dir, exist_ok=True)
    trace_path = (
        os.path.join(artifact_dir, f"{cell.cell_id}.trace.json")
        if "trace" in observe
        else None
    )
    metrics_path = (
        os.path.join(artifact_dir, f"{cell.cell_id}.metrics")
        if "metrics" in observe
        else None
    )
    artifacts = tuple(p for p in (trace_path, metrics_path) if p is not None)
    return trace_path, metrics_path, artifacts


def _run_simulated_cell(
    cell: Cell,
    system,
    wspec,
    artifact_dir: Optional[str],
    observe: Tuple[str, ...],
) -> CellResult:
    """The common load-point path: ``run_once`` + outcome digest."""
    from ..experiments.common import run_once
    from ..lint.determinism import digest_outcome

    params = cell.params_dict
    trace_path, metrics_path, artifacts = _cell_paths(cell, artifact_dir, observe)
    meta = {"cell_id": cell.cell_id, "replicate": cell.replicate}
    result = run_once(
        system,
        wspec,
        params["rho"],
        n_requests=params["n_requests"],
        seed=cell.seed,
        trace_path=trace_path,
        trace_meta=meta if trace_path else None,
        metrics_path=metrics_path,
        metrics_meta=meta if metrics_path else None,
    )
    recorder = result.server.recorder
    loop = result.server.loop
    return CellResult.build(
        cell,
        _summary_metrics(result.summary),
        digest_outcome(recorder, loop),
        loop.now,
        artifacts=artifacts,
    )


def _run_load_cell(cell, spec, artifact_dir, observe) -> CellResult:
    params = cell.params_dict
    workload = params["workload"]
    systems = {s.name: s for s in spec.systems_for(workload)}
    system = systems.get(params["system"])
    if system is None:
        raise ConfigurationError(
            f"cell {cell.cell_id}: system {params['system']!r} is not one of "
            f"{sorted(systems)} for {cell.experiment}/{workload}"
        )
    return _run_simulated_cell(cell, system, spec.spec_for(workload), artifact_dir, observe)


def _run_reserved_cell(cell, spec, artifact_dir, observe) -> CellResult:
    from ..experiments import figure4
    from ..systems.persephone import PersephoneCfcfsSystem, PersephoneStaticSystem

    params = cell.params_dict
    choice = params["system"]
    if choice == "c-FCFS":
        system = PersephoneCfcfsSystem(n_workers=figure4.N_WORKERS, name="c-FCFS")
    elif choice.startswith("reserved"):
        k = int(choice[len("reserved"):])
        if not 0 <= k < figure4.N_WORKERS:
            raise ConfigurationError(
                f"cell {cell.cell_id}: reserved count {k} out of range"
            )
        system = PersephoneStaticSystem(n_reserved=k, n_workers=figure4.N_WORKERS)
    else:
        raise ConfigurationError(
            f"cell {cell.cell_id}: unknown figure4 system {choice!r}"
        )
    return _run_simulated_cell(
        cell, system, spec.spec_for(params["workload"]), artifact_dir, observe
    )


def _run_phased_cell(cell, spec, artifact_dir, observe) -> CellResult:
    from ..experiments import figure7
    from ..lint.determinism import digest_outcome
    from ..metrics.summary import RunSummary

    params = cell.params_dict
    systems = {s.name: s for s in spec.systems_for("phased")}
    system = systems.get(params["system"])
    if system is None:
        raise ConfigurationError(
            f"cell {cell.cell_id}: system {params['system']!r} is not one of "
            f"{sorted(systems)} for figure7"
        )
    trace_path, metrics_path, artifacts = _cell_paths(cell, artifact_dir, observe)
    recorder, scheduler, loop = figure7._run_system(
        system,
        figure7.default_phases(),
        cell.seed,
        window_us=10.0 * US_PER_MS,
        trace_path=trace_path,
        metrics_path=metrics_path,
    )
    summary = RunSummary(recorder, duration_us=loop.now, warmup_frac=0.0)
    metrics = _summary_metrics(summary)
    metrics["reservation_updates"] = float(
        getattr(scheduler, "reservation_updates", 0)
    )
    return CellResult.build(
        cell,
        metrics,
        digest_outcome(recorder, loop),
        loop.now,
        artifacts=artifacts,
    )


def _run_chaos_cell(cell, spec, artifact_dir, observe) -> CellResult:
    from ..experiments import chaos
    from ..faults.runner import run_chaos
    from ..lint.determinism import digest_chaos_outcome

    params = cell.params_dict
    workload = params["workload"]
    systems = {s.name: s for s in spec.systems_for(workload)}
    system = systems.get(params["system"])
    if system is None:
        raise ConfigurationError(
            f"cell {cell.cell_id}: system {params['system']!r} is not one of "
            f"{sorted(systems)} for chaos"
        )
    wspec = spec.spec_for(workload)
    n_requests = params["n_requests"]
    plan, _crash_at, _recover_at, window_us = chaos.episode_plan(n_requests, wspec)
    trace_path, metrics_path, artifacts = _cell_paths(cell, artifact_dir, observe)
    res = run_chaos(
        system,
        wspec,
        params["rho"],
        plan,
        n_requests=n_requests,
        seed=cell.seed,
        retry=chaos.default_retry(),
        window_us=window_us,
        slo_latency_us=chaos.SLO_LATENCY_US,
        trace_path=trace_path,
        metrics_path=metrics_path,
    )
    recorder = res.recorder
    loop = res.server.loop
    ttr = res.time_to_recover()
    deg = res.degradation
    metrics = {
        "completed": float(recorder.completed),
        "dropped": float(recorder.dropped),
        "throughput": float(recorder.completed / loop.now) if loop.now > 0 else 0.0,
        "ttr_us": float("nan") if ttr is None else float(ttr),
        "violation_us": float(deg.violation_time_us()),
        "goodput": float(deg.goodput.mean()) if len(deg.times) else 0.0,
        "timeouts": float(recorder.timeouts),
        "retries": float(recorder.retries),
        "failures": float(recorder.failures),
        "late_completions": float(recorder.late_completions),
        "reservation_updates": float(
            getattr(res.scheduler, "reservation_updates", 0)
        ),
    }
    return CellResult.build(
        cell,
        metrics,
        digest_chaos_outcome(recorder, loop, res.injector),
        loop.now,
        artifacts=artifacts,
    )


def _run_rack_cell(cell, spec, artifact_dir, observe) -> CellResult:
    from ..lint.determinism import digest_outcome
    from ..rack.rack import run_rack

    params = cell.params_dict
    workload = params["workload"]
    systems = {s.name: s for s in spec.systems_for(workload)}
    system = systems.get(params["system"])
    if system is None:
        raise ConfigurationError(
            f"cell {cell.cell_id}: system {params['system']!r} is not one of "
            f"{sorted(systems)} for rack"
        )
    _trace_path, metrics_path, artifacts = _cell_paths(cell, artifact_dir, observe)
    if metrics_path is None:
        artifacts = ()
    result = run_rack(
        system,
        spec.spec_for(workload),
        balancer=params["balancer"],
        n_servers=params["n_servers"],
        utilization=params["rho"],
        n_requests=params["n_requests"],
        seed=cell.seed,
        metrics_path=metrics_path,
    )
    metrics = _summary_metrics(result.summary)
    metrics["load_imbalance"] = float(result.load_imbalance())
    metrics["spills"] = float(getattr(result.balancer, "spills", 0))
    metrics["stale_reads"] = float(result.views.stale_reads)
    metrics["view_error"] = float(result.views.mean_error())
    return CellResult.build(
        cell,
        metrics,
        digest_outcome(result.recorder, result.loop),
        result.loop.now,
        artifacts=artifacts,
    )


def _run_selftest_cell(cell: Cell) -> CellResult:
    """Executor-infrastructure cells: deterministic toy work.

    ``mode="ok"`` computes a pure value; ``"sleep"`` additionally idles
    for ``duration_ms`` of real time (the latency-bound benchmark cell —
    pool speedup on such a grid measures orchestration overlap and is
    machine-independent); ``"crash"`` raises; ``"hang"`` blocks until
    the executor's per-cell timeout kills it.  The sleeps are real
    wall-clock idling by design — this is worker-management test
    machinery, never simulation or aggregation code.
    """
    params = cell.params_dict
    mode = params["mode"]
    duration_ms = float(params.get("duration_ms", 0.0))
    if mode == "crash":
        raise RuntimeError(f"selftest cell {cell.cell_id} crashed on request")
    if mode == "hang":
        time.sleep(3600.0)  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
    if mode == "sleep" and duration_ms > 0:
        time.sleep(duration_ms / 1e3)  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
    elif mode not in ("ok", "sleep"):
        raise ConfigurationError(f"unknown selftest mode {mode!r}")
    value = float((cell.seed % 1_000) + params["index"])
    payload = json.dumps(
        [cell.experiment, sorted(params.items()), cell.replicate, value],
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    return CellResult.build(
        cell,
        {"value": value},
        hashlib.sha256(payload).hexdigest(),
        sim_time_us=0.0,
    )


def run_cell(
    cell: Cell,
    artifact_dir: Optional[str] = None,
    observe: Tuple[str, ...] = (),
) -> CellResult:
    """Execute one cell to completion, in the calling process.

    ``observe`` may contain ``"trace"`` and/or ``"metrics"`` to attach
    the zero-interference observer planes, writing per-cell artifacts
    under ``artifact_dir``; digests are identical either way.
    """
    spec = experiment_spec(cell.experiment)
    if spec.kind == "load_sweep":
        return _run_load_cell(cell, spec, artifact_dir, observe)
    if spec.kind == "reserved_grid":
        return _run_reserved_cell(cell, spec, artifact_dir, observe)
    if spec.kind == "phased":
        return _run_phased_cell(cell, spec, artifact_dir, observe)
    if spec.kind == "chaos":
        return _run_chaos_cell(cell, spec, artifact_dir, observe)
    if spec.kind == "rack":
        return _run_rack_cell(cell, spec, artifact_dir, observe)
    if spec.kind == "selftest":
        return _run_selftest_cell(cell)
    raise ConfigurationError(
        f"cell {cell.cell_id}: unrunnable experiment kind {spec.kind!r}"
    )


def run_cell_doc(
    doc: Dict[str, Any],
    artifact_dir: Optional[str] = None,
    observe: Tuple[str, ...] = (),
) -> Dict[str, Any]:
    """Document-in, document-out variant for process boundaries."""
    return run_cell(Cell.from_doc(doc), artifact_dir, tuple(observe)).to_doc()
