"""Cell model: the unit of work a sweep fans out.

A *cell* is one independent simulation: an experiment name, a parameter
binding (system, workload, load point, ...), and a replicate token (the
user-facing seed).  Cells are value objects — hashable, picklable, and
serializable — so the same cell can be executed in-process, shipped to a
pool worker, or re-read from a checkpoint, and always means the same
run.

Seed derivation
---------------
Every cell's root seed is a **stable hash** of
``(experiment, seed_params, replicate)`` feeding
:class:`~repro.sim.randomness.RngRegistry`, so a cell's result is
bit-identical whether it runs serially, in any pool ordering, or after a
resume.  ``seed_params`` is the cell's parameter binding *minus* the
keys in :data:`PAIRED_KEYS` (the system name): systems compared at the
same (workload, load, replicate) point deliberately share one seed —
the paper's common-random-numbers methodology — while different load
points, workloads and replicates get statistically independent streams.
The hash is SHA-256 over a canonical JSON encoding, so it is stable
across processes, platforms and Python versions (unlike builtin
``hash``, which is salted per process).
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Dict, Mapping, NamedTuple, Optional, Tuple

#: Parameter keys excluded from seed derivation.  Cells that differ only
#: in these keys share a seed: comparisons across systems — and, for
#: rack grids, across balancers — at the same point stay paired (common
#: random numbers), exactly as the serial figure drivers have always
#: run them.  (Pre-rack experiments carry no "balancer" param, so their
#: derived seeds are unchanged by its presence here.)
PAIRED_KEYS = ("system", "balancer")

#: Length of the hexadecimal cell-id suffix (collision guard for slugs).
ID_HASH_LEN = 10


def _canonical(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, repr floats."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def stable_hash64(payload: Any) -> int:
    """A 63-bit stable hash of any JSON-serializable payload."""
    digest = hashlib.sha256(_canonical(payload)).digest()
    return int.from_bytes(digest[:8], "big") % (2**63)


def derive_seed(experiment: str, params: Mapping[str, Any], replicate: int) -> int:
    """The root seed for one cell.

    Pure function of ``(experiment, params - PAIRED_KEYS, replicate)``;
    see the module docstring for why the system name is excluded.
    """
    seed_params = {
        key: params[key] for key in sorted(params) if key not in PAIRED_KEYS
    }
    return stable_hash64([experiment, seed_params, int(replicate)])


def _slug(text: str) -> str:
    """Filesystem-safe token."""
    return re.sub(r"[^A-Za-z0-9.-]+", "-", str(text)).strip("-") or "x"


class Cell(NamedTuple):
    """One independent unit of sweep work.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so
    cells are hashable and their identity does not depend on dict
    ordering; build cells with :meth:`make` rather than directly.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    #: The user-facing seed token for this replicate (e.g. ``--seeds 1,2,3``
    #: produces replicates 1, 2 and 3 of every grid point).
    replicate: int

    @classmethod
    def make(cls, experiment: str, params: Mapping[str, Any], replicate: int) -> "Cell":
        return cls(
            experiment=experiment,
            params=tuple((k, params[k]) for k in sorted(params)),
            replicate=int(replicate),
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def seed(self) -> int:
        """The derived root seed actually fed to ``RngRegistry``."""
        return derive_seed(self.experiment, self.params_dict, self.replicate)

    @property
    def group_id(self) -> str:
        """Identity of the grid point this cell replicates (no replicate)."""
        parts = [self.experiment] + [
            f"{k}-{_slug(v)}" for k, v in self.params if k != "n_requests"
        ]
        return "_".join(_slug(p) for p in parts)

    @property
    def cell_id(self) -> str:
        """Stable, filesystem-safe, collision-guarded identifier."""
        digest = hashlib.sha256(
            _canonical([self.experiment, self.params_dict, self.replicate])
        ).hexdigest()[:ID_HASH_LEN]
        return f"{self.group_id}_r{self.replicate}-{digest}"

    def to_doc(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "params": self.params_dict,
            "replicate": self.replicate,
            "seed": self.seed,
            "cell_id": self.cell_id,
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Cell":
        cell = cls.make(doc["experiment"], doc["params"], doc["replicate"])
        recorded = doc.get("seed")
        if recorded is not None and int(recorded) != cell.seed:
            raise ValueError(
                f"cell {cell.cell_id}: recorded seed {recorded} does not match "
                f"the derived seed {cell.seed} — plan and code disagree"
            )
        return cell


class CellResult(NamedTuple):
    """The serializable outcome of one executed cell.

    This is what crosses the process boundary and lands on disk — a
    reduction of :class:`~repro.experiments.common.RunResult` to plain
    floats plus a digest of the observable event stream, so merged
    results never depend on live scheduler/server objects.
    """

    cell_id: str
    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    replicate: int
    seed: int
    #: Flat metric name -> value (summary statistics, counters).
    metrics: Tuple[Tuple[str, float], ...]
    #: SHA-256 of the observable outcome (recorder columns + counters);
    #: the determinism tests pin these across serial/parallel/resume.
    digest: str
    #: Simulated duration in microseconds (virtual time, not wall time).
    sim_time_us: float
    #: Paths of per-cell artifacts (trace/metrics exports), if any.
    artifacts: Tuple[str, ...] = ()

    @classmethod
    def build(
        cls,
        cell: Cell,
        metrics: Mapping[str, float],
        digest: str,
        sim_time_us: float,
        artifacts: Tuple[str, ...] = (),
    ) -> "CellResult":
        return cls(
            cell_id=cell.cell_id,
            experiment=cell.experiment,
            params=cell.params,
            replicate=cell.replicate,
            seed=cell.seed,
            metrics=tuple((k, float(metrics[k])) for k in sorted(metrics)),
            digest=digest,
            sim_time_us=float(sim_time_us),
            artifacts=tuple(artifacts),
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def metrics_dict(self) -> Dict[str, float]:
        return dict(self.metrics)

    @property
    def group_id(self) -> str:
        return Cell.make(self.experiment, self.params_dict, self.replicate).group_id

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": "repro-sweep-cell",
            "cell_id": self.cell_id,
            "experiment": self.experiment,
            "params": self.params_dict,
            "replicate": self.replicate,
            "seed": self.seed,
            "metrics": self.metrics_dict,
            "digest": self.digest,
            "sim_time_us": self.sim_time_us,
            "artifacts": list(self.artifacts),
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "CellResult":
        if doc.get("kind") != "repro-sweep-cell":
            raise ValueError(f"not a cell-result document: kind={doc.get('kind')!r}")
        return cls(
            cell_id=doc["cell_id"],
            experiment=doc["experiment"],
            params=tuple((k, doc["params"][k]) for k in sorted(doc["params"])),
            replicate=int(doc["replicate"]),
            seed=int(doc["seed"]),
            metrics=tuple(
                (k, float(doc["metrics"][k])) for k in sorted(doc["metrics"])
            ),
            digest=doc["digest"],
            sim_time_us=float(doc["sim_time_us"]),
            artifacts=tuple(doc.get("artifacts", ())),
        )


def parse_seeds(text: Optional[str]) -> Tuple[int, ...]:
    """Parse a ``--seeds 1,2,3`` CLI token into an ordered seed tuple."""
    if not text:
        return (1,)
    seeds = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        seeds.append(int(part))
    if not seeds:
        raise ValueError(f"no seeds in {text!r}")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"duplicate seeds in {text!r}")
    return tuple(seeds)
