"""Cell executor: serial or multiprocessing fan-out with crash isolation.

Design constraints, in order:

1. **Determinism is not the executor's job** — every cell derives its
   own seed (:mod:`repro.sweep.cells`), so the executor is free to run
   cells in any order, on any worker count, and the results are
   bit-identical.  That freedom is what makes the pool trivial to reason
   about: there is no cross-cell communication at all.
2. **Crash isolation**: one cell segfaulting, raising, or hanging must
   not take down the sweep.  Each cell runs in its *own* process with a
   private pipe; a dead pipe plus a nonzero exit code is a crash, a
   blown deadline is a timeout (the worker is killed), and both are
   recorded as failed outcomes while every other cell proceeds.
3. **Start-method agnosticism**: workers receive JSON-able cell
   documents and resolve the work by experiment *name* through the
   registry, so fork and spawn behave identically.

This module is worker management, not simulation or aggregation: the
wall-clock reads below (pool deadlines, progress pacing) never touch a
simulated result, and each carries the purity pragmas with that
justification.  Merged *results* stay bound by the observer-purity
contract (lint R009 / analyzer A301) enforced over this package.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .cells import Cell, CellResult
from .runner import run_cell, run_cell_doc

#: How long the orchestrator waits on worker pipes per poll, seconds.
_POLL_S = 0.25

#: Grace period between SIGTERM and SIGKILL for a timed-out worker.
_KILL_GRACE_S = 2.0


class CellOutcome(NamedTuple):
    """What happened to one cell: exactly one of result/error is set."""

    cell: Cell
    result: Optional[CellResult]
    #: "ok" | "error" | "timeout" | "crash"
    status: str
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


#: Progress callback: (done_count, total, outcome) after every cell.
ProgressFn = Callable[[int, int, CellOutcome], None]


def _worker_main(conn, cell_doc, artifact_dir, observe) -> None:
    """Pool worker entry point: run one cell, ship the outcome back.

    Top-level (not a closure) so it is picklable under the spawn start
    method; everything it receives is a plain document.
    """
    try:
        result_doc = run_cell_doc(cell_doc, artifact_dir, tuple(observe))
        conn.send(("ok", result_doc))
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
    finally:
        conn.close()


class _LiveWorker(NamedTuple):
    index: int
    cell: Cell
    process: multiprocessing.Process
    conn: Any
    deadline: Optional[float]


def _reap(worker: _LiveWorker) -> CellOutcome:
    """Collect a finished worker's message (its pipe is readable)."""
    try:
        status, payload = worker.conn.recv()
    except (EOFError, OSError):
        worker.process.join()
        return CellOutcome(
            worker.cell,
            None,
            "crash",
            f"worker died without a result (exit code {worker.process.exitcode})",
        )
    worker.conn.close()
    worker.process.join()
    if status == "ok":
        return CellOutcome(worker.cell, CellResult.from_doc(payload), "ok")
    return CellOutcome(worker.cell, None, "error", str(payload))


def _kill(worker: _LiveWorker) -> CellOutcome:
    """Terminate a worker that blew its deadline."""
    worker.process.terminate()
    worker.process.join(_KILL_GRACE_S)
    if worker.process.is_alive():  # pragma: no cover - stubborn worker
        worker.process.kill()
        worker.process.join()
    worker.conn.close()
    return CellOutcome(
        worker.cell, None, "timeout", "cell exceeded its per-cell timeout"
    )


def _execute_serial(
    cells: Sequence[Cell],
    artifact_dir: Optional[str],
    observe: Tuple[str, ...],
    progress: Optional[ProgressFn],
) -> List[CellOutcome]:
    outcomes: List[CellOutcome] = []
    for cell in cells:
        try:
            outcome = CellOutcome(cell, run_cell(cell, artifact_dir, observe), "ok")
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            outcome = CellOutcome(cell, None, "error", f"{type(exc).__name__}: {exc}")
        outcomes.append(outcome)
        if progress is not None:
            progress(len(outcomes), len(cells), outcome)
    return outcomes


def _execute_pool(
    cells: Sequence[Cell],
    jobs: int,
    timeout_s: Optional[float],
    artifact_dir: Optional[str],
    observe: Tuple[str, ...],
    progress: Optional[ProgressFn],
) -> List[CellOutcome]:
    import time

    ctx = multiprocessing.get_context()
    pending = list(enumerate(cells))
    live: List[_LiveWorker] = []
    outcomes: Dict[int, CellOutcome] = {}

    def launch(index: int, cell: Cell) -> _LiveWorker:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_main,
            args=(child_conn, cell.to_doc(), artifact_dir, list(observe)),
            daemon=True,
        )
        process.start()
        child_conn.close()
        deadline = None
        if timeout_s is not None:
            deadline = time.monotonic() + timeout_s  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
        return _LiveWorker(index, cell, process, parent_conn, deadline)

    def settle(worker: _LiveWorker, outcome: CellOutcome) -> None:
        outcomes[worker.index] = outcome
        if progress is not None:
            progress(len(outcomes), len(cells), outcome)

    try:
        while pending or live:
            while pending and len(live) < jobs:
                index, cell = pending.pop(0)
                live.append(launch(index, cell))
            ready = multiprocessing.connection.wait(
                [w.conn for w in live], timeout=_POLL_S
            )
            ready_set = set(ready)
            now = time.monotonic()  # repro-lint: disable=R002,R009  # repro-analyze: disable=A301
            still: List[_LiveWorker] = []
            for worker in live:
                if worker.conn in ready_set:
                    settle(worker, _reap(worker))
                elif worker.deadline is not None and now >= worker.deadline:
                    settle(worker, _kill(worker))
                else:
                    still.append(worker)
            live = still
    finally:
        for worker in live:  # pragma: no cover - interrupt path
            worker.process.terminate()
            worker.process.join(_KILL_GRACE_S)
            if worker.process.is_alive():
                worker.process.kill()
    return [outcomes[i] for i in range(len(cells))]


def execute_cells(
    cells: Sequence[Cell],
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    artifact_dir: Optional[str] = None,
    observe: Tuple[str, ...] = (),
    progress: Optional[ProgressFn] = None,
) -> List[CellOutcome]:
    """Run every cell, serially (``jobs=1``) or in a process pool.

    Returns one :class:`CellOutcome` per input cell, in input order
    regardless of completion order.  ``timeout_s`` bounds each cell's
    wall time in the pool path (a timed-out worker is killed and its
    cell marked failed); the serial path runs in-process and cannot
    enforce timeouts.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if not cells:
        return []
    if jobs == 1:
        return _execute_serial(cells, artifact_dir, observe, progress)
    return _execute_pool(cells, jobs, timeout_s, artifact_dir, observe, progress)
