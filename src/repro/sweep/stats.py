"""Replication statistics: Student-t confidence intervals over seeds.

Tail percentiles from one finite run are noisy; a sweep that replicates
each cell under ≥3 independent seeds can put honest error bars on every
headline number.  With a handful of replicates the normal approximation
underestimates the interval badly, so this module uses the Student-t
distribution with ``n - 1`` degrees of freedom.

No SciPy dependency: two-sided critical values are tabulated for the
three conventional confidence levels at every df ≤ 30 (exact to 3–4
decimals), falling back to the normal quantile beyond — where the t
distribution is within ~2% of normal anyway.  The tables make the math
a pure, dependency-free function of its inputs, which matters because
this code runs inside the sweep *aggregation* layer and is bound by the
observer-purity contract (lint R009 / analyzer A301).
"""

from __future__ import annotations

import math
from typing import Dict, NamedTuple, Sequence, Tuple

#: Two-sided Student-t critical values t_{df, (1+c)/2} per confidence c.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    # index 0 -> df=1, index 29 -> df=30
    0.90: (
        6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595,
        1.8331, 1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459,
        1.7396, 1.7341, 1.7291, 1.7247, 1.7207, 1.7171, 1.7139, 1.7109,
        1.7081, 1.7056, 1.7033, 1.7011, 1.6991, 1.6973,
    ),
    0.95: (
        12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
        2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
        2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
        2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423,
    ),
    0.99: (
        63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554,
        3.2498, 3.1693, 3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208,
        2.8982, 2.8784, 2.8609, 2.8453, 2.8314, 2.8188, 2.8073, 2.7969,
        2.7874, 2.7787, 2.7707, 2.7633, 2.7564, 2.7500,
    ),
}

#: Normal quantiles z_{(1+c)/2} used past the tabulated range.
_Z_FALLBACK: Dict[float, float] = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}

SUPPORTED_CONFIDENCES = tuple(sorted(_T_TABLE))


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE.get(confidence)
    if table is None:
        raise ValueError(
            f"confidence must be one of {SUPPORTED_CONFIDENCES}, got {confidence}"
        )
    if df <= len(table):
        return table[df - 1]
    return _Z_FALLBACK[confidence]


class CIStat(NamedTuple):
    """Mean with a Student-t confidence interval over replicates."""

    n: int
    mean: float
    std: float
    half_width: float
    low: float
    high: float
    confidence: float

    def format(self, precision: int = 1) -> str:
        if self.n == 0 or self.mean != self.mean:
            return "-"
        if self.n == 1:
            return f"{self.mean:.{precision}f}"
        return f"{self.mean:.{precision}f}±{self.half_width:.{precision}f}"


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> CIStat:
    """Mean and Student-t CI of ``values`` (NaNs dropped).

    A single surviving value yields a degenerate zero-width interval; an
    empty input yields NaNs throughout.  Both cases keep ``n`` honest so
    callers can decide whether the interval is credible.
    """
    clean = [float(v) for v in values if v == v]
    n = len(clean)
    if n == 0:
        nan = float("nan")
        return CIStat(0, nan, nan, nan, nan, nan, confidence)
    mean = math.fsum(clean) / n
    if n == 1:
        return CIStat(1, mean, 0.0, 0.0, mean, mean, confidence)
    var = math.fsum((v - mean) ** 2 for v in clean) / (n - 1)
    std = math.sqrt(var)
    half = t_critical(n - 1, confidence) * std / math.sqrt(n)
    return CIStat(n, mean, std, half, mean - half, mean + half, confidence)
