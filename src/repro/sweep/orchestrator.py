"""End-to-end sweep orchestration: plan → execute → checkpoint → merge.

Shared by the ``repro-sweep`` CLI and by ``repro-experiments --jobs``,
so both entry points get identical semantics: the same checkpoint
layout, the same resume behavior, and the same merged document.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .checkpoint import CheckpointStore, write_json_atomic
from .executor import CellOutcome, execute_cells
from .merge import MergedSweep, merge_results
from .planner import SweepPlan


class SweepRun(NamedTuple):
    """What one orchestrated invocation did."""

    plan: SweepPlan
    store: CheckpointStore
    #: Outcomes of the cells *this* invocation executed (resumed-over
    #: cells are not re-listed; they are already in the store).
    outcomes: Tuple[CellOutcome, ...]
    #: Aggregate over every durable cell, or None if cells remain.
    merged: Optional[MergedSweep]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)


def run_plan(
    plan: SweepPlan,
    checkpoint_dir: str,
    jobs: int = 1,
    resume: bool = False,
    timeout_s: Optional[float] = None,
    observe: Tuple[str, ...] = (),
    confidence: float = 0.95,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepRun:
    """Execute ``plan`` against a checkpoint directory.

    With ``resume=True`` an existing checkpoint for the same grid is
    continued: durably completed cells are skipped and only the
    remainder runs.  ``max_cells`` bounds how many cells this invocation
    executes (used by tests and the CI kill/resume step to simulate an
    interrupt); when cells remain afterwards no merge is produced.
    Merged output is written to ``<dir>/merged.json`` once every cell of
    the plan is durable.
    """
    store = CheckpointStore(checkpoint_dir)
    plan = store.init(plan, resume=resume)
    pending = store.pending_cells(plan)
    skipped = len(plan.cells) - len(pending)
    if progress is not None and skipped:
        progress(f"resume: {skipped}/{len(plan.cells)} cells already complete")
    truncated = max_cells is not None and len(pending) > max_cells
    if truncated:
        pending = pending[:max_cells]

    def on_cell(done: int, total: int, outcome: CellOutcome) -> None:
        store.record(outcome)
        if progress is not None:
            note = "" if outcome.ok else f"  [{outcome.status}: {outcome.error}]"
            progress(f"[{done}/{total}] {outcome.cell.cell_id}{note}")

    artifact_dir = store.artifact_dir if observe else None
    outcomes = execute_cells(
        pending,
        jobs=jobs,
        timeout_s=timeout_s,
        artifact_dir=artifact_dir,
        observe=observe,
        progress=on_cell,
    )
    merged: Optional[MergedSweep] = None
    if not store.pending_cells(plan):
        merged = merge_results(
            plan.experiment, store.load_results(), confidence=confidence
        )
        write_json_atomic(store.merged_path, merged.to_doc())
    return SweepRun(plan, store, tuple(outcomes), merged)


def merge_store(checkpoint_dir: str, confidence: float = 0.95) -> MergedSweep:
    """(Re-)merge whatever is durable in an existing checkpoint."""
    store = CheckpointStore(checkpoint_dir)
    plan = store.load_plan()
    merged = merge_results(
        plan.experiment, store.load_results(), confidence=confidence
    )
    write_json_atomic(store.merged_path, merged.to_doc())
    return merged
