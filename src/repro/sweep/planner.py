"""Cell planner: expand (experiment × grid point × seed) into cells.

Every orchestrable experiment registers an :class:`ExperimentSpec`
describing its grid — which workloads it runs, which systems it
compares, its default load points and request counts, and the SLO /
metric its capacity findings use.  :func:`plan_experiment` expands that
grid crossed with the requested seeds into a flat list of independent
:class:`~repro.sweep.cells.Cell`\\ s, each carrying a deterministically
derived root seed, and wraps it in a serializable :class:`SweepPlan`.

The registry deliberately reuses the figure modules' own
``default_systems``/``systems_for`` functions and module constants, so
a pooled sweep runs exactly the configurations the serial drivers run
— one source of truth for every grid.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .cells import Cell


class ExperimentSpec(NamedTuple):
    """Everything the planner and merger need to know about one experiment."""

    name: str
    #: "load_sweep" | "reserved_grid" | "phased" | "chaos" | "rack" |
    #: "selftest"
    kind: str
    #: Workload tokens the experiment iterates over ("" when implicit).
    workloads: Tuple[str, ...]
    #: workload token -> WorkloadSpec factory (None for non-sweep kinds).
    spec_for: Optional[Callable[[str], Any]]
    #: workload token -> list of SystemModel (fresh instances per call).
    systems_for: Optional[Callable[[str], List[Any]]]
    #: Default load points (empty for single-point experiments).
    utilizations: Tuple[float, ...]
    #: Default arrivals per cell.
    n_requests: int
    #: workload token -> SLO threshold for capacity findings (may be {}).
    slo: Dict[str, float]
    #: Metric key (in CellResult.metrics) the SLO applies to.
    capacity_metric: str
    #: Metric keys worth tabulating in merged output, in display order.
    table_metrics: Tuple[str, ...]


def _load_sweep(
    name: str,
    workloads: Tuple[str, ...],
    spec_for,
    systems_for,
    utilizations: Tuple[float, ...],
    n_requests: int,
    slo: Dict[str, float],
    capacity_metric: str,
) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        kind="load_sweep",
        workloads=workloads,
        spec_for=spec_for,
        systems_for=systems_for,
        utilizations=utilizations,
        n_requests=n_requests,
        slo=slo,
        capacity_metric=capacity_metric,
        table_metrics=(capacity_metric, "overall_tail_latency", "throughput"),
    )


def _registry() -> Dict[str, ExperimentSpec]:
    # Imported here (not at module top) so `import repro.sweep` stays
    # cheap and free of import cycles with repro.experiments.
    from ..apps.rocksdb import RocksDbLike
    from ..experiments import (
        chaos,
        figure1,
        figure3,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        figure9,
        figure10,
        rack,
    )
    from ..workload.presets import (
        extreme_bimodal,
        figure1_workload,
        high_bimodal,
        tpcc,
    )

    def bimodal_spec(workload: str):
        return high_bimodal() if workload == "high_bimodal" else extreme_bimodal()

    registry: Dict[str, ExperimentSpec] = {}

    registry["figure1"] = _load_sweep(
        "figure1", ("figure1",), lambda w: figure1_workload(),
        lambda w: figure1.default_systems(), figure1.DEFAULT_UTILIZATIONS,
        60_000, {"figure1": figure1.SLO_SLOWDOWN}, "max_typed_slowdown",
    )
    registry["figure3"] = _load_sweep(
        "figure3", ("high_bimodal",), bimodal_spec,
        lambda w: figure3.default_systems(), figure3.DEFAULT_UTILIZATIONS,
        60_000, {"high_bimodal": figure3.SHORT_LATENCY_SLO_US},
        "overall_tail_slowdown",
    )
    registry["figure5"] = _load_sweep(
        "figure5", ("high_bimodal", "extreme_bimodal"), bimodal_spec,
        figure5.systems_for, figure5.DEFAULT_UTILIZATIONS, 60_000,
        {"high_bimodal": figure5.SLO_HIGH, "extreme_bimodal": figure5.SLO_EXTREME},
        "overall_tail_slowdown",
    )
    registry["figure6"] = _load_sweep(
        "figure6", ("tpcc",), lambda w: tpcc(),
        lambda w: figure6.default_systems(), figure6.DEFAULT_UTILIZATIONS,
        60_000, {"tpcc": figure6.SLO_SLOWDOWN}, "overall_tail_slowdown",
    )
    registry["figure8"] = _load_sweep(
        "figure8", ("rocksdb",), lambda w: RocksDbLike().workload_spec(),
        lambda w: figure8.default_systems(), figure8.DEFAULT_UTILIZATIONS,
        60_000, {"rocksdb": figure8.SLO_SLOWDOWN}, "overall_tail_slowdown",
    )
    registry["figure9"] = _load_sweep(
        "figure9", ("high_bimodal",), bimodal_spec,
        lambda w: figure9.default_systems(), figure9.DEFAULT_UTILIZATIONS,
        50_000, {}, "overall_tail_slowdown",
    )
    registry["figure10"] = _load_sweep(
        "figure10", ("figure1",), lambda w: figure1_workload(),
        lambda w: figure10.default_systems(), figure10.DEFAULT_UTILIZATIONS,
        60_000, {"figure1": figure10.SLO_SLOWDOWN}, "max_typed_slowdown",
    )

    registry["figure4"] = ExperimentSpec(
        name="figure4",
        kind="reserved_grid",
        workloads=("high_bimodal", "extreme_bimodal"),
        spec_for=bimodal_spec,
        systems_for=None,
        utilizations=(figure4.UTILIZATION,),
        n_requests=60_000,
        slo={},
        capacity_metric="overall_tail_slowdown",
        table_metrics=("overall_tail_slowdown", "overall_tail_latency"),
    )
    registry["figure7"] = ExperimentSpec(
        name="figure7",
        kind="phased",
        workloads=("phased",),
        spec_for=None,
        systems_for=lambda w: [
            s for s in _figure7_systems(figure7)
        ],
        utilizations=(),
        n_requests=0,
        slo={},
        capacity_metric="overall_tail_slowdown",
        table_metrics=("overall_tail_slowdown", "overall_tail_latency"),
    )
    registry["chaos"] = ExperimentSpec(
        name="chaos",
        kind="chaos",
        workloads=("high_bimodal",),
        spec_for=bimodal_spec,
        systems_for=lambda w: chaos.default_systems(),
        utilizations=(chaos.UTILIZATION,),
        n_requests=20_000,
        slo={},
        capacity_metric="overall_tail_slowdown",
        table_metrics=("ttr_us", "violation_us", "failures", "throughput"),
    )
    registry["rack"] = ExperimentSpec(
        name="rack",
        kind="rack",
        workloads=(rack.WORKLOAD,),
        spec_for=bimodal_spec,
        systems_for=lambda w: rack.default_systems(),
        utilizations=rack.DEFAULT_UTILIZATIONS,
        n_requests=20_000,
        slo={},
        capacity_metric="overall_tail_slowdown",
        table_metrics=(
            "overall_tail_slowdown",
            "overall_tail_latency",
            "throughput",
            "load_imbalance",
        ),
    )
    registry[SELFTEST] = ExperimentSpec(
        name=SELFTEST,
        kind="selftest",
        workloads=("",),
        spec_for=None,
        systems_for=None,
        utilizations=(),
        n_requests=400,
        slo={},
        capacity_metric="value",
        table_metrics=("value",),
    )
    return registry


def _figure7_systems(figure7_mod) -> List[Any]:
    """The two systems figure7.run compares, by the same names."""
    from ..systems.persephone import PersephoneCfcfsSystem, PersephoneSystem

    return [
        PersephoneCfcfsSystem(n_workers=figure7_mod.N_WORKERS, name="c-FCFS"),
        PersephoneSystem(
            n_workers=figure7_mod.N_WORKERS,
            oracle=False,
            min_samples=500,
            ema_alpha=0.1,
            name="DARC",
        ),
    ]


#: Hidden experiment exercising the executor itself (crash isolation,
#: timeouts, latency overlap) without a full simulation per cell.
SELFTEST = "_selftest"

#: Registry cache — filled in place on first use (configuration, not
#: simulation state: the grid specs are immutable once built).
_SPECS: Dict[str, ExperimentSpec] = {}


def _specs() -> Dict[str, ExperimentSpec]:
    # Worker-path read of a lazily-filled module cache: fork-safe by
    # construction — _registry() is a pure function of the code, so any
    # process (parent, forked, or spawned) that misses the cache rebuilds
    # the identical table.  Nothing in it reflects parent runtime state.
    if not _SPECS:  # repro-analyze: disable=A602
        _SPECS.update(_registry())
    return _SPECS


def experiment_spec(name: str) -> ExperimentSpec:
    spec = _specs().get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown sweep experiment {name!r} (choices: "
            f"{', '.join(supported_experiments())})"
        )
    return spec


def supported_experiments() -> List[str]:
    """Public, orchestrable experiment names (selftest excluded)."""
    return sorted(name for name in _specs() if not name.startswith("_"))


class SweepPlan(NamedTuple):
    """A fully expanded, serializable sweep."""

    experiment: str
    seeds: Tuple[int, ...]
    n_requests: int
    utilizations: Tuple[float, ...]
    cells: Tuple[Cell, ...]

    def to_doc(self) -> Dict[str, Any]:
        return {
            "kind": "repro-sweep-plan",
            "version": 1,
            "experiment": self.experiment,
            "seeds": list(self.seeds),
            "n_requests": self.n_requests,
            "utilizations": list(self.utilizations),
            "cells": [cell.to_doc() for cell in self.cells],
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "SweepPlan":
        if doc.get("kind") != "repro-sweep-plan":
            raise ConfigurationError(
                f"not a sweep plan document: kind={doc.get('kind')!r}"
            )
        return cls(
            experiment=doc["experiment"],
            seeds=tuple(int(s) for s in doc["seeds"]),
            n_requests=int(doc["n_requests"]),
            utilizations=tuple(float(u) for u in doc["utilizations"]),
            cells=tuple(Cell.from_doc(c) for c in doc["cells"]),
        )


def plan_experiment(
    experiment: str,
    seeds: Sequence[int] = (1,),
    n_requests: Optional[int] = None,
    utilizations: Optional[Sequence[float]] = None,
) -> SweepPlan:
    """Expand one experiment's grid × seeds into independent cells.

    Cell ordering is deterministic (workload-major, then load point,
    then system, then seed) but carries no meaning: every cell is
    independent and the executor may complete them in any order.
    """
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds in {list(seeds)!r}")
    spec = experiment_spec(experiment)
    n = int(n_requests) if n_requests is not None else spec.n_requests
    utils = (
        tuple(float(u) for u in utilizations)
        if utilizations is not None
        else spec.utilizations
    )
    cells: List[Cell] = []
    if spec.kind == "load_sweep":
        for workload in spec.workloads:
            names = [s.name for s in spec.systems_for(workload)]
            for rho in utils:
                for name in names:
                    for seed in seeds:
                        cells.append(
                            Cell.make(
                                experiment,
                                {
                                    "system": name,
                                    "workload": workload,
                                    "rho": rho,
                                    "n_requests": n,
                                },
                                seed,
                            )
                        )
    elif spec.kind == "reserved_grid":
        from ..experiments import figure4

        rho = utils[0]
        for workload in spec.workloads:
            choices = ["c-FCFS"] + [
                f"reserved{k}"
                for k in figure4.DEFAULT_RESERVED
                if k < figure4.N_WORKERS
            ]
            for choice in choices:
                for seed in seeds:
                    cells.append(
                        Cell.make(
                            experiment,
                            {
                                "system": choice,
                                "workload": workload,
                                "rho": rho,
                                "n_requests": n,
                            },
                            seed,
                        )
                    )
    elif spec.kind == "phased":
        for name in [s.name for s in spec.systems_for("phased")]:
            for seed in seeds:
                cells.append(
                    Cell.make(experiment, {"system": name, "workload": "phased"}, seed)
                )
    elif spec.kind == "chaos":
        for workload in spec.workloads:
            names = [s.name for s in spec.systems_for(workload)]
            for name in names:
                for seed in seeds:
                    cells.append(
                        Cell.make(
                            experiment,
                            {
                                "system": name,
                                "workload": workload,
                                "rho": utils[0],
                                "n_requests": n,
                            },
                            seed,
                        )
                    )
    elif spec.kind == "rack":
        from ..experiments import rack as rack_mod

        for workload in spec.workloads:
            names = [s.name for s in spec.systems_for(workload)]
            for balancer in rack_mod.DEFAULT_BALANCERS:
                for rho in utils:
                    for name in names:
                        for seed in seeds:
                            cells.append(
                                Cell.make(
                                    experiment,
                                    {
                                        "system": name,
                                        "workload": workload,
                                        "balancer": balancer,
                                        "rho": rho,
                                        "n_requests": n,
                                        "n_servers": rack_mod.N_SERVERS,
                                    },
                                    seed,
                                )
                            )
    else:
        raise ConfigurationError(f"experiment {experiment!r} is not plannable")
    return SweepPlan(
        experiment=experiment,
        seeds=tuple(int(s) for s in seeds),
        n_requests=n,
        utilizations=utils,
        cells=tuple(cells),
    )


def plan_selftest(
    n_cells: int,
    seeds: Sequence[int] = (1,),
    mode: str = "ok",
    duration_ms: float = 0.0,
    n_requests: int = 400,
) -> SweepPlan:
    """A grid of executor-selftest cells (see :mod:`repro.sweep.runner`)."""
    cells = [
        Cell.make(
            SELFTEST,
            {
                "index": index,
                "mode": mode,
                "duration_ms": float(duration_ms),
                "n_requests": int(n_requests),
            },
            seed,
        )
        for index in range(n_cells)
        for seed in seeds
    ]
    return SweepPlan(
        experiment=SELFTEST,
        seeds=tuple(int(s) for s in seeds),
        n_requests=int(n_requests),
        utilizations=(),
        cells=tuple(cells),
    )
