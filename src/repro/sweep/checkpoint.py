"""Resumable on-disk checkpoint store for sweeps.

Layout of a checkpoint directory::

    <dir>/plan.json          the expanded SweepPlan (repro-sweep-plan)
    <dir>/manifest.json      completed/failed cell ledger (repro-sweep-manifest)
    <dir>/cells/<id>.json    one CellResult document per completed cell
    <dir>/merged.json        aggregated output (written by merge)
    <dir>/artifacts/         optional per-cell trace/metrics exports

Every write is atomic (temp file + ``os.replace``), and the manifest is
rewritten after *each* cell completes, so a sweep killed at any instant
leaves a consistent store: either a cell's result file and manifest
entry both exist, or the cell reruns on resume.  Only completed
(``"ok"``) cells are skipped by resume — failed and timed-out cells are
recorded for the status report but retried.

Everything here is a pure function of cell results and JSON documents:
no wall clock, pids or RNG touch the stored data, so a resumed sweep's
merged output is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .cells import Cell, CellResult
from .planner import SweepPlan

MANIFEST_KIND = "repro-sweep-manifest"


def write_json_atomic(path: str, doc: Mapping[str, Any]) -> None:
    """Serialize ``doc`` then atomically replace ``path``.

    The temp name is a fixed sibling (single-writer store: only the
    orchestrator process writes, workers return results over pipes).
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    os.replace(tmp, path)


def read_json(path: str) -> Dict[str, Any]:
    with open(path) as fp:
        return json.load(fp)


class CheckpointStore:
    """One sweep's on-disk state."""

    def __init__(self, root: str):
        self.root = root
        self.plan_path = os.path.join(root, "plan.json")
        self.manifest_path = os.path.join(root, "manifest.json")
        self.cells_dir = os.path.join(root, "cells")
        self.merged_path = os.path.join(root, "merged.json")
        self.artifact_dir = os.path.join(root, "artifacts")

    # -- plan ----------------------------------------------------------
    def exists(self) -> bool:
        return os.path.exists(self.plan_path)

    def init(self, plan: SweepPlan, resume: bool = False) -> SweepPlan:
        """Bind this store to ``plan``; create or validate the layout.

        A fresh directory is initialised with the plan and an empty
        manifest.  With ``resume=True`` an existing store is re-opened
        and its recorded plan must expand to the *same* cells — resuming
        under different parameters would silently mix incompatible
        results.  Without ``resume``, an existing store is an error.
        """
        if self.exists():
            if not resume:
                raise ConfigurationError(
                    f"checkpoint {self.root} already exists; pass --resume to "
                    "continue it or choose a fresh directory"
                )
            stored = self.load_plan()
            if stored.cells != plan.cells:
                raise ConfigurationError(
                    f"checkpoint {self.root} was planned for a different grid "
                    f"({len(stored.cells)} cells vs {len(plan.cells)} requested); "
                    "resume must reuse the original parameters"
                )
            return stored
        os.makedirs(self.cells_dir, exist_ok=True)
        write_json_atomic(self.plan_path, plan.to_doc())
        self._write_manifest({})
        return plan

    def load_plan(self) -> SweepPlan:
        if not self.exists():
            raise ConfigurationError(f"no sweep plan at {self.plan_path}")
        return SweepPlan.from_doc(read_json(self.plan_path))

    # -- manifest ------------------------------------------------------
    def _write_manifest(self, entries: Dict[str, Dict[str, Any]]) -> None:
        write_json_atomic(
            self.manifest_path,
            {"kind": MANIFEST_KIND, "version": 1, "cells": entries},
        )

    def manifest(self) -> Dict[str, Dict[str, Any]]:
        if not os.path.exists(self.manifest_path):
            return {}
        doc = read_json(self.manifest_path)
        if doc.get("kind") != MANIFEST_KIND:
            raise ConfigurationError(
                f"{self.manifest_path} is not a sweep manifest"
            )
        return dict(doc.get("cells", {}))

    def completed_ids(self) -> List[str]:
        """Cells whose results are durable (status ok + result file)."""
        entries = self.manifest()
        return sorted(
            cell_id
            for cell_id, entry in entries.items()
            if entry.get("status") == "ok"
            and os.path.exists(self._cell_path(cell_id))
        )

    def pending_cells(self, plan: Optional[SweepPlan] = None) -> List[Cell]:
        """Plan cells not yet durably completed, in plan order."""
        if plan is None:
            plan = self.load_plan()
        done = set(self.completed_ids())
        return [cell for cell in plan.cells if cell.cell_id not in done]

    # -- results -------------------------------------------------------
    def _cell_path(self, cell_id: str) -> str:
        return os.path.join(self.cells_dir, f"{cell_id}.json")

    def record(self, outcome) -> None:
        """Durably record one executed cell (result file, then manifest)."""
        entries = self.manifest()
        entry: Dict[str, Any] = {
            "status": outcome.status,
            "replicate": outcome.cell.replicate,
        }
        if outcome.result is not None:
            os.makedirs(self.cells_dir, exist_ok=True)
            write_json_atomic(
                self._cell_path(outcome.cell.cell_id), outcome.result.to_doc()
            )
            entry["digest"] = outcome.result.digest
        if outcome.error:
            entry["error"] = outcome.error
        entries[outcome.cell.cell_id] = entry
        self._write_manifest(entries)

    def load_result(self, cell_id: str) -> CellResult:
        return CellResult.from_doc(read_json(self._cell_path(cell_id)))

    def load_results(self) -> List[CellResult]:
        """All durable results, ordered by cell id."""
        return [self.load_result(cell_id) for cell_id in self.completed_ids()]

    # -- status --------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        plan = self.load_plan()
        entries = self.manifest()
        done = set(self.completed_ids())
        failed = {
            cell_id: entry
            for cell_id, entry in entries.items()
            if entry.get("status") != "ok"
        }
        return {
            "root": self.root,
            "experiment": plan.experiment,
            "seeds": list(plan.seeds),
            "total": len(plan.cells),
            "completed": len(done),
            "failed": len(failed),
            "pending": len(plan.cells) - len(done),
            "failures": {
                cell_id: entry.get("error", entry.get("status", ""))
                for cell_id, entry in sorted(failed.items())
            },
            "merged": os.path.exists(self.merged_path),
        }
