"""Analysis: queueing theory, SLO capacity search, text tables."""

from .darc_model import (
    GroupPrediction,
    predict_partition,
    reservation_meets_slo,
    spec_inputs,
)
from .queueing import (
    bimodal_moments,
    erlang_c,
    is_stable,
    mg1_mean_wait,
    mm1_mean_sojourn,
    mm1_mean_wait,
    mmc_mean_wait,
    partition_stability,
    utilization,
)
from .replication import Replication, replicate
from .slo import (
    capacity_at_slo,
    capacity_ratio,
    max_typed_slowdown_metric,
    overall_slowdown_metric,
    slowdown_improvement,
    typed_latency_metric,
)
from .tables import format_cell, render_series, render_table

__all__ = [
    "GroupPrediction",
    "predict_partition",
    "reservation_meets_slo",
    "spec_inputs",
    "Replication",
    "replicate",
    "mm1_mean_wait",
    "mm1_mean_sojourn",
    "mmc_mean_wait",
    "erlang_c",
    "mg1_mean_wait",
    "bimodal_moments",
    "utilization",
    "is_stable",
    "partition_stability",
    "capacity_at_slo",
    "capacity_ratio",
    "overall_slowdown_metric",
    "max_typed_slowdown_metric",
    "typed_latency_metric",
    "slowdown_improvement",
    "render_table",
    "render_series",
    "format_cell",
]
