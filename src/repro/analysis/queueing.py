"""Queueing-theory cross-checks.

The paper grounds DARC in queueing results (average demand as "a provable
indicator of stability" [40]).  These closed forms let tests validate the
simulator against theory:

* M/M/1 and M/M/c waiting times (Erlang C),
* M/G/1 mean waiting time (Pollaczek–Khinchine) — exact for c-FCFS with
  one worker on any service distribution, including our bimodal mixes,
* stability checks for typed partitions.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from ..errors import ConfigurationError


def _check_rho(rho: float) -> None:
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"utilization must be in [0,1) for a stable queue, got {rho}")


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean waiting time (excluding service) in an M/M/1 queue."""
    if service_rate <= 0:
        raise ConfigurationError("service_rate must be > 0")
    rho = arrival_rate / service_rate
    _check_rho(rho)
    return rho / (service_rate - arrival_rate)


def mm1_mean_sojourn(arrival_rate: float, service_rate: float) -> float:
    """Mean time in system (wait + service) for M/M/1."""
    return mm1_mean_wait(arrival_rate, service_rate) + 1.0 / service_rate


def erlang_c(c: int, offered_load: float) -> float:
    """Probability an arrival waits in an M/M/c queue (Erlang C).

    ``offered_load`` is a = λ/μ in Erlangs; requires a < c for stability.
    """
    if c < 1:
        raise ConfigurationError(f"c must be >= 1, got {c}")
    if offered_load < 0:
        raise ConfigurationError("offered_load must be >= 0")
    if offered_load >= c:
        raise ConfigurationError(f"unstable: offered load {offered_load} >= {c} servers")
    # Sum in log space is unnecessary for the c ranges here (<= dozens).
    summation = sum(offered_load**k / math.factorial(k) for k in range(c))
    top = offered_load**c / (math.factorial(c) * (1 - offered_load / c))
    return top / (summation + top)


def mmc_mean_wait(arrival_rate: float, service_rate: float, c: int) -> float:
    """Mean waiting time in M/M/c."""
    a = arrival_rate / service_rate
    pw = erlang_c(c, a)
    return pw / (c * service_rate - arrival_rate)


def mg1_mean_wait(arrival_rate: float, mean_service: float, second_moment: float) -> float:
    """Pollaczek–Khinchine: mean wait in M/G/1.

    ``second_moment`` is E[S^2].  Exact for any service distribution.
    """
    rho = arrival_rate * mean_service
    _check_rho(rho)
    return arrival_rate * second_moment / (2.0 * (1.0 - rho))


def bimodal_moments(short: float, long: float, short_ratio: float) -> Tuple[float, float]:
    """(E[S], E[S^2]) of a two-point service distribution."""
    p = short_ratio
    mean = p * short + (1 - p) * long
    second = p * short**2 + (1 - p) * long**2
    return mean, second


def utilization(arrival_rate: float, mean_service: float, n_workers: int) -> float:
    """System utilization ρ = λ E[S] / W."""
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return arrival_rate * mean_service / n_workers

def is_stable(arrival_rate: float, mean_service: float, n_workers: int) -> bool:
    """Whether the offered load keeps queues bounded."""
    return utilization(arrival_rate, mean_service, n_workers) < 1.0


def partition_stability(
    rates: Sequence[float], means: Sequence[float], workers: Sequence[int]
) -> Sequence[bool]:
    """Per-partition stability for a static split (SP / DARC w/o stealing).

    DARC's reservation uses average demand precisely because each group's
    partition must satisfy λ_g E[S_g] < W_g for stability [40].
    """
    if not (len(rates) == len(means) == len(workers)):
        raise ConfigurationError("rates, means, workers must have equal lengths")
    return [
        is_stable(rate, mean, w) for rate, mean, w in zip(rates, means, workers)
    ]
