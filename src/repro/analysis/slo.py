"""SLO capacity analysis.

The paper's headline comparisons are of the form "for a target slowdown
of 20x, DARC sustains 2.35x more load than Shenango".  Given a sweep of
:class:`~repro.experiments.common.RunResult` per system, these helpers
find each system's *capacity*: the highest offered utilization whose tail
metric still meets the SLO.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..experiments.common import RunResult

MetricFn = Callable[[RunResult], float]


def overall_slowdown_metric(result: RunResult) -> float:
    """View (i): tail slowdown across all requests."""
    return result.summary.overall_tail_slowdown


def max_typed_slowdown_metric(result: RunResult) -> float:
    """Fig. 1's SLO: tail slowdown of the *worst* type."""
    return result.summary.max_typed_slowdown()


def typed_latency_metric(type_id: int) -> MetricFn:
    """Tail latency of one type (e.g. the 20 µs short-request SLO)."""

    def metric(result: RunResult) -> float:
        ts = result.summary.per_type.get(type_id)
        return ts.tail_latency if ts else float("nan")

    return metric


def capacity_at_slo(
    sweep: Sequence[RunResult],
    slo: float,
    metric: MetricFn = overall_slowdown_metric,
) -> Optional[float]:
    """Highest utilization in ``sweep`` whose metric is within ``slo``.

    The sweep must be ordered by ascending utilization.  Points with a
    non-zero drop rate never qualify (a system shedding load has exceeded
    its capacity even if survivors look fast).  Returns None when even
    the lowest point violates the SLO.
    """
    best: Optional[float] = None
    for result in sweep:
        value = metric(result)
        if result.summary.drop_rate > 0:
            continue
        if value == value and value <= slo:  # NaN-safe comparison
            if best is None or result.utilization > best:
                best = result.utilization
    return best


def capacity_ratio(
    sweep_a: Sequence[RunResult],
    sweep_b: Sequence[RunResult],
    slo: float,
    metric: MetricFn = overall_slowdown_metric,
) -> Optional[float]:
    """capacity(A) / capacity(B) at the same SLO; None if either is None."""
    cap_a = capacity_at_slo(sweep_a, slo, metric)
    cap_b = capacity_at_slo(sweep_b, slo, metric)
    if cap_a is None or cap_b is None or cap_b == 0:
        return None
    return cap_a / cap_b


def slowdown_improvement(
    result_a: RunResult, result_b: RunResult, metric: MetricFn = overall_slowdown_metric
) -> float:
    """metric(B) / metric(A): how much better A's tail is at one point."""
    a = metric(result_a)
    b = metric(result_b)
    if a <= 0 or a != a or b != b:
        return float("nan")
    return b / a
