"""Analytic model of a DARC reservation.

With cycle stealing disabled, DARC is a static partition: each group is
an independent M/G/c queue over its reserved cores.  Closed forms then
predict per-group waits and stability — useful both to sanity-check the
simulator and to answer "would this reservation meet the SLO?" without
running anything (the paper's Eq. 1 stability argument, quantified).

For deterministic per-type service times (the paper's workloads) the
M/D/c wait is approximated from M/M/c via the classic Cosmetatos-style
half-variance correction: ``W(M/D/c) ≈ W(M/M/c) × (1 + CV²)/2`` with
CV² computed from the group's service-time mixture.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.reservation import Reservation
from ..errors import ConfigurationError
from .queueing import mmc_mean_wait


class GroupPrediction:
    """Analytic outlook for one group's partition."""

    __slots__ = ("type_ids", "n_cores", "arrival_rate", "mean_service", "rho",
                 "stable", "mean_wait")

    def __init__(self, type_ids, n_cores, arrival_rate, mean_service, rho,
                 stable, mean_wait):
        self.type_ids = type_ids
        self.n_cores = n_cores
        self.arrival_rate = arrival_rate
        self.mean_service = mean_service
        self.rho = rho
        self.stable = stable
        #: Predicted mean queueing wait (us); None when unstable.
        self.mean_wait = mean_wait

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        wait = f"{self.mean_wait:.2f}us" if self.mean_wait is not None else "inf"
        return (
            f"GroupPrediction(types={self.type_ids}, c={self.n_cores}, "
            f"rho={self.rho:.2f}, W~{wait})"
        )


def predict_partition(
    reservation: Reservation,
    type_rates: Dict[int, float],
    type_services: Dict[int, Tuple[float, float]],
) -> List[GroupPrediction]:
    """Per-group predictions for a no-stealing DARC reservation.

    Parameters
    ----------
    type_rates:
        Arrival rate per type (req/us).
    type_services:
        ``type_id -> (mean, second_moment)`` of its service time.
    """
    predictions: List[GroupPrediction] = []
    for alloc in reservation.allocations:
        rate = sum(type_rates.get(tid, 0.0) for tid in alloc.type_ids)
        if rate <= 0:
            predictions.append(
                GroupPrediction(alloc.type_ids, len(alloc.reserved), 0.0, 0.0,
                                0.0, True, 0.0)
            )
            continue
        mean = sum(
            type_rates.get(tid, 0.0) * type_services[tid][0] for tid in alloc.type_ids
        ) / rate
        second = sum(
            type_rates.get(tid, 0.0) * type_services[tid][1] for tid in alloc.type_ids
        ) / rate
        c = len(alloc.reserved)
        rho = rate * mean / c
        if rho >= 1.0:
            predictions.append(
                GroupPrediction(alloc.type_ids, c, rate, mean, rho, False, None)
            )
            continue
        # M/M/c wait at the same mean, corrected for service variability.
        base_wait = mmc_mean_wait(rate, 1.0 / mean, c)
        cv2 = max(0.0, second / (mean * mean) - 1.0)
        wait = base_wait * (1.0 + cv2) / 2.0
        predictions.append(
            GroupPrediction(alloc.type_ids, c, rate, mean, rho, True, wait)
        )
    return predictions


def reservation_meets_slo(
    predictions: Sequence[GroupPrediction],
    slowdown_slo: float,
) -> bool:
    """Whether every stable group's predicted *mean* slowdown is within
    the SLO (a necessary condition; tails are checked by simulation)."""
    if slowdown_slo <= 0:
        raise ConfigurationError("slowdown_slo must be > 0")
    for p in predictions:
        if not p.stable:
            return False
        if p.arrival_rate <= 0:
            continue
        mean_slowdown = (p.mean_wait + p.mean_service) / p.mean_service
        if mean_slowdown > slowdown_slo:
            return False
    return True


def spec_inputs(spec, utilization: float, n_workers: int):
    """Convenience: (type_rates, type_services) for a WorkloadSpec at a
    target utilization — deterministic service times assumed (the
    paper's synthetic workloads)."""
    total_rate = utilization * spec.peak_load(n_workers)
    rates = {}
    services = {}
    for tid, cls in enumerate(spec.classes):
        rates[tid] = total_rate * cls.ratio
        mean = cls.distribution.mean()
        services[tid] = (mean, mean * mean)
    return rates, services
