"""Replication support: seed sweeps with confidence intervals.

Tail percentiles from a single finite run are noisy; headline claims
("2.35x more load") deserve error bars.  :func:`replicate` runs the same
experiment point under independent seeds and :class:`Replication`
summarizes any scalar metric across them with a normal-approximation
confidence interval.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..experiments.common import RunResult, run_once
from ..systems.base import SystemModel
from ..workload.spec import WorkloadSpec

MetricFn = Callable[[RunResult], float]


class Replication:
    """Results of one experiment point across independent seeds."""

    def __init__(self, results: Sequence[RunResult]):
        if not results:
            raise ConfigurationError("need at least one replication")
        self.results = list(results)

    def __len__(self) -> int:
        return len(self.results)

    def values(self, metric: MetricFn) -> np.ndarray:
        """Metric per replication, NaNs dropped."""
        raw = np.array([metric(r) for r in self.results], dtype=float)
        return raw[~np.isnan(raw)]

    def mean(self, metric: MetricFn) -> float:
        vals = self.values(metric)
        return float(vals.mean()) if vals.size else float("nan")

    def std(self, metric: MetricFn) -> float:
        vals = self.values(metric)
        return float(vals.std(ddof=1)) if vals.size > 1 else 0.0

    def confidence_interval(
        self, metric: MetricFn, z: float = 1.96
    ) -> tuple:
        """(low, high) normal-approximation CI of the mean."""
        vals = self.values(metric)
        if vals.size == 0:
            return (float("nan"), float("nan"))
        center = vals.mean()
        if vals.size == 1:
            return (float(center), float(center))
        half = z * vals.std(ddof=1) / math.sqrt(vals.size)
        return (float(center - half), float(center + half))

    def describe(self, metric: MetricFn, label: str = "metric") -> str:
        low, high = self.confidence_interval(metric)
        return (
            f"{label}: mean={self.mean(metric):.2f} "
            f"ci95=[{low:.2f}, {high:.2f}] over {len(self)} seeds"
        )


def replicate(
    system: SystemModel,
    spec: WorkloadSpec,
    utilization: float,
    n_seeds: int = 5,
    base_seed: int = 1,
    n_requests: int = 20_000,
    pct: float = 99.9,
) -> Replication:
    """Run one (system, workload, load) point under ``n_seeds`` seeds."""
    if n_seeds < 1:
        raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
    results: List[RunResult] = []
    for i in range(n_seeds):
        results.append(
            run_once(
                system,
                spec,
                utilization,
                n_requests=n_requests,
                seed=base_seed + 1000 * i,
                pct=pct,
            )
        )
    return Replication(results)
