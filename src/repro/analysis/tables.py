"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows/series the paper's tables and figures
show; this module renders them legibly without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..errors import ConfigurationError


def format_cell(value: Any, precision: int = 2) -> str:
    """Render one cell: floats to ``precision``, NaN as '-', bools as check
    marks (Table 1 style), everything else via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Monospace table with column alignment."""
    if any(len(row) != len(headers) for row in rows):
        raise ConfigurationError("every row must match the header width")
    cells = [[format_cell(v, precision) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict,
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """A figure as text: one x column plus one column per named series."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(x_values):
        row: List[Any] = [x]
        for values in series.values():
            row.append(values[i] if i < len(values) else float("nan"))
        rows.append(row)
    return render_table(headers, rows, precision=precision, title=title)
