"""repro — a discrete-event reproduction of Perséphone / DARC (SOSP 2021).

Perséphone is a kernel-bypass OS scheduler whose DARC policy reserves
cores for short requests in heavy-tailed microsecond workloads, trading a
little work conservation for far better tail latency.  This package
reimplements the system and its evaluation as a simulation:

* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.workload` — typed workloads, Poisson open-loop generation;
* :mod:`repro.core` — DARC: classifiers, profiling, reservation, dispatch;
* :mod:`repro.policies` — c/d-FCFS, work stealing, time sharing, and the
  rest of the Table 5 baselines;
* :mod:`repro.server`, :mod:`repro.net` — the Fig. 2 pipeline model;
* :mod:`repro.systems` — Perséphone / Shenango / Shinjuku comparators;
* :mod:`repro.apps` — KV store, RocksDB-like store, TPC-C engine;
* :mod:`repro.metrics`, :mod:`repro.analysis` — percentiles, slowdown,
  queueing theory;
* :mod:`repro.faults` — deterministic fault injection (crash/recover,
  stragglers, packet loss) and chaos episodes (docs/faults.md);
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import quick_run
    result = quick_run(policy="darc", workload="high_bimodal", utilization=0.7)
    print(result.summary.describe())
"""

from .core.classifier import OracleClassifier, RandomClassifier
from .core.darc import DarcScheduler
from .errors import SanitizerViolation
from .experiments.common import RunResult, run_once, run_sweep
from .faults import ChaosResult, FaultInjector, FaultPlan, run_chaos
from .lint.sanitizer import SimSanitizer
from .metrics.summary import RunSummary
from .policies.fcfs import CentralizedFCFS, DecentralizedFCFS, WorkStealingFCFS
from .policies.timesharing import TimeSharing
from .server.server import Server
from .sim.engine import EventLoop
from .systems.persephone import (
    PersephoneCfcfsSystem,
    PersephoneDfcfsSystem,
    PersephoneStaticSystem,
    PersephoneSystem,
)
from .systems.shenango import ShenangoSystem
from .systems.shinjuku import ShinjukuSystem
from .workload.presets import by_name as workload_by_name
from .workload.resilience import ResilientClient, RetryPolicy
from .workload.spec import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "DarcScheduler",
    "OracleClassifier",
    "RandomClassifier",
    "RunResult",
    "RunSummary",
    "run_once",
    "run_sweep",
    "quick_run",
    "CentralizedFCFS",
    "DecentralizedFCFS",
    "WorkStealingFCFS",
    "TimeSharing",
    "Server",
    "EventLoop",
    "SimSanitizer",
    "SanitizerViolation",
    "PersephoneSystem",
    "PersephoneStaticSystem",
    "PersephoneCfcfsSystem",
    "PersephoneDfcfsSystem",
    "ShenangoSystem",
    "ShinjukuSystem",
    "WorkloadSpec",
    "workload_by_name",
    "FaultPlan",
    "FaultInjector",
    "ChaosResult",
    "run_chaos",
    "RetryPolicy",
    "ResilientClient",
]

_POLICY_SYSTEMS = {
    "darc": lambda w: PersephoneSystem(n_workers=w, oracle=True),
    "darc-profiled": lambda w: PersephoneSystem(n_workers=w, oracle=False),
    "c-fcfs": lambda w: PersephoneCfcfsSystem(n_workers=w),
    "d-fcfs": lambda w: PersephoneDfcfsSystem(n_workers=w),
    "shenango": lambda w: ShenangoSystem(n_workers=w),
    "shinjuku": lambda w: ShinjukuSystem(n_workers=w),
}


def quick_run(
    policy: str = "darc",
    workload: str = "high_bimodal",
    utilization: float = 0.7,
    n_workers: int = 14,
    n_requests: int = 40_000,
    seed: int = 1,
) -> RunResult:
    """One-call entry point: run ``policy`` on a preset ``workload``.

    ``policy`` is one of ``darc``, ``darc-profiled``, ``c-fcfs``,
    ``d-fcfs``, ``shenango``, ``shinjuku``.
    """
    try:
        factory = _POLICY_SYSTEMS[policy]
    except KeyError:
        raise KeyError(
            f"unknown policy {policy!r}; choices: {sorted(_POLICY_SYSTEMS)}"
        ) from None
    system = factory(n_workers)
    spec = workload_by_name(workload)
    return run_once(system, spec, utilization, n_requests=n_requests, seed=seed)
